#!/usr/bin/env python3
"""Streamed reasoning over a live sensor feed (the paper's §1 use case).

Simulates a building-monitoring scenario: a static background ontology
(sensor taxonomy, room layout) is loaded first; then two rate-limited
streams — temperature readings and occupancy events — flow into the
same reasoner *concurrently*, from two pump threads, while the main
thread polls the growing knowledge base for alerts.

This exercises exactly what "Data Stream Support" promises: incremental
inference with a growing background knowledge base, multiple parallel
input sources, and no batch re-computation.

Run:  python examples/stream_reasoning.py
"""

import time

from repro import Namespace, RDF, RDFS, Slider, Triple, Variable
from repro.reasoner import GeneratorSource, RateLimitedSource, StreamPump

S = Namespace("http://example.org/sensors#")

N_ROOMS = 8
READINGS_PER_ROOM = 25


def background_knowledge() -> list[Triple]:
    """The static TBox: device taxonomy and alert vocabulary."""
    triples = [
        Triple(S.TemperatureSensor, RDFS.subClassOf, S.Sensor),
        Triple(S.OccupancySensor, RDFS.subClassOf, S.Sensor),
        Triple(S.Sensor, RDFS.subClassOf, S.Device),
        Triple(S.reportsHigh, RDFS.subPropertyOf, S.reports),
        Triple(S.detectsPresence, RDFS.subPropertyOf, S.reports),
        Triple(S.reports, RDFS.domain, S.Sensor),
        Triple(S.reports, RDFS.range, S.Observation),
    ]
    for room in range(N_ROOMS):
        triples.append(Triple(S[f"room{room}"], RDF.type, S.Room))
    return triples


def temperature_stream():
    """High-temperature observations, round-robin over the rooms."""
    for i in range(N_ROOMS * READINGS_PER_ROOM):
        room = i % N_ROOMS
        sensor = S[f"thermo{room}"]
        yield Triple(sensor, RDF.type, S.TemperatureSensor)
        yield Triple(sensor, S.reportsHigh, S[f"obsT{i}"])


def occupancy_stream():
    for i in range(N_ROOMS * READINGS_PER_ROOM):
        room = (i * 3) % N_ROOMS
        sensor = S[f"presence{room}"]
        yield Triple(sensor, RDF.type, S.OccupancySensor)
        yield Triple(sensor, S.detectsPresence, S[f"obsO{i}"])


def main() -> None:
    with Slider(fragment="rhodf", workers=4, buffer_size=32, timeout=0.01) as reasoner:
        reasoner.add(background_knowledge())

        # No polling: a standing query over the closure, notified with
        # binding-level deltas as each stream chunk commits.
        x = Variable("x")
        known_devices: set = set()
        reasoner.subscribe(
            [(x, RDF.type, S.Device)],
            lambda event: known_devices.update(b[x] for b in event.added),
        )

        # Two concurrent, rate-limited sources feeding one engine —
        # "processing data as soon as it is published".  transactional=True
        # commits every chunk as its own revision (with a report).
        pumps = [
            StreamPump(
                reasoner,
                RateLimitedSource(GeneratorSource(temperature_stream), rate=4_000),
                chunk_size=20,
                transactional=True,
            ).start(),
            StreamPump(
                reasoner,
                RateLimitedSource(GeneratorSource(occupancy_stream), rate=4_000),
                chunk_size=20,
                transactional=True,
            ).start(),
        ]

        # Watch the subscription fill up while the streams run: the set
        # of generically-typed devices grows as inferences land.
        while any(pump._thread.is_alive() for pump in pumps):
            print(f"  ... devices known so far (inferred typing): {len(known_devices)}")
            time.sleep(0.05)
        for pump in pumps:
            pump.join()
        final_report = reasoner.flush()
        print(f"  ... {final_report.revision} revisions committed in total")

        print()
        print(f"stream delivered : {reasoner.input_count} distinct triples")
        print(f"inferred         : {reasoner.inferred_count} triples")
        thermo0 = S["thermo0"]
        print()
        print("what we now know about thermo0 (never stated explicitly):")
        for triple in sorted(reasoner.graph.triples(thermo0, None, None)):
            print(f"  {triple.n3()}")


if __name__ == "__main__":
    main()
