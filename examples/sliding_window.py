#!/usr/bin/env python3
"""Sliding-window reasoning over an event stream (beyond the paper).

The paper contrasts Slider with stream reasoners that "limit the amount
of data in the knowledge base by eliminating former triples" (§5).
This example runs that mode: a traffic-monitoring stream where only the
most recent observations matter, on top of a permanent road ontology.

Events expire out of a count window; DRed retraction removes exactly
the inferences that lose their support — watch congestion alerts appear
*and disappear* as the window slides.

Run:  python examples/sliding_window.py
"""

from repro import Namespace, RDF, RDFS, Triple
from repro.reasoner import CountWindow, WindowedReasoner

T = Namespace("http://example.org/traffic#")

BACKGROUND = [
    # Sensor-event taxonomy: every specific report is a CongestionSign.
    Triple(T.StoppedTraffic, RDFS.subClassOf, T.CongestionSign),
    Triple(T.SlowTraffic, RDFS.subClassOf, T.CongestionSign),
    Triple(T.Accident, RDFS.subClassOf, T.CongestionSign),
    Triple(T.CongestionSign, RDFS.subClassOf, T.TrafficEvent),
    # Reporting wiring: observedOn links an event to a road segment.
    Triple(T.observedOn, RDFS.domain, T.TrafficEvent),
    Triple(T.observedOn, RDFS.range, T.RoadSegment),
]

# Minute-by-minute event feed: (event kind, road segment).
FEED = [
    ("SlowTraffic", "A1"),
    ("SlowTraffic", "A1"),
    ("Accident", "A1"),
    ("SlowTraffic", "B7"),
    ("StoppedTraffic", "A1"),
    ("SlowTraffic", "B7"),
    ("SlowTraffic", "C3"),
    ("SlowTraffic", "C3"),
    ("SlowTraffic", "C3"),
    ("SlowTraffic", "C3"),
]


def event_triples(index: int, kind: str, segment: str) -> list[Triple]:
    event = T[f"event{index}"]
    return [
        Triple(event, RDF.type, T[kind]),
        Triple(event, T.observedOn, T[segment]),
    ]


def congestion_signs_per_segment(graph) -> dict[str, int]:
    """Count live CongestionSign events per road segment (inferred!)."""
    counts: dict[str, int] = {}
    for sign in graph.subjects(RDF.type, T.CongestionSign):
        for triple in graph.triples(sign, T.observedOn, None):
            segment = triple.object.value.rsplit("#", 1)[-1]
            counts[segment] = counts.get(segment, 0) + 1
    return counts


def main() -> None:
    # Each event contributes two triples; keeping the newest 8 triples
    # gives a "last 4 events" window (≈ the last 4 minutes of feed).
    with WindowedReasoner(CountWindow(8), fragment="rhodf") as window:
        window.load_background(BACKGROUND)
        print("minute | window contents -> congestion signs per segment")
        for minute, (kind, segment) in enumerate(FEED):
            # Each extend commits additions + expirations as ONE
            # transaction; the InferenceReport is the slide's exact diff.
            window.extend(event_triples(minute, kind, segment))
            report = window.last_report
            counts = congestion_signs_per_segment(window.graph)
            live = ", ".join(
                f"{seg}:{n}" for seg, n in sorted(counts.items())
            ) or "(quiet)"
            alerts = [seg for seg, n in sorted(counts.items()) if n >= 3]
            alert_text = f"  ⚠ CONGESTION on {', '.join(alerts)}" if alerts else ""
            print(
                f"  {minute:>4}   {kind:<15} on {segment}   "
                f"[rev {report.revision}: +{report.added_count}"
                f"/-{report.removed_count}]  -> {live}{alert_text}"
            )

        print()
        print(f"events streamed : {len(FEED)}")
        print(f"events expired  : {window.expired_total}")
        print(f"live window     : {len(window)} events, store = {len(window.reasoner)} triples")
        # The A1 pile-up from minutes 0-4 has fully expired by now:
        assert congestion_signs_per_segment(window.graph).get("A1") is None
        print("old A1 congestion evidence (and its inferences) fully retracted ✓")


if __name__ == "__main__":
    main()
