#!/usr/bin/env python3
"""Client round-trip against the HTTP reasoning service.

Two modes:

* self-hosted (default) — boot a :class:`repro.server.ReasoningService`
  in-process on an ephemeral port, then drive it like any client would;
* ``--connect URL`` — drive an already-running ``slider-reason serve``
  (this is what the CI ``server-smoke`` job does after booting one).

The round-trip exercises every serving primitive and *verifies* it:

1. ``POST /apply``    — assert a tiny ontology, get the revision report;
2. ``GET /select``    — the inferred binding is visible at that revision;
3. ``GET /subscribe`` — a standing query streams the binding delta of a
   second commit over SSE (fails if the stream is dead);
4. ``GET /stats``     — revision/consistency bookkeeping looks sane.

Exit status 0 only if every check passed — usable as a smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from http.client import HTTPConnection
from urllib.parse import quote, urlsplit

EX = "http://example.org/"
RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
RDFS_SUBCLASS = "http://www.w3.org/2000/01/rdf-schema#subClassOf"

SSE_TIMEOUT = 15.0


def check(label: str, ok: bool, detail: str = "") -> bool:
    mark = "✓" if ok else "✗"
    print(f"{mark} {label}" + (f" — {detail}" if detail else ""))
    return ok


class Client:
    def __init__(self, host: str, port: int):
        self.host, self.port = host, port
        self.conn = HTTPConnection(host, port, timeout=10)

    def get(self, path: str) -> tuple[int, dict]:
        self.conn.request("GET", path)
        response = self.conn.getresponse()
        return response.status, json.loads(response.read())

    def post(self, path: str, body: dict) -> tuple[int, dict]:
        self.conn.request(
            "POST", path, json.dumps(body), {"Content-Type": "application/json"}
        )
        response = self.conn.getresponse()
        return response.status, json.loads(response.read())


def listen_sse(host: str, port: int, query: str, events: list, ready: threading.Event):
    """Collect SSE events until one ``delta`` arrives (or the stream dies)."""
    conn = HTTPConnection(host, port, timeout=SSE_TIMEOUT)
    try:
        conn.request("GET", f"/subscribe?query={quote(query, safe='')}")
        response = conn.getresponse()
        if response.status != 200:
            return
        current: dict = {}
        while True:
            line = response.readline().decode("utf-8").rstrip("\r\n")
            if line.startswith("event:"):
                current["event"] = line[6:].strip()
            elif line.startswith("data:"):
                current["data"] = json.loads(line[5:].strip())
            elif line == "" and current:
                events.append(dict(current))
                if current.get("event") == "hello":
                    ready.set()
                if current.get("event") == "delta":
                    return
                current.clear()
    except OSError:
        return
    finally:
        conn.close()


def drive(host: str, port: int) -> int:
    client = Client(host, port)
    failures = 0

    # 1 — write through the coalesced pipeline.
    status, applied = client.post("/apply", {"assert": [
        f"<{EX}Cat> <{RDFS_SUBCLASS}> <{EX}Animal>",
        f"<{EX}tom> <{RDF_TYPE}> <{EX}Cat>",
    ]})
    revision = applied.get("revision", -1)
    failures += not check(
        "POST /apply committed", status == 200 and revision > 0,
        f"revision {revision}, +{applied.get('report', {}).get('inferred_added')} inferred",
    )

    # 2 — read back at the exact committed revision (snapshot pin).
    query = f"?x <{RDF_TYPE}> <{EX}Animal>"
    status, selected = client.get(
        f"/select?query={quote(query, safe='')}&at={revision}"
    )
    rows = selected.get("rows", [])
    failures += not check(
        "GET /select sees the inferred binding",
        status == 200 and [f"<{EX}tom>"] in rows,
        f"rows={rows}",
    )

    # 3 — subscribe, then commit a delta the subscription must stream.
    events: list = []
    ready = threading.Event()
    listener = threading.Thread(
        target=listen_sse, args=(host, port, query, events, ready), daemon=True
    )
    listener.start()
    failures += not check(
        "GET /subscribe stream is alive (hello event)", ready.wait(SSE_TIMEOUT)
    )
    status, applied2 = client.post("/apply", {"assert": [
        f"<{EX}rex> <{RDF_TYPE}> <{EX}Cat>",
    ]})
    failures += not check("second POST /apply committed", status == 200)
    listener.join(SSE_TIMEOUT)
    delta = next((e for e in events if e.get("event") == "delta"), None)
    failures += not check(
        "SSE delivered the binding delta",
        delta is not None
        and {"x": f"<{EX}rex>"} in delta["data"]["added"],
        f"events={events}",
    )

    # 4 — bookkeeping.  Since the partitioned-leader work, /stats
    # carries a "sharding" block (revision vector + cross-shard forward
    # counters) on sharded leaders, and a "tenancy" summary when
    # multi-tenant serving is enabled; both are None/absent otherwise.
    status, stats = client.get("/stats")
    failures += not check(
        "GET /stats is consistent",
        status == 200
        and stats["revision"] >= applied2.get("revision", 0)
        and stats["writes"]["commits"] >= 2,
        f"revision={stats.get('revision')} commits={stats.get('writes', {}).get('commits')}",
    )
    sharding = stats.get("sharding")
    if sharding is not None:
        failures += not check(
            "sharded leader reports its revision vector + forwards",
            len(sharding["revision_vector"]) == sharding["shards"]
            and max(sharding["revision_vector"]) <= stats["revision"]
            and all(k in sharding["forwards"]
                    for k in ("assertions", "retractions", "broadcasts", "rounds")),
            f"vector={sharding['revision_vector']} forwards={sharding['forwards']}",
        )
    else:
        check("single-node leader: no sharding block (expected)", True)
    if stats.get("tenancy") is not None:
        check("tenancy summary present",
              "active_engines" in stats["tenancy"],
              f"engines={stats['tenancy'].get('active_engines')}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--connect", metavar="URL",
                        help="drive an already-running server instead of self-hosting")
    args = parser.parse_args()

    if args.connect:
        parts = urlsplit(args.connect)
        failures = drive(parts.hostname or "127.0.0.1", parts.port or 80)
    else:
        from repro.server import ReasoningService, serve

        service = ReasoningService(fragment="rhodf", workers=2)
        server, _thread = serve(service)
        print(f"self-hosted service on {server.url}")
        try:
            failures = drive("127.0.0.1", server.port)
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all server round-trip checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
