#!/usr/bin/env python3
"""The paper's core claim, measured live: incremental beats re-batching.

Scenario: a knowledge base receives updates in K batches.  After every
batch the application needs the complete closure (to answer queries).

* the **batch reasoner** must re-materialize from scratch each time —
  "the arrival of new data initiate[s] the reasoning process from the
  start" (§1);
* **Slider** just keeps going: each update only joins against what is
  already known.

The script prints per-update latency for both strategies and the totals;
watch the batch column grow with the knowledge base while Slider's
tracks the update size.

Run:  python examples/incremental_vs_batch.py
"""

import sys
import time

from repro.baselines import BatchReasoner
from repro.datasets import subclass_chain
from repro.reasoner import Slider

CHAIN = int(sys.argv[1]) if len(sys.argv) > 1 else 260
BATCHES = 8


def main() -> None:
    updates = []
    triples = subclass_chain(CHAIN)
    step = len(triples) // BATCHES
    for i in range(BATCHES):
        end = len(triples) if i == BATCHES - 1 else (i + 1) * step
        updates.append(triples[i * step : end])

    print(f"workload: subClassOf_{CHAIN} delivered in {BATCHES} updates\n")
    print(f"{'update':>7} {'batch re-run':>13} {'slider incr.':>13}")

    # --- strategy 1: re-materialize from scratch on every update ---------
    batch_times = []
    seen: list = []
    for update in updates:
        seen.extend(update)
        start = time.perf_counter()
        reasoner = BatchReasoner(fragment="rhodf")
        reasoner.add(seen)
        reasoner.materialize()
        batch_times.append(time.perf_counter() - start)
    batch_final = len(reasoner.graph)

    # --- strategy 2: one incremental reasoner across all updates ----------
    slider_times = []
    with Slider(fragment="rhodf", workers=2, buffer_size=64, timeout=0.02) as slider:
        for update in updates:
            start = time.perf_counter()
            slider.add(update)
            slider.flush()  # closure complete after every update
            slider_times.append(time.perf_counter() - start)
        slider_final = len(slider.graph)

    for i, (bt, st) in enumerate(zip(batch_times, slider_times), 1):
        print(f"{i:>7} {bt:>12.3f}s {st:>12.3f}s")
    print(f"{'total':>7} {sum(batch_times):>12.3f}s {sum(slider_times):>12.3f}s")

    assert batch_final == slider_final, "closures diverged!"
    speedup = (sum(batch_times) - sum(slider_times)) / sum(slider_times) * 100
    print(
        f"\nsame closure ({slider_final} triples); "
        f"incremental gain over re-batching: {speedup:.0f}%"
    )


if __name__ == "__main__":
    main()
