#!/usr/bin/env python3
"""Fragment customization: plug a domain-specific rule set into Slider.

The paper's §1 claims Slider "allows to extend it to more complex
fragments with a minimal effort": a fragment is just a rule factory, the
dependency graph and routing are derived automatically from the rules'
signatures.  This example builds a small *genealogy* fragment from
scratch — nothing in it is RDFS — and runs it through the unchanged
engine:

  ancestor-trans   <x ancestorOf y> ∧ <y ancestorOf z> → <x ancestorOf z>
  parent-ancestor  <x parentOf y>                      → <x ancestorOf y>
  sibling-sym      <x siblingOf y>                     → <y siblingOf x>
  uncle            <x siblingOf y> ∧ <y parentOf z>    → <x relativeOf z>

Run:  python examples/custom_fragment.py
"""

from repro import Namespace, Slider, Triple
from repro.reasoner import Fragment, JoinRule, Pattern, SingleRule, Var

FAM = Namespace("http://example.org/family#")


def build_genealogy_rules(vocab):
    """Rule factory: receives the vocabulary, returns fresh rules.

    Domain predicates are encoded through the same dictionary the engine
    uses, so the rules speak integer ids like the built-in fragments.
    """
    encode = vocab.dictionary.encode
    parent_of = encode(FAM.parentOf)
    ancestor_of = encode(FAM.ancestorOf)
    sibling_of = encode(FAM.siblingOf)
    relative_of = encode(FAM.relativeOf)

    x, y, z = Var("x"), Var("y"), Var("z")
    return [
        JoinRule(
            "ancestor-trans",
            Pattern(x, ancestor_of, y),
            Pattern(y, ancestor_of, z),
            head=Pattern(x, ancestor_of, z),
        ),
        SingleRule(
            "parent-ancestor",
            Pattern(x, parent_of, y),
            head=Pattern(x, ancestor_of, y),
        ),
        SingleRule(
            "sibling-sym",
            Pattern(x, sibling_of, y),
            head=Pattern(y, sibling_of, x),
        ),
        JoinRule(
            "uncle",
            Pattern(x, sibling_of, y),
            Pattern(y, parent_of, z),
            head=Pattern(x, relative_of, z),
        ),
    ]


GENEALOGY = Fragment(
    "genealogy",
    build_genealogy_rules,
    description="ancestry + sibling reasoning (custom fragment demo)",
)


def main() -> None:
    with Slider(fragment=GENEALOGY, workers=2, buffer_size=4, timeout=0.01) as r:
        # The engine derived the dependency graph from the signatures:
        print("rules dependency graph (computed, not hand-wired):")
        for rule in r.dependency_graph.rule_names():
            print(f"  {rule:<16} -> {', '.join(r.dependency_graph.successors(rule))}")
        print()

        r.add(
            [
                Triple(FAM.grandpa, FAM.parentOf, FAM.dad),
                Triple(FAM.dad, FAM.parentOf, FAM.me),
                Triple(FAM.me, FAM.parentOf, FAM.kid),
                Triple(FAM.uncle_bob, FAM.siblingOf, FAM.dad),
            ]
        )
        r.flush()

        expectations = [
            ("grandpa ancestorOf kid (3-hop transitivity)",
             Triple(FAM.grandpa, FAM.ancestorOf, FAM.kid)),
            ("dad siblingOf uncle_bob (symmetry)",
             Triple(FAM.dad, FAM.siblingOf, FAM.uncle_bob)),
            ("uncle_bob relativeOf me (join rule)",
             Triple(FAM.uncle_bob, FAM.relativeOf, FAM.me)),
        ]
        for label, triple in expectations:
            status = "✓" if triple in r.graph else "✗"
            print(f"  {status} {label}")

        print()
        print(f"{r.input_count} facts in, {r.inferred_count} relationships inferred:")
        for triple in sorted(r.graph.triples(None, FAM.ancestorOf, None)):
            print(f"  {triple.n3()}")


if __name__ == "__main__":
    main()
