#!/usr/bin/env python3
"""Leader/follower replication, end to end, in one process.

Boots a durable leader, writes an ontology through the coalesced
pipeline, brings up two read replicas (one tails the retained WAL, one
is forced through a snapshot bootstrap by compacting first), then
proves the replication contract:

1. both followers converge to the leader's exact revision and closure;
2. reads against follower HTTP endpoints return the same rows at the
   same revision ids;
3. writes to a follower are 307-redirected to the leader;
4. the leader dies — the followers keep answering reads.

Exit status 0 only if every check passed (used by CI replication-smoke
as a second, pure-Python layer on top of the subprocess test).
"""

from __future__ import annotations

import json
import sys
import tempfile
from http.client import HTTPConnection
from urllib.parse import quote

EX = "http://example.org/"
RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
RDFS_SUBCLASS = "http://www.w3.org/2000/01/rdf-schema#subClassOf"


def check(label: str, ok: bool, detail: str = "") -> bool:
    mark = "✓" if ok else "✗"
    print(f"{mark} {label}" + (f" — {detail}" if detail else ""))
    return ok


def get_json(port: int, path: str) -> tuple[int, dict]:
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main() -> int:
    from repro.replication import ChangeFeed, Follower
    from repro.reasoner.engine import Slider
    from repro.server import ReasoningService, serve

    failures = 0
    with tempfile.TemporaryDirectory(prefix="slider-replication-") as state:
        reasoner = Slider(fragment="rhodf", workers=2,
                          persist_dir=f"{state}/leader", persist_fsync=False)
        service = ReasoningService(reasoner=reasoner)
        ChangeFeed(service)
        leader, _ = serve(service)
        print(f"leader on {leader.url} (durable, feed attached)")

        # Writes through the ordinary coalesced pipeline.
        conn = HTTPConnection("127.0.0.1", leader.port, timeout=10)
        conn.request("POST", "/apply", json.dumps({"assert": [
            f"<{EX}Cat> <{RDFS_SUBCLASS}> <{EX}Animal>",
            f"<{EX}tom> <{RDF_TYPE}> <{EX}Cat>",
        ]}), {"Content-Type": "application/json"})
        revision = json.loads(conn.getresponse().read())["revision"]
        conn.close()

        # Replica 1 resumes the retained WAL from revision 0.
        wal_replica = Follower(leader.url, workers=2, reconnect_delay=0.1).start()
        failures += not check(
            "WAL replica caught up", wal_replica.wait_ready(30),
            f"revision {wal_replica.revision}, "
            f"{wal_replica.status.bootstraps} bootstraps",
        )

        # Compaction truncates the WAL: replica 2 must snapshot-bootstrap.
        reasoner.snapshot()
        snap_replica = Follower(leader.url, workers=2, reconnect_delay=0.1).start()
        failures += not check(
            "snapshot replica caught up", snap_replica.wait_ready(30),
            f"bootstraps={snap_replica.status.bootstraps}",
        )
        failures += not check(
            "snapshot path was exercised", snap_replica.status.bootstraps == 1
        )

        servers = []
        query = quote(f"?x <{RDF_TYPE}> <{EX}Animal>", safe="")
        for name, replica in (("wal", wal_replica), ("snapshot", snap_replica)):
            server, _ = replica.serve_http()
            servers.append(server)
            status, out = get_json(server.port, f"/select?query={query}")
            failures += not check(
                f"{name} replica serves the inferred closure",
                status == 200 and [f"<{EX}tom>"] in out["rows"]
                and out["revision"] == revision,
                f"revision {out.get('revision')}, rows {out.get('rows')}",
            )
            status, ready = get_json(server.port, "/readyz")
            failures += not check(f"{name} replica is ready", status == 200)

        # A write against a replica is forwarded, never applied locally.
        conn = HTTPConnection("127.0.0.1", servers[0].port, timeout=10)
        conn.request("POST", "/apply", json.dumps(
            {"assert": [f"<{EX}rex> <{RDF_TYPE}> <{EX}Cat>"]}
        ), {"Content-Type": "application/json"})
        response = conn.getresponse()
        location = response.getheader("Location")
        response.read()
        conn.close()
        failures += not check(
            "replica redirects writes to the leader",
            response.status == 307 and location == f"{leader.url}/apply",
            f"{response.status} -> {location}",
        )

        # Leader dies; replicas keep serving reads.
        leader.shutdown()
        leader.server_close()
        service.close()
        for name, server in zip(("wal", "snapshot"), servers):
            status, out = get_json(server.port, f"/select?query={query}")
            failures += not check(
                f"{name} replica survives leader death",
                status == 200 and [f"<{EX}tom>"] in out["rows"],
            )

        for server in servers:
            server.shutdown()
            server.server_close()
        wal_replica.close()
        snap_replica.close()

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all replication checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
