#!/usr/bin/env python3
"""Quickstart: incremental RDFS reasoning in a dozen lines.

Builds a tiny pet-shop ontology, feeds it to Slider *incrementally*
(schema first, facts later — order doesn't matter), and queries the
materialized knowledge.

Run:  python examples/quickstart.py
"""

from repro import IRI, Namespace, RDF, RDFS, Slider, Triple
from repro.rdf import Literal
from repro.store import select
from repro.rdf.terms import Variable

EX = Namespace("http://example.org/petshop#")


def main() -> None:
    with Slider(fragment="rdfs", workers=2, buffer_size=10, timeout=0.02) as reasoner:
        # 1. Terminological knowledge (the TBox) ...
        reasoner.add(
            [
                Triple(EX.Cat, RDFS.subClassOf, EX.Mammal),
                Triple(EX.Dog, RDFS.subClassOf, EX.Mammal),
                Triple(EX.Mammal, RDFS.subClassOf, EX.Animal),
                Triple(EX.hasPet, RDFS.domain, EX.Person),
                Triple(EX.hasPet, RDFS.range, EX.Animal),
                Triple(EX.hasKitten, RDFS.subPropertyOf, EX.hasPet),
            ]
        )

        # 2. ... assertional facts arrive later, as a stream would deliver
        #    them.  No re-computation of anything already derived.
        reasoner.add(
            [
                Triple(EX.tom, RDF.type, EX.Cat),
                Triple(EX.alice, EX.hasKitten, EX.tom),
                Triple(EX.alice, RDFS.label, Literal("Alice")),
            ]
        )

        # 3. Wait for the fixpoint, then look at what was *not* said
        #    explicitly but is now known.
        reasoner.flush()

        print(f"explicit triples : {reasoner.input_count}")
        print(f"inferred triples : {reasoner.inferred_count}")
        print()

        checks = [
            ("tom is an Animal", Triple(EX.tom, RDF.type, EX.Animal)),
            ("alice hasPet tom (via subproperty)", Triple(EX.alice, EX.hasPet, EX.tom)),
            ("alice is a Person (via domain)", Triple(EX.alice, RDF.type, EX.Person)),
            ("tom is an Animal (via range too)", Triple(EX.tom, RDF.type, EX.Animal)),
        ]
        for label, triple in checks:
            status = "✓" if triple in reasoner.graph else "✗"
            print(f"  {status} {label}")

        # 4. Query the closure with a conjunctive (BGP) query.
        x = Variable("x")
        animals = select(reasoner.graph, [x], [(x, RDF.type, EX.Animal)])
        print()
        print("all known animals:", ", ".join(str(row[0]) for row in sorted(animals)))


if __name__ == "__main__":
    main()
