#!/usr/bin/env python3
"""Quickstart: incremental RDFS reasoning with the delta-centric API.

Builds a tiny pet-shop ontology, commits it to Slider in *transactions*
(schema first, facts later — order doesn't matter), reads what each
commit changed from its InferenceReport, and queries the materialized
knowledge.

Run:  python examples/quickstart.py
"""

from repro import Namespace, RDF, RDFS, Slider, Triple, Variable, select
from repro.rdf import Literal

EX = Namespace("http://example.org/petshop#")


def main() -> None:
    with Slider(fragment="rdfs", workers=2, buffer_size=10, timeout=0.02) as reasoner:
        # 1. Terminological knowledge (the TBox), one transaction ...
        with reasoner.transaction() as tx:
            tx.add(
                [
                    Triple(EX.Cat, RDFS.subClassOf, EX.Mammal),
                    Triple(EX.Dog, RDFS.subClassOf, EX.Mammal),
                    Triple(EX.Mammal, RDFS.subClassOf, EX.Animal),
                    Triple(EX.hasPet, RDFS.domain, EX.Person),
                    Triple(EX.hasPet, RDFS.range, EX.Animal),
                    Triple(EX.hasKitten, RDFS.subPropertyOf, EX.hasPet),
                ]
            )

        # 2. ... assertional facts arrive later, as a stream would
        #    deliver them.  No re-computation of anything already
        #    derived — the report says exactly what this commit added.
        with reasoner.transaction() as tx:
            tx.add(
                [
                    Triple(EX.tom, RDF.type, EX.Cat),
                    Triple(EX.alice, EX.hasKitten, EX.tom),
                    Triple(EX.alice, RDFS.label, Literal("Alice")),
                ]
            )

        # 3. Inspect the second commit: what was *not* said explicitly
        #    but is now known?
        report = tx.report
        print(f"revision         : {report.revision}")
        print(f"explicit triples : {reasoner.input_count}")
        print(f"inferred triples : {reasoner.inferred_count}")
        print(f"this commit      : +{report.explicit_added_count} explicit, "
              f"+{report.inferred_added_count} inferred")
        print()

        checks = [
            ("tom is an Animal", Triple(EX.tom, RDF.type, EX.Animal)),
            ("alice hasPet tom (via subproperty)", Triple(EX.alice, EX.hasPet, EX.tom)),
            ("alice is a Person (via domain)", Triple(EX.alice, RDF.type, EX.Person)),
            ("tom is an Animal (via range too)", Triple(EX.tom, RDF.type, EX.Animal)),
        ]
        for label, triple in checks:
            status = "✓" if triple in reasoner.graph else "✗"
            print(f"  {status} {label}")

        # 4. Query the closure with a conjunctive (BGP) query — the
        #    query layer is a top-level export now.
        x = Variable("x")
        animals = select(reasoner.graph, [x], [(x, RDF.type, EX.Animal)])
        print()
        print("all known animals:", ", ".join(str(row[0]) for row in sorted(animals)))

        # 5. Or stop polling entirely: subscribe to the pattern and let
        #    the next commit push its binding-level delta.
        arrivals = []
        reasoner.subscribe(
            [(x, RDF.type, EX.Animal)],
            lambda event: arrivals.extend(b[x] for b in event.added),
        )
        with reasoner.transaction() as tx:
            tx.add(Triple(EX.rex, RDF.type, EX.Dog))
        print("subscription saw :", ", ".join(str(term) for term in arrivals))


if __name__ == "__main__":
    main()
