#!/usr/bin/env python3
"""The demo web interface's data layer (paper §4 / Figure 4), headless.

Runs a traced inference over one of the benchmark ontologies, then:

1 — Setup:     choose ontology / fragment / buffer size / timeout;
2 — Run:       replay the recorded inference step by step through the
               InferencePlayer (pause / seek / backwards all work);
3 — Summarize: print the summary panel and write the standalone HTML
               report (slider_report.html).

Run:  python examples/demo_player.py [dataset] [buffer_size]
"""

import sys

from repro.datasets import dataset_names, load_dataset
from repro.demo import InferencePlayer, render_text, write_html_report
from repro.reasoner import Slider, Trace


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "subClassOf100"
    buffer_size = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    if dataset not in dataset_names():
        raise SystemExit(f"unknown dataset {dataset!r}; pick one of {dataset_names()}")

    config = {
        "dataset": dataset,
        "fragment": "rhodf",
        "buffer_size": buffer_size,
        "timeout": 0.05,
        "workers": 2,
    }
    print(f"1 — Setup: {config}")

    # 2 — Run, recording every module event.
    trace = Trace()
    with Slider(
        fragment=config["fragment"],
        buffer_size=config["buffer_size"],
        timeout=config["timeout"],
        workers=config["workers"],
        trace=trace,
    ) as reasoner:
        reasoner.add(load_dataset(dataset, scale=0.02))
        reasoner.flush()

    print(f"2 — Run: recorded {len(trace)} trace events; replaying...")
    player = InferencePlayer(trace)

    # Scrub through the inference like the demo's slider bar: sample the
    # store composition at 10 evenly spaced steps.
    checkpoints = [len(player) * i // 10 for i in range(1, 11)]
    print(f"   {'step':>6} {'explicit':>9} {'inferred':>9} {'store':>7}  last rules")
    for checkpoint in checkpoints:
        state = player.seek(checkpoint)
        recent = ",".join(state.recent_rules[-3:]) or "-"
        print(
            f"   {state.step:>6} {state.explicit_in_store:>9} "
            f"{state.inferred_in_store:>9} {state.store_size:>7}  {recent}"
        )

    # ... and the demo's step-backwards button:
    player.seek(len(player))
    player.step_back()
    player.step_back()
    print(f"   (stepped back twice: now at step {player.position})")

    # 3 — Summarize.
    print()
    print("3 — Summarize:")
    print(render_text(trace, config))
    write_html_report(trace, "slider_report.html", config)
    print("\nHTML report written to slider_report.html")


if __name__ == "__main__":
    main()
