"""Batch materialization baselines (the OWLIM-SE stand-in).

OWLIM-SE is closed source; what the paper relies on is its *class*: a
batch forward-chaining materializer that computes the full closure at
load time.  Two strategies are provided:

* :class:`BatchReasoner` — **naive iteration**, the "commonly used
  iterative rules scheme" the paper attributes to prior art (§3, citing
  WebPIE): every round re-evaluates every rule against the *entire*
  store until no round adds a triple.  Re-derivation across rounds is
  what makes chained subsumptions produce O(n³) derivations for an
  O(n²) closure.  This is the Table 1 comparator.
* :class:`SemiNaiveReasoner` — **semi-naive (delta) iteration**, the
  strong textbook baseline: each round joins only the previous round's
  new triples against the store, using the very same two-sided rule
  bodies as Slider's modules.  Used as an upper-bound comparator and in
  the ablation benchmarks.

Both produce exactly the same fixpoint as the Slider engine (tests
assert set equality on randomized ontologies), both share Slider's rule
objects, dictionary and store substrate — so measured differences come
from the evaluation *strategy*, not from unrelated implementation
details.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..dictionary.encoder import EncodedTriple, TermDictionary, encode_batch
from ..rdf.terms import Triple
from ..reasoner.fragments import Fragment, get_fragment
from ..reasoner.rules import OutputBuffer, Rule, apply_rule_into, derive_all
from ..reasoner.vocabulary import Vocabulary
from ..store.backends import TripleStore, create_store
from ..store.graph import Graph

__all__ = ["BatchReasoner", "SemiNaiveReasoner", "BatchStats"]


class BatchStats:
    """Work accounting for a batch run (feeds the duplicates ablation)."""

    __slots__ = ("rounds", "derivations", "kept", "rule_invocations")

    def __init__(self):
        self.rounds = 0
        self.derivations = 0  # rule outputs, duplicates included
        self.kept = 0  # survived store dedup (the actual closure growth)
        self.rule_invocations = 0

    @property
    def duplicate_ratio(self) -> float:
        """Derivations per kept triple (1.0 = no wasted work)."""
        return self.derivations / self.kept if self.kept else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "rounds": self.rounds,
            "derivations": self.derivations,
            "kept": self.kept,
            "rule_invocations": self.rule_invocations,
            "duplicate_ratio": self.duplicate_ratio,
        }

    def __repr__(self):
        return (
            f"<BatchStats rounds={self.rounds} derivations={self.derivations} "
            f"kept={self.kept}>"
        )


class _BaseBatchReasoner:
    """Shared substrate handling for the two batch strategies."""

    def __init__(
        self,
        fragment: str | Fragment = "rhodf",
        dictionary: TermDictionary | None = None,
        store: TripleStore | str | None = None,
    ):
        self.fragment = fragment if isinstance(fragment, Fragment) else get_fragment(fragment)
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self.store = create_store(store)
        self.vocab = Vocabulary(self.dictionary)
        self.rules: list[Rule] = self.fragment.rules(self.vocab)
        self.stats = BatchStats()
        self._explicit = 0
        axioms = self.fragment.axioms()
        if axioms:
            self._axiom_count = len(
                self.store.add_all(self.dictionary.encode_triple(t) for t in axioms)
            )
        else:
            self._axiom_count = 0

    # --- loading -------------------------------------------------------------
    def add(self, triples: Iterable[Triple]) -> int:
        """Stage explicit triples (no reasoning yet — this is batch)."""
        new = len(self.store.add_all(encode_batch(self.dictionary, triples)))
        self._explicit += new
        return new

    def add_encoded(self, encoded: Sequence[EncodedTriple]) -> int:
        new = len(self.store.add_all(encoded))
        self._explicit += new
        return new

    def load(self, path) -> int:
        from ..rdf.ntriples import parse_ntriples_file
        from ..rdf.turtle import parse_turtle_file

        text_path = str(path)
        if text_path.endswith((".ttl", ".turtle")):
            return self.add(parse_turtle_file(path))
        return self.add(parse_ntriples_file(path))

    # --- results ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    @property
    def graph(self) -> Graph:
        return Graph(self.dictionary, self.store)

    @property
    def input_count(self) -> int:
        return self._explicit

    @property
    def inferred_count(self) -> int:
        return len(self.store) - self._explicit - self._axiom_count

    def materialize(self) -> BatchStats:
        raise NotImplementedError

    def materialize_triples(self, triples: Iterable[Triple]) -> BatchStats:
        """Convenience: add + materialize (one-shot batch closure)."""
        self.add(triples)
        return self.materialize()


class BatchReasoner(_BaseBatchReasoner):
    """Naive-iteration batch materializer (Table 1's OWLIM-SE stand-in).

    Round r re-runs every rule against the whole store; the closure is
    reached when a round keeps nothing.  Cheap to state, expensive to
    run: round r re-derives everything rounds 1..r-1 derived.
    """

    def materialize(self) -> BatchStats:
        stats = self.stats
        while True:
            stats.rounds += 1
            kept_this_round = 0
            for rule in self.rules:
                stats.rule_invocations += 1
                derived = derive_all(rule, self.store, self.vocab)
                stats.derivations += len(derived)
                kept = self.store.add_all(derived)
                kept_this_round += len(kept)
            stats.kept += kept_this_round
            if kept_this_round == 0:
                break
        return stats


class SemiNaiveReasoner(_BaseBatchReasoner):
    """Semi-naive batch materializer (the strong baseline).

    Round r joins only round r-1's *new* triples against the store,
    reusing the same incremental rule bodies as the Slider pipeline —
    i.e. Slider's algorithm without buffers, threads or routing.
    """

    def materialize(self) -> BatchStats:
        stats = self.stats
        scratch = OutputBuffer()  # reused across every rule × round
        delta: list[EncodedTriple] = list(self.store)
        while delta:
            stats.rounds += 1
            round_kept: list[EncodedTriple] = []
            for rule in self.rules:
                stats.rule_invocations += 1
                apply_rule_into(rule, self.store, delta, self.vocab, scratch)
                derived = scratch.take()
                stats.derivations += len(derived)
                round_kept.extend(self.store.add_all(derived))
            stats.kept += len(round_kept)
            delta = round_kept
        return stats
