"""Batch materialization baselines (OWLIM-SE stand-ins and ablations)."""

from .batch import BatchReasoner, BatchStats, SemiNaiveReasoner

__all__ = ["BatchReasoner", "SemiNaiveReasoner", "BatchStats"]
