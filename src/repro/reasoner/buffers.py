"""Per-rule triple buffers (paper §2, "Buffers").

Each rule module owns one buffer.  The input manager and the distributors
push triples into it; when the buffer reaches its configured size it
*fires* — the accumulated batch is handed to a new rule-module instance on
the thread pool.  An inactive buffer is force-flushed after a timeout so
slow streams still make progress ("the timeout defines after how long an
inactive buffer is forced to flush and throw a rule execution").

The buffer never blocks producers: pushing into a full buffer immediately
yields the batch to fire, and accumulation restarts empty.  Counters for
size-fires, timeout-fires and buffered totals feed the demo GUI's three
per-buffer counters.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable

from ..dictionary.encoder import EncodedTriple

__all__ = ["TripleBuffer"]


class TripleBuffer:
    """A bounded accumulation buffer for one rule.

    ``capacity`` is the paper's *buffer size* parameter: the number of
    triples needed to fire a rule execution.  ``clock`` is injectable for
    deterministic timeout tests.
    """

    def __init__(
        self,
        rule_name: str,
        capacity: int = 50,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.rule_name = rule_name
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._items: list[EncodedTriple] = []
        self._last_activity = clock()
        # Demo counters: (i) size fires, (ii) timeout fires, (iii) is kept
        # by the module/distributor (triples inferred by the rule).
        self.size_fires = 0
        self.timeout_fires = 0
        self.total_buffered = 0

    def put(self, triple: EncodedTriple) -> list[EncodedTriple] | None:
        """Add one triple; returns a batch iff the buffer just filled."""
        with self._lock:
            self._items.append(triple)
            self.total_buffered += 1
            self._last_activity = self._clock()
            if len(self._items) >= self.capacity:
                return self._take_locked(timeout=False)
            return None

    def put_many(self, triples: Iterable[EncodedTriple]) -> list[list[EncodedTriple]]:
        """Add many triples; returns every full batch produced on the way.

        Batch-native: triples land via capacity-sized ``extend`` slices
        (C speed) instead of a per-triple append + check loop, firing
        exactly the batches the element-wise walk would have fired.
        """
        batches: list[list[EncodedTriple]] = []
        items = triples if isinstance(triples, list) else list(triples)
        if not items:
            return batches
        with self._lock:
            position, total = 0, len(items)
            while position < total:
                take = self.capacity - len(self._items)
                self._items.extend(items[position:position + take])
                position += take
                if len(self._items) >= self.capacity:
                    batches.append(self._take_locked(timeout=False))
            self.total_buffered += total
            self._last_activity = self._clock()
        return batches

    def drain(self) -> list[EncodedTriple]:
        """Take whatever is buffered (an explicit flush); may be empty."""
        with self._lock:
            if not self._items:
                return []
            return self._take_locked(timeout=False, count_fire=False)

    def flush_if_stale(self, timeout: float) -> list[EncodedTriple] | None:
        """Timeout path: flush iff non-empty and inactive for ``timeout`` s."""
        with self._lock:
            if not self._items:
                return None
            if self._clock() - self._last_activity < timeout:
                return None
            return self._take_locked(timeout=True)

    def _take_locked(self, timeout: bool, count_fire: bool = True) -> list[EncodedTriple]:
        batch = self._items
        self._items = []
        self._last_activity = self._clock()
        if count_fire:
            if timeout:
                self.timeout_fires += 1
            else:
                self.size_fires += 1
        return batch

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def idle_seconds(self) -> float:
        """Seconds since the last put/flush (used by the timeout sweeper)."""
        with self._lock:
            return self._clock() - self._last_activity

    def counters(self) -> dict[str, int]:
        """The demo GUI's per-buffer counters."""
        with self._lock:
            return {
                "size_fires": self.size_fires,
                "timeout_fires": self.timeout_fires,
                "total_buffered": self.total_buffered,
                "pending": len(self._items),
            }

    def __repr__(self):
        return (
            f"<TripleBuffer {self.rule_name} {len(self)}/{self.capacity} "
            f"fires={self.size_fires}+{self.timeout_fires}t>"
        )
