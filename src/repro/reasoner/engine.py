"""The Slider engine: the paper's architecture, end to end (Figure 1).

:class:`Slider` wires together every component of the paper's §2:

* an :class:`~repro.reasoner.input_manager.InputManager` encoding and
  storing incoming triples,
* one :class:`~repro.reasoner.buffers.TripleBuffer` +
  :class:`~repro.reasoner.modules.RuleModule` +
  :class:`~repro.reasoner.distributor.Distributor` per rule of the
  configured fragment,
* a predicate routing table and the rules dependency graph
  (:mod:`~repro.reasoner.dependency`),
* a thread pool executing rule-module instances (``workers=0`` selects a
  deterministic inline executor for tests and single-threaded use),
* an optional timeout sweeper flushing stale buffers, and
* an optional :class:`~repro.reasoner.trace.Trace` feeding the demo.

Completeness invariant
----------------------

Every triple is inserted into the store *before* it is routed to any
buffer, and every routed triple is eventually part of a firing.  For any
rule body pair (t₁, t₂), whichever triple is routed last is processed by
a firing that runs strictly after both are stored — so the two-sided join
of :meth:`~repro.reasoner.rules.JoinRule.apply` finds the other side.
:meth:`Slider.flush` drains all buffers and waits for quiescence, after
which the store holds the full fixpoint (tests verify equality with the
batch baselines' closure).

Delta-centric API
-----------------

Every mutation — assertions, retractions, stream chunks, window expiry
— flows through one transactional entry point, :meth:`Slider.apply`,
which commits a *revision* and returns an
:class:`~repro.reasoner.delta.InferenceReport` describing exactly what
changed (explicit/inferred additions, DRed removals, re-derivations,
per-module timings).  :meth:`Slider.transaction` builds a delta
incrementally; :meth:`Slider.subscribe` registers standing BGP queries
notified with binding-level diffs; :meth:`Slider.flush_async` pipelines
the commit barrier.  The legacy one-shot :meth:`add` / :meth:`retract`
remain as thin shims over the same pipeline.

>>> from repro import Slider
>>> reasoner = Slider(fragment="rhodf", workers=0)
>>> with reasoner.transaction() as tx:   # one delta, one revision
...     tx.add(new_triples)
...     tx.retract(stale_triples)
>>> tx.report.inferred_added_count       # what the commit changed
>>> reasoner.add(triples)                # legacy shim — deferred one-shot
>>> reasoner.flush()                     # barrier: commits the revision

Durability
----------

``Slider(persist_dir=...)`` makes the engine restartable: every commit
is journaled to an fsynced write-ahead changelog before :meth:`apply`
returns, and a threshold (or an explicit :meth:`Slider.snapshot` call)
compacts the changelog into an atomic binary snapshot.  Start-up over a
non-empty directory *recovers* — snapshot load plus changelog replay
through the normal pipeline — so a killed process resumes at the exact
closure and revision id it had committed (see
:mod:`repro.persist` and :class:`RecoveryInfo`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..dictionary.encoder import EncodedTriple, TermDictionary, encode_batch
from ..obs import TRACER, instruments as _obs
from ..persist.manager import DEFAULT_COMPACT_BYTES, PersistenceManager
from ..persist.snapshot import Snapshot, encode_snapshot
from ..rdf.terms import BNode, IRI, Term, Triple
from ..store.backends import TripleStore, create_store
from ..store.graph import Graph
from ..store.query import TriplePattern
from .adaptive import AdaptiveBufferController
from .buffers import TripleBuffer
from .delta import ChangeLog, Delta, InferenceReport, Ticket, Transaction
from .dependency import DependencyGraph, build_routing_table
from .distributor import Distributor
from .fragments import Fragment, get_fragment
from .input_manager import InputManager
from .modules import RuleModule
from .retraction import dred_retract
from .subscription import Subscription
from .trace import NullTrace, Trace
from .vocabulary import Vocabulary

__all__ = ["Slider", "SliderError", "RecoveryInfo"]

# Causes a firing can have; surfaced in trace events and counters.
_CAUSE_SIZE = "size"
_CAUSE_TIMEOUT = "timeout"
_CAUSE_FLUSH = "flush"


class SliderError(RuntimeError):
    """A rule-module instance failed; carries the underlying cause."""


class RecoveryInfo:
    """What a durable engine restored at start-up.

    Exposed as :attr:`Slider.recovery` when ``persist_dir`` held state;
    ``None`` for a cold (empty-directory) start.
    """

    __slots__ = (
        "snapshot_revision",
        "snapshot_triples",
        "replayed_records",
        "reports",
        "torn_bytes_dropped",
    )

    def __init__(
        self,
        snapshot_revision: int,
        snapshot_triples: int,
        replayed_records: int,
        reports: "list[InferenceReport]",
        torn_bytes_dropped: int,
    ):
        self.snapshot_revision = snapshot_revision
        self.snapshot_triples = snapshot_triples
        self.replayed_records = replayed_records
        #: The reports the journal replay re-fired, in revision order —
        #: deterministic re-runs of the lost process's commits.
        self.reports = reports
        self.torn_bytes_dropped = torn_bytes_dropped

    @property
    def recovered_revision(self) -> int:
        """The revision the engine stands at after recovery."""
        if self.reports:
            return self.reports[-1].revision
        return self.snapshot_revision

    def as_dict(self) -> dict:
        return {
            "snapshot_revision": self.snapshot_revision,
            "snapshot_triples": self.snapshot_triples,
            "replayed_records": self.replayed_records,
            "recovered_revision": self.recovered_revision,
            "torn_bytes_dropped": self.torn_bytes_dropped,
        }

    def __repr__(self):
        return (
            f"<RecoveryInfo snapshot_rev={self.snapshot_revision} "
            f"replayed={self.replayed_records} "
            f"recovered_rev={self.recovered_revision}>"
        )


class _InlineExecutor:
    """Synchronous executor: runs tasks in submission order, iteratively.

    Tasks submitted while another task runs are queued, not recursed into,
    so arbitrarily deep derivation chains cannot overflow the stack.
    Deterministic: single thread, FIFO order.
    """

    def __init__(self):
        self._queue: deque = deque()
        self._draining = False

    def submit(self, fn, *args) -> None:
        self._queue.append((fn, args))
        if self._draining:
            return
        self._draining = True
        try:
            while self._queue:
                task, task_args = self._queue.popleft()
                task(*task_args)
        finally:
            self._draining = False

    def shutdown(self, wait: bool = True) -> None:
        self._queue.clear()


class Slider:
    """The incremental reasoner.

    Parameters
    ----------
    fragment:
        Fragment name (``"rhodf"``, ``"rdfs"``, ``"rdfs-full"``,
        ``"owl-horst"``) or a :class:`~repro.reasoner.fragments.Fragment`.
    buffer_size:
        Triples needed to fire a rule execution (paper demo parameter).
    timeout:
        Seconds of buffer inactivity before a forced flush; ``None``
        disables the sweeper (an explicit :meth:`flush` still drains).
    workers:
        Thread-pool size; ``0`` runs rule modules inline (deterministic).
    trace:
        A :class:`~repro.reasoner.trace.Trace` to record events into, or
        ``None`` for no tracing.
    routing:
        ``"predicate"`` (default) routes triples only to rules whose
        input signature matches, via the dependency-graph-derived table;
        ``"broadcast"`` offers every triple to every rule — the ablation
        for the paper's routing design (§2.3).
    adaptive:
        An :class:`~repro.reasoner.adaptive.AdaptiveBufferController`
        (or ``True`` for one with default settings) enabling run-time
        buffer retuning — the paper's future-work "just-in-time
        optimisation of the rules execution's scheduling".  ``None``
        (default) keeps the static plan.
    store:
        The storage backend: a spec string (``"hashdict"`` — the default
        single-lock vertical store — or ``"sharded"`` / ``"sharded:N"``
        for the lock-striped store, see
        :mod:`repro.store.backends`), or a pre-existing store instance
        to share substrate (e.g. to reason over an already-loaded
        :class:`~repro.store.graph.Graph`).
    dictionary:
        Optionally share a pre-existing term dictionary.
    persist_dir:
        A directory for durable state.  When given, every committed
        revision is journaled to an fsynced write-ahead changelog
        before :meth:`apply` returns, and start-up *recovers*: the
        latest snapshot is loaded and the changelog tail is replayed
        through the normal :meth:`apply` pipeline (reports re-fire
        deterministically; see :attr:`recovery`).  ``None`` (default)
        keeps the engine purely in-memory.
    persist_fsync:
        ``False`` trades the fsync-per-commit durability guarantee for
        write speed (page-cache durability only) — for benchmarks and
        tests, not for production state.
    compact_journal_bytes:
        Changelog size that triggers automatic compaction (snapshot +
        journal truncate) at the next commit; ``None`` disables the
        threshold (explicit :meth:`snapshot` calls still compact).
    """

    def __init__(
        self,
        fragment: str | Fragment = "rhodf",
        buffer_size: int = 50,
        timeout: float | None = 0.05,
        workers: int = 4,
        trace: Trace | None = None,
        dictionary: TermDictionary | None = None,
        store: TripleStore | str | None = None,
        routing: str = "predicate",
        adaptive: "AdaptiveBufferController | bool | None" = None,
        persist_dir: "str | Path | None" = None,
        persist_fsync: bool = True,
        compact_journal_bytes: int | None = DEFAULT_COMPACT_BYTES,
        snapshot_format: str = "v1",
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if snapshot_format not in ("v1", "v2"):
            raise ValueError(f"unknown snapshot format {snapshot_format!r}")
        #: Format used when *writing* snapshots (durable seals and
        #: ``snapshot_bytes``); both formats are always readable.
        self.snapshot_format = snapshot_format
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {timeout}")
        if routing not in ("predicate", "broadcast"):
            raise ValueError(f"routing must be 'predicate' or 'broadcast', got {routing!r}")
        self.fragment = fragment if isinstance(fragment, Fragment) else get_fragment(fragment)
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self.store = create_store(store)
        # Captured for the snapshot header (informational; snapshots are
        # backend-independent and restore into any registered backend).
        self._store_spec = store if isinstance(store, str) else type(self.store).__name__
        # Durability: load the snapshot before anything can dispatch, so
        # the recovered closure never re-enters the rule pipeline.
        self._persist: PersistenceManager | None = None
        self._replaying = False
        self._staged_assertions: list[Triple] = []
        self._staged_retractions: list[Triple] = []
        self.recovery: RecoveryInfo | None = None
        loaded_snapshot = None
        replay_records: list = []
        recovered_explicit: set[EncodedTriple] | None = None
        if persist_dir is not None:
            if not isinstance(self.dictionary, TermDictionary):
                raise SliderError(
                    "persistence requires a TermDictionary "
                    f"(got {type(self.dictionary).__name__})"
                )
            self._persist = PersistenceManager(
                persist_dir,
                fsync=persist_fsync,
                compact_bytes=compact_journal_bytes,
                fragment=self.fragment.name,
                snapshot_format=snapshot_format,
            )
            try:
                loaded_snapshot, replay_records = self._persist.load()
                for source, recorded in (
                    ("snapshot", getattr(loaded_snapshot, "fragment", None)),
                    ("changelog", self._persist.journal_fragment),
                ):
                    # Replaying under different rules would silently
                    # produce a different closure — refuse both
                    # durable artifacts.
                    if recorded is not None and recorded != self.fragment.name:
                        raise SliderError(
                            f"{source} in {persist_dir} was built under fragment "
                            f"{recorded!r}, engine runs {self.fragment.name!r}"
                        )
                if loaded_snapshot is not None:
                    recovered_explicit = loaded_snapshot.restore(
                        self.dictionary, self.store
                    )
            except BaseException:
                # A failed start-up must release the directory lock and
                # file handles, or a retrying caller is wedged out.
                self._persist.close()
                raise
        self.vocab = Vocabulary(self.dictionary)
        self.trace = trace if trace is not None else NullTrace()
        self.buffer_size = buffer_size
        self.timeout = timeout
        self.workers = workers

        self.rules = self.fragment.rules(self.vocab)
        self.dependency_graph = DependencyGraph(self.rules)
        self.routing = routing
        if routing == "broadcast":
            self._routing, self._universal = {}, tuple(range(len(self.rules)))
        else:
            self._routing, self._universal = build_routing_table(self.rules)
        # Lazy activation for universal rules: while a rule's constant
        # body predicates have no stored triples, only triples carrying
        # one of those predicates are delivered to it (they activate the
        # rule; everything else is already in the store and will be found
        # by the activating triple's own half-join).
        self._activation: dict[int, frozenset[int] | None] = {
            # getattr: duck-typed custom rules without the property are
            # treated as always-active (the conservative choice).
            index: getattr(self.rules[index], "activation_predicates", None)
            for index in self._universal
        }
        # Delta pipeline state: every store mutation is recorded in the
        # change log; commits snapshot it into an InferenceReport.
        # Two locks, always acquired commit-then-tx: _commit_lock
        # serializes whole commits (apply/flush) against each other,
        # while _tx_lock is the short writer gate — writers (the add
        # shims) hold it per batch, and a commit only holds it for the
        # final quiet-check + snapshot, so a background flush_async can
        # compute the fixpoint while service threads keep queueing.
        self._changes = ChangeLog()
        self._revision = 0 if loaded_snapshot is None else loaded_snapshot.revision
        # Per-rule-module metric children, resolved lazily on the first
        # commit and reused on every one after (see _commit_revision).
        self._obs_rule_children: dict[str, object] = {}
        self._commit_lock = threading.RLock()
        self._tx_lock = threading.RLock()
        self._subscriptions: list[Subscription] = []
        # Commit listeners observe each content-bearing revision's
        # *requested* term-level delta — exactly what the changelog
        # journals — so a replication change feed ships records a
        # follower can replay through apply() byte-for-byte like
        # recovery does.  Registering a listener turns on the same
        # staging machinery persistence uses.
        self._commit_listeners: list[Callable[[int, tuple, tuple], None]] = []

        self.modules: list[RuleModule] = [
            RuleModule(rule, TripleBuffer(rule.name, capacity=buffer_size))
            for rule in self.rules
        ]
        self.distributors: list[Distributor] = [
            Distributor(
                module,
                self.store,
                dispatch=self._dispatch,
                dependents=self.dependency_graph.successors(module.rule.name),
                trace=self.trace,
                on_new=self._record_inferred,
            )
            for module in self.modules
        ]
        self.input_manager = InputManager(
            self.dictionary,
            self.store,
            dispatch=self._dispatch,
            trace=self.trace,
            on_new=self._record_explicit,
        )
        if recovered_explicit is not None:
            # The snapshot's assertion partition survives recovery: DRed
            # immunity and input_count depend on it.
            self.input_manager.explicit.update(recovered_explicit)
        if adaptive is True:
            adaptive = AdaptiveBufferController()
        self.adaptive = adaptive or None
        if self.adaptive is not None:
            self.adaptive.attach(self.modules)

        self._pending = 0
        self._idle = threading.Condition()
        self._errors: list[BaseException] = []
        self._closed = False
        if workers == 0:
            self._executor = _InlineExecutor()
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="slider-rule"
            )
        self._sweeper: threading.Thread | None = None
        self._sweeper_stop = threading.Event()
        if timeout is not None and workers > 0:
            self._sweeper = threading.Thread(
                target=self._sweep_timeouts, name="slider-sweeper", daemon=True
            )
            self._sweeper.start()

        # Explicit baseline for the input/inferred split (demo panel 3).
        self._axiom_count = 0
        axioms = self.fragment.axioms()
        if axioms:
            self._axiom_count = self.input_manager.add(axioms)
        if loaded_snapshot is not None:
            # Recovered axioms are already stored (the add above was a
            # no-op); the baseline comes from the snapshot header.
            self._axiom_count = loaded_snapshot.axiom_count
            # Stateful rules (the OWL-Horst transitivity registry) never
            # saw the restored triples — re-prime them from the store.
            for rule in self.rules:
                prime = getattr(rule, "prime", None)
                if prime is not None:
                    prime(self.store, self.vocab)
        if self._persist is not None:
            try:
                self._recover(loaded_snapshot, replay_records)
            except BaseException:
                self._persist.close()
                raise
            finally:
                close_image = getattr(loaded_snapshot, "close", None)
                if close_image is not None:  # v2 images hold an mmap
                    close_image()

    # --- delta pipeline (the transactional entry point) ---------------------
    def apply(self, delta: Delta) -> InferenceReport:
        """Commit one :class:`~repro.reasoner.delta.Delta` as a revision.

        The single mutation path of the engine: retractions run through
        DRed against the quiesced closure, assertions flow through the
        input manager, and the commit barrier waits for the fixpoint.
        Returns the revision's
        :class:`~repro.reasoner.delta.InferenceReport` — the exact store
        diff (explicit/inferred added, removed, re-derivation counts,
        per-module timings) — and notifies every live subscription with
        its binding-level delta.

        Deltas are net-normalized: a triple asserted *and* retracted in
        the same delta is a no-op.  Any mutations deferred earlier (the
        one-shot :meth:`add` shim, stream chunks) are folded into this
        revision, so the report remains the precise diff against the
        previous revision.

        A graph-scoped delta (``Delta(graph=...)``) additionally tags
        the revision's newly-explicit assertions — including any folded
        deferred mutations, which join the revision *and* its scope —
        into the named graph's sparse store column, journals the graph
        label with the revision's changelog record, and stamps it on
        the returned report.  Inferred consequences stay in the default
        graph: rule conclusions are dataset-wide.
        """
        self._check_open()
        if not isinstance(delta, Delta):
            raise TypeError(f"apply() takes a Delta, got {type(delta).__name__}")
        with self._commit_lock, self._tx_lock:
            staged_mark = (len(self._staged_assertions), len(self._staged_retractions))
            fresh: list[Triple] | None = None
            if self._staging_enabled or delta.graph is not None:
                # Re-asserting an already-explicit triple is a complete
                # no-op; journaling (and graph-tagging) only the rest
                # keeps re-ingestion of a persisted dataset from
                # bloating the changelog while still recording
                # explicitness *promotions* (assertion of a
                # currently-inferred triple).
                explicit = self.input_manager.explicit
                encode = self.dictionary.encode_triple
                fresh = [t for t in delta.assertions if encode(t) not in explicit]
            if self._staging_enabled:
                self._staged_assertions.extend(fresh)
                self._staged_retractions.extend(delta.retractions)
            try:
                if delta.retractions:
                    self._quiesce()  # retraction is defined against a closure
                    self._retract_encoded(
                        [self.dictionary.encode_triple(t) for t in delta.retractions]
                    )
                if delta.assertions:
                    self.input_manager.add(delta.assertions)
                self._quiesce()
                if delta.graph is not None:
                    # Tag everything this commit will journal, so a
                    # recovered engine (which re-tags each record's
                    # assertions) reproduces the column exactly.
                    to_tag = (
                        self._staged_assertions if self._staging_enabled else fresh
                    )
                    self._tag_graph(to_tag, delta.graph)
                return self._commit_revision(graph=delta.graph)
            except BaseException:
                # A failed apply must not poison the *next* commit's
                # journal record with this delta's staged mutations.
                del self._staged_assertions[staged_mark[0]:]
                del self._staged_retractions[staged_mark[1]:]
                raise

    def transaction(self, graph: Term | None = None) -> Transaction:
        """Open a :class:`~repro.reasoner.delta.Transaction` builder.

        ``graph`` scopes the whole transaction to one named graph — the
        built delta carries it exactly as ``Delta(graph=...)`` would.

        >>> with reasoner.transaction() as tx:
        ...     tx.add(fresh_triples)
        ...     tx.retract(stale_triples)
        >>> tx.report.revision
        """
        self._check_open()
        return Transaction(self, graph=graph)

    def subscribe(
        self,
        patterns: Sequence[TriplePattern],
        callback: Callable[..., None] | None = None,
        graph: Term | None = None,
    ) -> Subscription:
        """Register a standing BGP, notified with binding-level deltas.

        ``patterns`` is a conjunction of (s, p, o) triples over
        :class:`~repro.rdf.terms.Variable` terms — the same language as
        :func:`repro.store.query.solve`.  The current solutions are
        materialized once at registration; afterwards each committed
        revision is folded in incrementally (work proportional to the
        delta) and the subscription receives a
        :class:`~repro.reasoner.subscription.SubscriptionEvent` whenever
        — and only when — its solution set actually changed.  With no
        ``callback``, events queue on the subscription for polling.

        ``graph`` filters delivery by commit scope: the subscription
        only sees revisions whose delta targeted that named graph —
        the tenant-isolation primitive of the serving layer.  (Default
        ``None`` delivers every revision, regardless of scope.)
        """
        self._check_open()
        with self._commit_lock, self._tx_lock:
            self._quiesce()
            subscription = Subscription(patterns, callback, graph=graph)
            subscription._seed(self.graph)
            # Recorded under the commit lock: the solution set above is
            # exactly the state of this revision (consumers pair the two,
            # e.g. the SSE hello event).
            subscription.seeded_revision = self._revision
            self._subscriptions.append(subscription)
        return subscription

    def flush_async(self) -> Ticket:
        """Pipeline the commit barrier: flush on a background thread.

        Returns immediately with a :class:`~repro.reasoner.delta.Ticket`
        that resolves to the revision's report, so a service thread can
        keep queueing writes while the fixpoint completes.
        """
        self._check_open()
        ticket = Ticket()

        def run() -> None:
            try:
                ticket._resolve(self.flush())
            except BaseException as error:
                ticket._fail(error)

        threading.Thread(target=run, name="slider-flush", daemon=True).start()
        return ticket

    @property
    def revision(self) -> int:
        """The id of the last committed revision (0 before any commit)."""
        return self._revision

    # --- replication hooks --------------------------------------------------
    @property
    def _staging_enabled(self) -> bool:
        """Must requested deltas be staged for the journal / feed?"""
        return self._persist is not None or bool(self._commit_listeners)

    def add_commit_listener(
        self, listener: Callable[[int, tuple, tuple], None]
    ) -> None:
        """Observe every content-bearing commit's requested delta.

        ``listener(revision, assertions, retractions)`` is called under
        the commit lock, after the revision is journaled (when durable)
        and before subscriptions are notified.  The tuples carry the
        *requested* term-level mutations — the same record the
        write-ahead changelog stores — so a replication feed built on
        this hook ships deltas a follower replays through
        :meth:`apply_at` to reach the identical closure and revision
        ids.  Register listeners before accepting writes: mutations
        staged while no listener (and no persistence) is active are not
        retroactively observable.
        """
        with self._commit_lock, self._tx_lock:
            self._commit_listeners.append(listener)

    def remove_commit_listener(
        self, listener: Callable[[int, tuple, tuple], None]
    ) -> None:
        """Detach a commit listener (no-op when not registered)."""
        with self._commit_lock, self._tx_lock:
            if listener in self._commit_listeners:
                self._commit_listeners.remove(listener)

    def apply_at(self, revision: int, delta: Delta) -> InferenceReport:
        """Commit ``delta`` as exactly revision ``revision`` (replicas).

        The follower-side twin of changelog replay: the revision counter
        fast-forwards over the gap (unjournaled empty revisions on the
        leader) and the delta commits through the ordinary
        :meth:`apply` pipeline, so the replica reaches the same closure
        under the same revision id, fires the same reports and
        subscription events, and — when itself durable — journals the
        same record.  ``revision`` must be ahead of the engine's current
        revision; replicated streams only move forward.
        """
        self._check_open()
        with self._commit_lock, self._tx_lock:
            if revision <= self._revision:
                raise SliderError(
                    f"replicated revision {revision} is not ahead of "
                    f"engine revision {self._revision}"
                )
            previous = self._revision
            self._revision = revision - 1
            try:
                report = self.apply(delta)
            except BaseException:
                # A failed replicated apply must not leave the counter
                # fast-forwarded: a later local commit would consume the
                # leader's id and wedge every retry of this record.
                self._revision = previous
                raise
            assert report.revision == revision
            return report

    def settle(self) -> None:
        """Drain every buffer and reach the fixpoint *without* committing.

        Replication helper: a replica must be quiescent before serving
        (read views image the store) yet must not consume a revision id
        of its own — ids are assigned by the leader's commits.  Anything
        settled here folds into the next committed revision's report.
        """
        self._check_open()
        with self._commit_lock, self._tx_lock:
            self._quiesce()

    def restore_snapshot(self, snapshot: Snapshot) -> None:
        """Load a binary snapshot image into this engine (replica bootstrap).

        Only valid on an engine that has never committed a revision: the
        snapshot's closure, explicit partition, axiom baseline and
        revision id *become* the engine's state, exactly as a durable
        engine restores its own ``snapshot.slider`` at start-up.  The
        fragment's own axioms (ingested at construction) are already
        part of the image, so the union is the snapshot closure
        bit-for-bit.  On a durable engine the restored image is sealed
        to disk immediately, so a restart recovers locally instead of
        re-bootstrapping.  Stateful rules are re-primed from the store.
        """
        self._check_open()
        if snapshot.fragment and snapshot.fragment != self.fragment.name:
            raise SliderError(
                f"snapshot was built under fragment {snapshot.fragment!r}, "
                f"engine runs {self.fragment.name!r}"
            )
        with self._commit_lock, self._tx_lock:
            if self._revision != 0:
                raise SliderError(
                    "restore_snapshot needs a fresh engine "
                    f"(already at revision {self._revision})"
                )
            self._quiesce()  # finish the axiom ingestion; discarded below
            explicit = snapshot.restore(self.dictionary, self.store)
            self.input_manager.explicit.update(explicit)
            self._axiom_count = snapshot.axiom_count
            self._revision = snapshot.revision
            # Bootstrap is state transfer, not a revision: the epoch's
            # recorded changes (axiom closure) are part of the image.
            self._changes = ChangeLog()
            self._staged_assertions = []
            self._staged_retractions = []
            for rule in self.rules:
                prime = getattr(rule, "prime", None)
                if prime is not None:
                    prime(self.store, self.vocab)
            if self._persist is not None:
                self._write_snapshot_locked()

    def snapshot_bytes(self, format: str | None = None) -> bytes:
        """The committed state as one self-verifying snapshot blob.

        Serves replica bootstrap (the leader's ``GET /snapshot``)
        without touching the durable files or truncating the changelog.
        The engine is locked for the duration, so the image is exactly
        the last committed revision.  (Mutations deferred through the
        legacy ``add`` shim are settled into the image without a commit
        — on the coalesced service path every write commits, so the
        image and revision always agree.)

        ``format`` overrides the engine's ``snapshot_format`` for this
        one image — the leader uses it to honour a bootstrap client's
        requested wire format.
        """
        format = format or self.snapshot_format
        if format not in ("v1", "v2"):
            raise ValueError(f"unknown snapshot format {format!r}")
        self._check_open()
        with self._commit_lock, self._tx_lock:
            self._quiesce()
            explicit = set(self.input_manager.explicit)
            inferred = [t for t in self.store if t not in explicit]
            if format == "v2":
                from ..persist.columnar import encode_columnar_snapshot as encode
            else:
                encode = encode_snapshot
            return encode(
                revision=self._revision,
                fragment=self.fragment.name,
                store_spec=self._store_spec,
                axiom_count=self._axiom_count,
                terms=self.dictionary.snapshot_terms(),
                explicit=sorted(explicit),
                inferred=sorted(inferred),
                graphs=self._graph_column(),
            )

    # --- durability ---------------------------------------------------------
    @property
    def persist_dir(self) -> Path | None:
        """The durable state directory, or ``None`` when in-memory."""
        return self._persist.directory if self._persist is not None else None

    @property
    def persistence(self) -> PersistenceManager | None:
        """The :class:`PersistenceManager`, or ``None`` when in-memory.

        Exposed for infrastructure that composes with durability — the
        replication change feed reads the WAL retention floor from it.
        """
        return self._persist

    def snapshot(self) -> Path:
        """Compact now: commit pending work, snapshot, truncate the journal.

        Safe to call from any thread (it takes the commit locks, like
        :meth:`flush`), so a service can run compaction from a
        background scheduler instead of waiting for the
        ``compact_journal_bytes`` threshold.  Returns the snapshot path.

        Compaction consumes no revision id of its own: pending work is
        committed first (as with :meth:`flush`), but an already-quiesced
        engine seals the current revision as-is — so the revision
        counter, the serving layer's read views, and any replication
        followers all stay aligned across compactions.
        """
        self._check_open()
        if self._persist is None:
            raise SliderError("persistence is not enabled (pass persist_dir=...)")
        with self._commit_lock:
            while True:
                self._quiesce()
                with self._tx_lock:
                    if self._pending == 0 and all(
                        len(m.buffer) == 0 for m in self.modules
                    ):
                        if (
                            self._changes.has_changes
                            or self._staged_assertions
                            or self._staged_retractions
                        ):
                            self._commit_revision()
                        self._write_snapshot_locked()
                        return self._persist.snapshot_path

    def _graph_column(self) -> list[tuple[int, int, int, int]]:
        """The store's sparse named-graph column as sorted (s, p, o, g)
        rows — the snapshot writers' input (empty without the quad
        protocol or when everything lives in the default graph)."""
        assignments = getattr(self.store, "graph_assignments", None)
        if assignments is None:
            return []
        return sorted((s, p, o, g) for (s, p, o), g in assignments().items())

    def _write_snapshot_locked(self) -> None:
        """Serialize the quiesced state (callers hold both locks)."""
        explicit = set(self.input_manager.explicit)
        inferred = [t for t in self.store if t not in explicit]
        self._persist.write_snapshot(
            revision=self._revision,
            fragment=self.fragment.name,
            store_spec=self._store_spec,
            axiom_count=self._axiom_count,
            terms=self.dictionary.snapshot_terms(),
            explicit=sorted(explicit),
            inferred=sorted(inferred),
            graphs=self._graph_column(),
        )

    def _recover(self, snapshot, records) -> None:
        """Replay the changelog tail through the normal pipeline.

        Runs last in ``__init__``: the snapshot (if any) is already in
        the store, so each journaled revision re-commits through
        :meth:`apply` exactly as the lost process committed it — same
        revision ids, same closure, deterministically re-fired reports.
        """
        if snapshot is None and not records and not self._persist.torn_bytes_dropped:
            return  # cold start: nothing durable yet
        reports: list[InferenceReport] = []
        self._replaying = True
        try:
            for record in records:
                if record.revision <= self._revision:
                    raise SliderError(
                        f"changelog replay drifted: journal revision "
                        f"{record.revision} at or below engine revision "
                        f"{self._revision}"
                    )
                # Gaps are empty revisions (bare flushes) that were
                # deliberately not journaled: fast-forward over them.
                self._revision = record.revision - 1
                report = self.apply(
                    Delta(
                        assertions=record.assertions,
                        retractions=record.retractions,
                        graph=record.graph,
                    )
                )
                assert report.revision == record.revision
                reports.append(report)
        finally:
            self._replaying = False
        self.recovery = RecoveryInfo(
            snapshot_revision=snapshot.revision if snapshot is not None else 0,
            snapshot_triples=snapshot.triple_count if snapshot is not None else 0,
            replayed_records=len(records),
            reports=reports,
            torn_bytes_dropped=self._persist.torn_bytes_dropped,
        )

    # --- one-shot shims (deprecated in favour of apply/transaction) ---------
    def add(self, triples: Iterable[Triple] | Triple) -> int:
        """Feed explicit triples (incremental). Returns how many were new.

        .. deprecated::
            Thin shim over the delta pipeline — equivalent to staging
            ``Delta(assertions=triples)`` without the commit barrier;
            the triples land in the revision committed by the next
            :meth:`flush` / :meth:`apply`.  Prefer
            :meth:`transaction` (or :meth:`apply`) to get an
            :class:`~repro.reasoner.delta.InferenceReport` back.
        """
        self._check_open()
        if isinstance(triples, Triple):
            triples = (triples,)
        with self._tx_lock:
            if not self._staging_enabled:
                return self.input_manager.add(triples)
            triples = list(triples)
            encoded = encode_batch(self.dictionary, triples)
            explicit = self.input_manager.explicit
            fresh = [triples[i] for i, t in enumerate(encoded) if t not in explicit]
            accepted = self.input_manager.add_encoded(encoded)
            # Staged only after the ingest succeeded, so a failed batch
            # never leaks into the next commit's journal record; and
            # only the not-yet-explicit triples — re-asserting an
            # explicit triple is a no-op not worth journal bytes.
            self._staged_assertions.extend(fresh)
            return accepted

    def add_encoded(self, encoded: Sequence[EncodedTriple]) -> int:
        """Feed already-encoded triples (zero-copy fast path, deferred)."""
        self._check_open()
        with self._tx_lock:
            if not self._staging_enabled:
                return self.input_manager.add_encoded(encoded)
            # The changelog is term-level (self-contained records);
            # decoding here keeps the zero-copy path durable too.
            decode = self.dictionary.decode_triple
            explicit = self.input_manager.explicit
            staged = [decode(t) for t in encoded if t not in explicit]
            accepted = self.input_manager.add_encoded(encoded)
            self._staged_assertions.extend(staged)
            return accepted

    def load(self, path) -> int:
        """Load an N-Triples (``.nt``) or Turtle (``.ttl``) file."""
        from ..rdf.ntriples import parse_ntriples_file
        from ..rdf.turtle import parse_turtle_file

        text_path = str(path)
        if text_path.endswith((".ttl", ".turtle")):
            return self.add(parse_turtle_file(path))
        return self.add(parse_ntriples_file(path))

    def flush(self) -> InferenceReport:
        """Barrier: force-fire every buffer, wait for quiescence, commit.

        On return the store contains the complete fixpoint of everything
        added so far, and the pending changes are committed as a
        revision whose :class:`~repro.reasoner.delta.InferenceReport` is
        returned (subscriptions are notified).  Raises
        :class:`SliderError` if any rule module failed.

        Writers are only excluded during the brief quiet-check +
        snapshot at the end — the fixpoint computation itself runs with
        the writer gate open, so concurrent :meth:`add` calls (and the
        service threads behind :meth:`flush_async`) keep flowing; a
        batch that slips in before the commit point simply joins this
        revision.
        """
        self._check_open()
        with self._commit_lock:
            while True:
                self._quiesce()
                with self._tx_lock:
                    # Quiet only if no writer snuck a batch in between
                    # the drain and the gate: then the change log and
                    # the store agree, and the snapshot is exact.
                    if self._pending == 0 and all(
                        len(m.buffer) == 0 for m in self.modules
                    ):
                        return self._commit_revision()

    def _quiesce(self) -> None:
        """Drain every buffer and wait for the fixpoint (no commit)."""
        if self.trace.enabled:
            self.trace.record("flush")
        while True:
            fired = False
            for index, module in enumerate(self.modules):
                batch = module.buffer.drain()
                if batch:
                    fired = True
                    self._schedule(index, batch, _CAUSE_FLUSH)
            self._wait_idle()
            self._raise_errors()
            if not fired and all(len(m.buffer) == 0 for m in self.modules):
                break
        if self.trace.enabled:
            self.trace.record("done", store_size=len(self.store))

    def create_input_manager(self) -> InputManager:
        """A fresh input manager wired to this engine.

        "Multiple instances of input manager allows to retrieve data
        from various sources" (§2): each source thread can own one, with
        independent received/accepted statistics; they all feed the same
        store and buffers.  Note the per-manager ``explicit`` sets —
        retraction consults the *primary* manager, so assertions made
        through secondary managers are merged into it.

        On a durable engine the manager's ingest is additionally staged
        for the changelog (under the writer gate), so multi-source
        ingestion survives recovery like every other mutation path.
        """
        self._check_open()
        manager = InputManager(
            self.dictionary,
            self.store,
            dispatch=self._dispatch,
            trace=self.trace,
            on_new=self._record_explicit,
        )
        manager.explicit = self.input_manager.explicit  # shared assertion set
        inner_add_encoded = manager.add_encoded

        def add_encoded_staged(encoded: Sequence[EncodedTriple]) -> int:
            with self._tx_lock:
                if not self._staging_enabled:
                    return inner_add_encoded(encoded)
                decode = self.dictionary.decode_triple
                explicit = manager.explicit
                staged = [decode(t) for t in encoded if t not in explicit]
                accepted = inner_add_encoded(encoded)
                self._staged_assertions.extend(staged)
                return accepted

        # Term-level add() funnels through add_encoded, so patching the
        # one entry point covers both ingest paths; the staging check is
        # deferred to call time so a commit listener (replication feed)
        # attached after this manager was created still sees its ingest.
        manager.add_encoded = add_encoded_staged
        return manager

    def retract(self, triples: Iterable[Triple] | Triple) -> int:
        """Remove asserted triples *and* everything that depended on them.

        Implements DRed (see :mod:`repro.reasoner.retraction`): the
        retracted assertions and their no-longer-supported consequences
        leave the store; consequences that are still derivable another
        way survive.  Returns the number of triples actually deleted
        (after re-derivation).

        .. deprecated::
            Thin shim over :meth:`apply` with a retraction-only
            :class:`~repro.reasoner.delta.Delta`; prefer
            :meth:`transaction` / :meth:`apply` to get the revision's
            full :class:`~repro.reasoner.delta.InferenceReport`.

        Limitation: fragments with *stateful* rules (the OWL-Horst
        transitivity registry) do not support retraction of the triples
        feeding that state — the built-in ``rhodf``/``rdfs`` fragments
        are fully supported.
        """
        if isinstance(triples, Triple):
            triples = (triples,)
        report = self.apply(Delta(retractions=triples))
        return report.dred_deleted - report.dred_rederived

    def _retract_encoded(self, encoded: list[EncodedTriple]) -> None:
        """DRed one batch of retractions (under the transaction lock,
        against an already-quiesced closure), recording the changes."""
        deleted, rederived = dred_retract(
            self.store,
            self.rules,
            self.vocab,
            self.input_manager.explicit,
            encoded,
            redispatch=self._dispatch,
        )
        self._changes.record_removed(deleted)
        self._changes.record_rederived(rederived)
        if self.trace.enabled:
            self.trace.record(
                "retract",
                requested=len(encoded),
                deleted=len(deleted),
                rederived=len(rederived),
                store_size=len(self.store),
            )

    def reinfer(self) -> None:
        """Route every stored triple through the rules once, then flush.

        Use this to reason over a store that was populated *outside* the
        engine (e.g. a shared :class:`~repro.store.graph.Graph`): adding
        a triple that is already stored is a no-op by design, so
        pre-existing triples never reach the buffers otherwise.
        """
        self._check_open()
        snapshot = list(self.store)
        if snapshot:
            self._dispatch(snapshot)
        self.flush()

    def materialize(self, triples: Iterable[Triple]) -> int:
        """Convenience: add + flush.  Returns the number of new triples."""
        new = self.add(triples)
        self.flush()
        return new

    def close(self) -> None:
        """Flush outstanding work and release the thread pool."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True
            self._sweeper_stop.set()
            if self._sweeper is not None:
                self._sweeper.join(timeout=2.0)
            self._executor.shutdown(wait=True)
            if self._persist is not None:
                self._persist.close()

    def __enter__(self) -> "Slider":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # don't mask the original error with a flush failure
            self._closed = True
            self._sweeper_stop.set()
            self._executor.shutdown(wait=False)
            if self._persist is not None:
                self._persist.close()

    # --- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        """Total stored triples (explicit + axioms + inferred)."""
        return len(self.store)

    @property
    def graph(self) -> Graph:
        """Term-level view over the reasoner's dictionary + store."""
        return Graph(self.dictionary, self.store)

    # --- named graphs --------------------------------------------------------
    def _tag_graph(self, triples: Sequence[Triple], graph: Term) -> None:
        """Tag ``triples`` into ``graph``'s sparse store column."""
        set_graphs = getattr(self.store, "set_graphs", None)
        if set_graphs is None:
            raise SliderError(
                f"store backend {type(self.store).__name__} does not support "
                "named graphs (no set_graphs)"
            )
        if triples:
            encode = self.dictionary.encode_triple
            set_graphs([encode(t) for t in triples], self.dictionary.encode(graph))

    def graph_counts(self) -> dict[Term, int]:
        """Per-named-graph explicit triple counts, at term level.

        The default graph is not listed (its size is the store total
        minus every named graph's).  Backends without the quad protocol
        report no named graphs — everything is default-graph.
        """
        self._check_open()
        counts = getattr(self.store, "graph_counts", None)
        if counts is None:
            return {}
        decode = self.dictionary.decode
        return {decode(graph_id): count for graph_id, count in counts().items()}

    def triples_in_graph(self, graph: Term | None) -> list[Triple]:
        """One named graph's explicit triples (``None``: the default graph,
        i.e. every stored triple not tagged into any named graph)."""
        self._check_open()
        if graph is not None and not isinstance(graph, (IRI, BNode)):
            raise TypeError(f"graph must be an IRI, BNode or None, got {graph!r}")
        in_graph = getattr(self.store, "triples_in_graph", None)
        if in_graph is None:
            encoded = list(self.store) if graph is None else []
        else:
            graph_id = None if graph is None else self.dictionary.encode(graph)
            encoded = in_graph(graph_id)
        decode = self.dictionary.decode_triple
        return [decode(t) for t in encoded]

    @property
    def input_count(self) -> int:
        """Live asserted triples (excluding fragment axioms).

        Counted from the assertion set, so retraction is reflected.
        """
        return len(self.input_manager.explicit) - self._axiom_count

    @property
    def inferred_count(self) -> int:
        """Live derived triples (store minus assertions and axioms)."""
        return len(self.store) - len(self.input_manager.explicit)

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-rule counters (demo GUI): buffer + module statistics."""
        merged: dict[str, dict[str, int]] = {}
        for module in self.modules:
            stats = module.stats()
            stats.update(module.buffer.counters())
            merged[module.rule.name] = stats
        return merged

    def module(self, rule_name: str) -> RuleModule:
        """The module for one rule (raises ``KeyError`` if absent)."""
        for candidate in self.modules:
            if candidate.rule.name == rule_name:
                return candidate
        raise KeyError(rule_name)

    def __repr__(self):
        return (
            f"<Slider fragment={self.fragment.name!r} rules={len(self.rules)} "
            f"store={len(self.store)} workers={self.workers}>"
        )

    # --- internals -----------------------------------------------------------
    def _record_explicit(self, triples: Sequence[EncodedTriple]) -> None:
        """Change-log hook: store-new triples from an input manager."""
        self._changes.record_added(triples, explicit=True)

    def _record_inferred(self, triples: Sequence[EncodedTriple]) -> None:
        """Change-log hook: store-new triples from a distributor."""
        self._changes.record_added(triples, explicit=False)

    def _commit_revision(self, graph: Term | None = None) -> InferenceReport:
        """Seal the current change epoch into a numbered revision.

        ``graph`` is the named graph a graph-scoped ``apply`` targeted;
        it is stamped on the report and journaled with the record so
        recovery re-tags the store column.
        """
        self._revision += 1
        report = self._changes.snapshot(self._revision, self.dictionary, graph=graph)
        # Drain the staged requested delta in every case (replay stages
        # too); journal/feed it only for live, content-bearing commits —
        # the replay source *is* the journal, and a completely empty
        # revision (a bare flush, e.g. the implicit one in close())
        # writes no record: journaling it would cost an fsync per no-op
        # cycle, and both replay and followers fast-forward the revision
        # counter over gaps.
        assertions = self._staged_assertions
        retractions = self._staged_retractions
        self._staged_assertions = []
        self._staged_retractions = []
        content = not self._replaying and bool(assertions or retractions or report)
        if self._persist is not None and content:
            self._persist.journal_commit(
                self._revision, assertions, retractions, graph=graph
            )
            if self._persist.should_compact():
                self._write_snapshot_locked()
        if self._commit_listeners and not self._replaying:
            # Every live commit, content-bearing or not: an empty
            # revision still consumes a revision id, and the feed must
            # advance its watermark so followers can track the leader's
            # revision counter without receiving (nonexistent) records.
            for listener in list(self._commit_listeners):
                listener(self._revision, tuple(assertions), tuple(retractions))
        if self.trace.enabled:
            self.trace.record(
                "commit",
                revision=report.revision,
                explicit_added=report.explicit_added_count,
                inferred_added=report.inferred_added_count,
                removed=report.removed_count,
                store_size=len(self.store),
            )
        if _obs.REGISTRY.enabled:
            _obs.ENGINE_COMMITS.inc()
            _obs.ENGINE_APPLY_SECONDS.observe(report.seconds)
            if report.dred_deleted:
                _obs.ENGINE_DRED_DELETED.inc(report.dred_deleted)
            if report.dred_rederived:
                _obs.ENGINE_DRED_REDERIVED.inc(report.dred_rederived)
            # The rule-module set is fixed per engine, so the label
            # children are resolved once and cached — this loop runs on
            # every commit.
            children = self._obs_rule_children
            for module_name, module_seconds in report.timings.items():
                child = children.get(module_name)
                if child is None:
                    child = _obs.ENGINE_RULE_SECONDS.labels(module_name)
                    children[module_name] = child
                child.inc(module_seconds)
        self._notify_subscribers(report)
        return report

    def _notify_subscribers(self, report: InferenceReport) -> None:
        if not self._subscriptions:
            return
        with TRACER.span(
            "subscription.delivery",
            revision=report.revision,
            subscriptions=len(self._subscriptions),
        ):
            self._notify_subscribers_traced(report)

    def _notify_subscribers_traced(self, report: InferenceReport) -> None:
        graph = self.graph
        # Route by predicate: a revision is delivered only to the
        # subscriptions whose constant predicates intersect the delta's
        # touched set (variable-predicate subscriptions always match), so
        # thousands of standing queries cost one set probe each, not one
        # delta filter pass each.
        changed = bool(report)
        touched = report.touched_predicates() if changed else frozenset()
        alive = []
        for subscription in self._subscriptions:
            if not subscription.active:
                continue  # pruned
            alive.append(subscription)
            if not changed or not subscription._wants(touched):
                continue
            if subscription.graph is not None and report.graph != subscription.graph:
                continue  # scoped to another graph's commits
            try:
                subscription._deliver(report, graph)
            except Exception as error:  # a subscriber must never poison a commit
                subscription.error = error
        self._subscriptions = alive

    def _check_open(self) -> None:
        if self._closed:
            raise SliderError("reasoner is closed")
        self._raise_errors()

    def _raise_errors(self) -> None:
        if self._errors:
            cause = self._errors[0]
            raise SliderError(f"rule module failed: {cause!r}") from cause

    def _dispatch(self, triples: Sequence[EncodedTriple]) -> None:
        """Route new stored triples to every matching rule buffer.

        Dispatch is the concatenation of the predicate routing table and
        the universal-input rules (paper Figure 2's "Universal Input").
        """
        routing = self._routing
        if routing:
            per_rule: dict[int, list[EncodedTriple]] = {}
            for triple in triples:
                targets = routing.get(triple[1])
                if targets:
                    for index in targets:
                        per_rule.setdefault(index, []).append(triple)
            for index, batch in per_rule.items():
                self._deliver(index, batch)
        has_predicate = self.store.has_predicate
        for index in self._universal:
            activation = self._activation.get(index)
            if activation is None or any(has_predicate(p) for p in activation):
                self._deliver(index, triples)
                continue
            activating = [t for t in triples if t[1] in activation]
            if activating:
                self._deliver(index, activating)

    def _deliver(self, index: int, batch: Sequence[EncodedTriple]) -> None:
        buffer = self.modules[index].buffer
        for full_batch in buffer.put_many(batch):
            if self.trace.enabled:
                self.trace.record(
                    "buffer_full",
                    rule=self.modules[index].rule.name,
                    size=len(full_batch),
                )
            self._schedule(index, full_batch, _CAUSE_SIZE)

    def _schedule(self, index: int, batch: list[EncodedTriple], cause: str) -> None:
        with self._idle:
            self._pending += 1
        self._executor.submit(self._run_module, index, batch, cause)

    def _run_module(self, index: int, batch: list[EncodedTriple], cause: str) -> None:
        """One rule-module instance (one unit of thread-pool work)."""
        try:
            module = self.modules[index]
            if self.trace.enabled:
                self.trace.record(
                    "rule_start", rule=module.rule.name, size=len(batch), cause=cause
                )
            started = time.perf_counter()
            derived = module.execute(self.store, batch, self.vocab)
            kept = self.distributors[index].collect(derived)
            self._changes.record_timing(
                module.rule.name, time.perf_counter() - started
            )
            if self.trace.enabled:
                self.trace.record(
                    "rule_end",
                    rule=module.rule.name,
                    derived=len(derived),
                    kept=len(kept),
                )
            if self.adaptive is not None:
                adjusted = self.adaptive.observe(
                    module.rule.name, len(batch), len(kept)
                )
                if adjusted and self.trace.enabled:
                    self.trace.record(
                        "adapt",
                        adjustments=self.adaptive.adjustments,
                        capacities=self.adaptive.capacities(),
                    )
        except BaseException as error:  # surfaced at the next flush/add
            self._errors.append(error)
        finally:
            with self._idle:
                self._pending -= 1
                if self._pending == 0:
                    self._idle.notify_all()

    def _wait_idle(self) -> None:
        with self._idle:
            while self._pending > 0:
                self._idle.wait()

    def _sweep_timeouts(self) -> None:
        """Background sweeper: flush buffers inactive beyond the timeout."""
        interval = max(self.timeout / 4.0, 0.005)
        while not self._sweeper_stop.wait(interval):
            for index, module in enumerate(self.modules):
                batch = module.buffer.flush_if_stale(self.timeout)
                if batch:
                    if self.trace.enabled:
                        self.trace.record(
                            "buffer_timeout", rule=module.rule.name, size=len(batch)
                        )
                    self._schedule(index, batch, _CAUSE_TIMEOUT)
