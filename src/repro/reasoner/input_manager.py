"""The input manager (paper §2, "Input Manager").

It receives term-level triples from any number of sources, registers
their terms in the dictionary ("maps the expensive URIs to Longs"),
pushes the encoded triples into the triple store, and hands the *new*
ones to the engine's dispatcher for buffering.  Multiple input managers
(or one shared from many threads) may feed the same engine concurrently;
all state they touch is thread-safe.

The ingest path is batch-native end to end: a batch is encoded in one
:meth:`~repro.dictionary.encoder.TermDictionary.encode_many` call (at
most one dictionary-lock acquisition), pre-deduplicated, and inserted
through the store backend's ``add_all`` — so the store's write locks are
taken a bounded number of times per batch, never per triple.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

from ..dictionary.encoder import EncodedTriple, TermDictionary, encode_batch
from ..rdf.terms import Triple
from ..store.backends.base import TripleStore
from .trace import NullTrace

__all__ = ["InputManager"]


class InputManager:
    """Encodes, stores, and forwards incoming explicit triples."""

    def __init__(
        self,
        dictionary: TermDictionary,
        store: TripleStore,
        dispatch: Callable[[Sequence[EncodedTriple]], None],
        trace=None,
        on_new: Callable[[Sequence[EncodedTriple]], None] | None = None,
    ):
        self.dictionary = dictionary
        self.store = store
        self.dispatch = dispatch
        self.on_new = on_new  # engine change-log hook (store-new explicit triples)
        self.trace = trace if trace is not None else NullTrace()
        self._lock = threading.Lock()
        self.received = 0  # triples offered by sources
        self.accepted = 0  # triples that were new to the store
        # Which stored triples were *asserted* (vs derived).  Retraction
        # needs this distinction: an explicitly asserted triple survives
        # the over-deletion of a derivation that also produces it.
        self.explicit: set[EncodedTriple] = set()

    def add(self, triples: Iterable[Triple]) -> int:
        """Ingest term-level triples; returns how many were new."""
        return self.add_encoded(encode_batch(self.dictionary, triples))

    def add_encoded(self, encoded: Sequence[EncodedTriple]) -> int:
        """Ingest already-encoded triples; returns how many were new.

        Triples are stored *before* they are dispatched to buffers — the
        ordering the pipeline's completeness argument depends on (a rule
        firing always finds every earlier triple in the store).
        """
        if not encoded:
            return 0
        # Pre-deduplicate so the store's write path never burns lock time
        # on intra-batch repeats (first occurrence wins, order preserved).
        batch = list(dict.fromkeys(encoded)) if len(encoded) > 1 else list(encoded)
        new_triples = self.store.add_all(batch)
        with self._lock:
            self.received += len(encoded)
            self.accepted += len(new_triples)
            self.explicit.update(batch)
        if self.trace.enabled:
            self.trace.record(
                "input",
                received=len(encoded),
                new=len(new_triples),
                store_size=len(self.store),
            )
        if new_triples:
            if self.on_new is not None:
                self.on_new(new_triples)
            self.dispatch(new_triples)
        return len(new_triples)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"received": self.received, "accepted": self.accepted}

    def __repr__(self):
        return f"<InputManager received={self.received} accepted={self.accepted}>"
