"""Data-stream support (paper §1, "Data Stream Support").

Slider's :meth:`~repro.reasoner.engine.Slider.add` is already incremental;
this module supplies the sources and pumps that turn files, collections
and generators into *streams* — optionally rate-controlled — and drive
them into an engine, possibly from several threads at once ("the
parallelisation of parsing and reasoning process on multiple data
sources at the same time").

>>> from repro.reasoner.stream import ListSource, StreamPump
>>> pump = StreamPump(reasoner, ListSource(triples), chunk_size=100)
>>> pump.run()              # blocking replay
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Iterator, Sequence

from ..rdf.ntriples import iter_ntriples
from ..rdf.terms import Triple
from .delta import Delta, InferenceReport

__all__ = [
    "StreamSource",
    "ListSource",
    "FileSource",
    "GeneratorSource",
    "RateLimitedSource",
    "StreamPump",
    "merge_sources",
]


class StreamSource:
    """Anything that yields triples in arrival order."""

    def __iter__(self) -> Iterator[Triple]:
        raise NotImplementedError

    def __len__(self) -> int:  # optional; pumps use it for progress only
        raise TypeError(f"{type(self).__name__} has no known length")


class ListSource(StreamSource):
    """A finite, re-iterable stream over an in-memory collection."""

    def __init__(self, triples: Sequence[Triple]):
        self._triples = list(triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)


class FileSource(StreamSource):
    """Streams an N-Triples file line by line (constant memory)."""

    def __init__(self, path):
        self.path = path

    def __iter__(self) -> Iterator[Triple]:
        with open(self.path, "r", encoding="utf-8") as handle:
            yield from iter_ntriples(handle)


class GeneratorSource(StreamSource):
    """Wraps a generator *factory* so the source stays re-iterable."""

    def __init__(self, factory: Callable[[], Iterable[Triple]]):
        self._factory = factory

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._factory())


class RateLimitedSource(StreamSource):
    """Replays an underlying source at ``rate`` triples/second.

    Pacing uses absolute deadlines, so a slow consumer downstream does
    not shift the schedule: the source catches up instead of drifting.
    """

    def __init__(
        self,
        source: StreamSource,
        rate: float,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.source = source
        self.rate = rate
        self._sleep = sleep
        self._clock = clock

    def __iter__(self) -> Iterator[Triple]:
        interval = 1.0 / self.rate
        start = self._clock()
        for count, triple in enumerate(self.source):
            deadline = start + count * interval
            delay = deadline - self._clock()
            if delay > 0:
                self._sleep(delay)
            yield triple

    def __len__(self) -> int:
        return len(self.source)


def merge_sources(*sources: StreamSource) -> StreamSource:
    """Round-robin interleave several sources into one stream."""

    def interleave() -> Iterator[Triple]:
        iterators = [iter(source) for source in sources]
        while iterators:
            alive = []
            for iterator in iterators:
                try:
                    yield next(iterator)
                except StopIteration:
                    continue
                alive.append(iterator)
            iterators = alive

    return GeneratorSource(interleave)


class StreamPump:
    """Drives a source into a reasoner in fixed-size chunks.

    One pump per source; several pumps can feed one engine concurrently
    via :meth:`start` (each pump then owns a thread, mirroring the
    paper's multiple input managers).

    Chunks flow through the engine's unified delta pipeline.  By
    default delivery is *deferred* (the one-shot assertion path: chunks
    land in the revision sealed by the next flush — maximum pipeline
    overlap).  With ``transactional=True`` every chunk commits as its
    own revision via :meth:`Slider.apply`; the per-chunk
    :class:`~repro.reasoner.delta.InferenceReport` is published on
    :attr:`last_report` *before* ``on_chunk`` fires, so stream
    consumers see what each chunk changed without polling.
    ``on_chunk`` is always called as ``on_chunk(size)``, in both modes.

    Pumping into a durable engine (``Slider(persist_dir=...)``)
    composes naturally: with ``transactional=True`` every chunk is
    journaled as its own revision the moment :meth:`Slider.apply`
    returns — a killed pump loses at most the chunk in flight; in
    deferred mode chunks become durable at the next flush's commit.
    """

    def __init__(
        self,
        reasoner,
        source: StreamSource,
        chunk_size: int = 256,
        on_chunk: Callable[[int], None] | None = None,
        transactional: bool = False,
    ):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.reasoner = reasoner
        self.source = source
        self.chunk_size = chunk_size
        self.on_chunk = on_chunk
        self.transactional = transactional
        self.delivered = 0
        #: Report of the last committed chunk (transactional mode only).
        self.last_report: InferenceReport | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    def run(self) -> int:
        """Blocking replay; returns the number of triples delivered."""
        chunk: list[Triple] = []
        for triple in self.source:
            chunk.append(triple)
            if len(chunk) >= self.chunk_size:
                self._deliver(chunk)
                chunk = []
        if chunk:
            self._deliver(chunk)
        return self.delivered

    def _deliver(self, chunk: list[Triple]) -> None:
        if self.transactional:
            self.last_report = self.reasoner.apply(Delta(assertions=chunk))
        else:
            self.reasoner.add(chunk)
        self.delivered += len(chunk)
        if self.on_chunk is not None:
            self.on_chunk(len(chunk))

    # --- threaded operation --------------------------------------------------
    def start(self) -> "StreamPump":
        """Run in a background thread; :meth:`join` to wait."""
        if self._thread is not None:
            raise RuntimeError("pump already started")
        self._thread = threading.Thread(target=self._run_safely, name="slider-pump")
        self._thread.start()
        return self

    def _run_safely(self) -> None:
        try:
            self.run()
        except BaseException as error:
            self._error = error

    def join(self, timeout: float | None = None) -> int:
        """Wait for a started pump; re-raises any pump-thread error."""
        if self._thread is None:
            raise RuntimeError("pump was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("pump did not finish in time")
        if self._error is not None:
            raise self._error
        return self.delivered
