"""Inference trace recording (the data layer behind the demo GUI).

The paper's demo "ran the reasoner and logged the state of all the
modules of Slider at each step of the process", enabling an *inference
player* with pause/backwards/replay.  :class:`Trace` is that log: an
append-only, thread-safe sequence of :class:`TraceEvent` records emitted
by the engine's components.  :mod:`repro.demo.player` reconstructs module
state at any step from it; :mod:`repro.demo.report` renders the summary
panel.

Event kinds
-----------

==================  =====================================================
``input``           a batch of explicit triples entered the input manager
``route``           a triple batch was routed to a rule's buffer
``buffer_full``     a buffer reached its size limit and fired (counter i)
``buffer_timeout``  a buffer was flushed by timeout (counter ii)
``rule_start``      a rule-module instance began executing
``rule_end``        it finished: derived / kept-after-dedup counts (iii)
``store``           store size snapshot after a write batch
``flush``           an explicit flush/quiescence barrier was requested
``done``            the engine reached quiescence
==================  =====================================================

Storage rides the observability layer's
:class:`~repro.obs.tracing.BoundedEventLog` — the same primitive behind
span events — so a runaway engine can no longer grow the demo log
without bound: past ``capacity`` events the oldest are evicted, exactly
like the span ring, and :attr:`Trace.dropped` counts the loss.  Every
record is also forwarded to the ambient tracer as a span event, so
engine steps surface on the enclosing commit span at ``/debug/traces``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Iterator

from ..obs import TRACER
from ..obs.tracing import DEFAULT_EVENT_CAPACITY, BoundedEventLog

__all__ = ["TraceEvent", "Trace", "NullTrace", "save_trace", "load_trace"]


class TraceEvent:
    """One recorded step: sequence number, wall-clock time, kind, payload."""

    __slots__ = ("seq", "timestamp", "kind", "payload")

    def __init__(self, seq: int, timestamp: float, kind: str, payload: dict[str, Any]):
        self.seq = seq
        self.timestamp = timestamp
        self.kind = kind
        self.payload = payload

    def __repr__(self):
        details = ", ".join(f"{k}={v!r}" for k, v in sorted(self.payload.items()))
        return f"<TraceEvent #{self.seq} {self.kind} {details}>"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "seq": self.seq,
            "timestamp": self.timestamp,
            "kind": self.kind,
            **self.payload,
        }


class Trace:
    """Thread-safe, bounded, append-only event log.

    The engine records through :meth:`record`; readers iterate a snapshot
    (never the live storage).  A ``clock`` injectable makes tests
    deterministic; ``capacity`` bounds retention (oldest evicted first,
    counted by :attr:`dropped`).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        capacity: int = DEFAULT_EVENT_CAPACITY,
    ):
        self._log = BoundedEventLog(capacity=capacity)
        self._clock = clock
        self._start = clock()

    @property
    def enabled(self) -> bool:
        return True

    @property
    def capacity(self) -> int:
        """Retention bound: past this many events the oldest are evicted."""
        return self._log.capacity

    @property
    def dropped(self) -> int:
        """Events lost to eviction (0 while the run fits the bound)."""
        return self._log.dropped

    def record(self, kind: str, **payload: Any) -> TraceEvent:
        """Append one event; returns it (tests use the return value).

        The event is also attached to the innermost open span of this
        thread (if any), unifying the demo trace with request tracing.
        """
        seq, stamp = self._log.record(
            kind, payload, stamp=self._clock() - self._start
        )
        TRACER.event(kind, **payload)
        return TraceEvent(seq=seq, timestamp=stamp, kind=kind, payload=payload)

    def __len__(self) -> int:
        return len(self._log)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.snapshot())

    def __getitem__(self, index: int) -> TraceEvent:
        seq, stamp, kind, payload = self._log.snapshot()[index]
        return TraceEvent(seq=seq, timestamp=stamp, kind=kind, payload=payload)

    def snapshot(self) -> list[TraceEvent]:
        """A consistent copy of all retained events."""
        return [
            TraceEvent(seq=seq, timestamp=stamp, kind=kind, payload=payload)
            for seq, stamp, kind, payload in self._log.snapshot()
        ]

    def events_of(self, kind: str) -> list[TraceEvent]:
        """All retained events of one kind."""
        return [event for event in self.snapshot() if event.kind == kind]

    def clear(self) -> None:
        self._log.clear(reset_seq=True)
        self._start = self._clock()


def save_trace(trace: "Trace", path, config: dict | None = None) -> int:
    """Persist a trace (and optional run configuration) as JSON.

    The paper's demo pre-records runs for "24 configurations ... 264
    different scenarios" and replays them later; this is that storage
    format.  Returns the number of events written.
    """
    events = trace.snapshot()
    payload = {
        "format": "slider-trace/1",
        "config": dict(config or {}),
        "events": [event.to_dict() for event in events],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
    return len(events)


def load_trace(path) -> tuple["Trace", dict]:
    """Load a trace saved by :func:`save_trace`.

    Returns ``(trace, config)``.  The reconstructed trace preserves
    sequence numbers, timestamps, kinds and payloads, so the player and
    reports behave exactly as on the live object.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != "slider-trace/1":
        raise ValueError(f"{path}: not a slider trace file")
    trace = Trace()
    trace._log.restore(
        (
            data["seq"],
            data["timestamp"],
            data["kind"],
            {
                key: value
                for key, value in data.items()
                if key not in ("seq", "timestamp", "kind")
            },
        )
        for data in payload["events"]
    )
    return trace, payload.get("config", {})


class NullTrace:
    """A disabled trace: every record call is a no-op.

    The engine always talks to a trace object; benchmarks use this one so
    tracing costs nothing on the hot path.
    """

    enabled = False

    def record(self, kind: str, **payload: Any) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def snapshot(self) -> list:
        return []

    def events_of(self, kind: str) -> list:
        return []

    def clear(self) -> None:
        return None
