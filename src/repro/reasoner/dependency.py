"""The rules dependency graph (paper §2.3, Figure 2).

At initialization Slider computes, from the rules' input/output predicate
signatures alone, a directed graph with an edge A → B whenever a triple
produced by rule A can feed rule B.  The engine uses it to wire each
rule's distributor to the buffers of its dependent rules; the demo uses
it for visualization; tests assert the ρdf graph matches Figure 2.

Edge rule: A → B iff

* B has *universal input* (it accepts any predicate), or
* A's output predicate is unknown (``None``) — it could produce anything
  relevant — or
* A's known output predicates intersect B's input predicates.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .rules import Rule

__all__ = ["DependencyGraph", "build_routing_table"]


class DependencyGraph:
    """Directed dependency graph over a rule set.

    >>> graph = DependencyGraph(rules)
    >>> graph.successors("scm-sco")        # who consumes its output
    ['cax-sco', 'scm-sco', ...]
    """

    def __init__(self, rules: Sequence[Rule]):
        self._rules = {rule.name: rule for rule in rules}
        if len(self._rules) != len(rules):
            raise ValueError("duplicate rule names in fragment")
        self._edges: dict[str, list[str]] = {name: [] for name in self._rules}
        for producer in rules:
            produced = producer.output_predicates
            for consumer in rules:
                if self._feeds(produced, consumer):
                    self._edges[producer.name].append(consumer.name)
        for successors in self._edges.values():
            successors.sort()

    @staticmethod
    def _feeds(produced: frozenset[int] | None, consumer: Rule) -> bool:
        consumed = consumer.input_predicates
        if consumed is None:
            return True  # universal input accepts everything
        if produced is None:
            return True  # unknown output may produce anything
        return bool(produced & consumed)

    # --- queries ------------------------------------------------------------
    def rule_names(self) -> list[str]:
        return sorted(self._rules)

    def rule(self, name: str) -> Rule:
        return self._rules[name]

    def successors(self, name: str) -> list[str]:
        """Rules that can consume ``name``'s output."""
        return list(self._edges[name])

    def predecessors(self, name: str) -> list[str]:
        """Rules whose output can feed ``name``."""
        return sorted(
            producer for producer, consumers in self._edges.items() if name in consumers
        )

    def edges(self) -> list[tuple[str, str]]:
        """All edges as (producer, consumer) pairs, sorted."""
        return sorted(
            (producer, consumer)
            for producer, consumers in self._edges.items()
            for consumer in consumers
        )

    def universal_rules(self) -> list[str]:
        """Rules with universal input (the paper's "Universal Input" box)."""
        return sorted(
            name for name, rule in self._rules.items() if rule.input_predicates is None
        )

    def has_cycle_through(self, name: str) -> bool:
        """Whether ``name`` can (transitively) feed itself.

        Self-feeding rules (e.g. scm-sco) are what makes reasoning iterate
        to a fixpoint; acyclic rules fire at most once per input triple.
        """
        stack = list(self._edges[name])
        visited: set[str] = set()
        while stack:
            current = stack.pop()
            if current == name:
                return True
            if current in visited:
                continue
            visited.add(current)
            stack.extend(self._edges[current])
        return False

    def to_dot(self) -> str:
        """GraphViz rendering (the demo's Figure 2 view)."""
        lines = ["digraph rules {", "  rankdir=LR;"]
        for name in self.rule_names():
            shape = "doubleoctagon" if self._rules[name].input_predicates is None else "box"
            lines.append(f'  "{name}" [shape={shape}];')
        for producer, consumer in self.edges():
            lines.append(f'  "{producer}" -> "{consumer}";')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        return f"<DependencyGraph {len(self._rules)} rules, {len(self.edges())} edges>"


def build_routing_table(
    rules: Sequence[Rule],
) -> tuple[Mapping[int, tuple[int, ...]], tuple[int, ...]]:
    """Predicate-id → rule-index routing, plus the universal rule indices.

    A triple with predicate ``p`` must be offered to
    ``routing.get(p, ()) + universal``.  This is the "each module accepts
    the triples according to configured rules' predicates" dispatch of the
    paper, shared by the input manager and every distributor.
    """
    routing: dict[int, list[int]] = {}
    universal: list[int] = []
    for index, rule in enumerate(rules):
        inputs = rule.input_predicates
        if inputs is None:
            universal.append(index)
            continue
        for predicate in inputs:
            routing.setdefault(predicate, []).append(index)
    frozen = {predicate: tuple(indices) for predicate, indices in routing.items()}
    return frozen, tuple(universal)
