"""Sliding-window stream reasoning (C-SPARQL-style, built on DRed).

The paper positions Slider against stream reasoners that "limit the
amount of data in the knowledge base by eliminating former triples"
(§5).  :class:`WindowedReasoner` provides that mode of operation on top
of the Slider engine: assertions carry an arrival index (or timestamp),
and once they fall out of the window they are retracted *with their
no-longer-supported consequences* via
:func:`~repro.reasoner.retraction.dred_retract` — so the closure always
reflects exactly the triples currently in the window plus the immutable
*background knowledge*.

Two window policies:

* :class:`CountWindow` — keep the most recent ``size`` assertions;
* :class:`TimeWindow` — keep assertions younger than ``duration``
  seconds (clock injectable for deterministic tests).

>>> window = WindowedReasoner(CountWindow(1000), fragment="rhodf")
>>> window.load_background(schema_triples)     # never expires
>>> window.extend(stream_chunk)                # slides automatically
>>> window.reasoner.graph                      # closure of window ∪ background
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Iterable

from ..rdf.terms import Triple
from .delta import Delta, InferenceReport
from .engine import Slider

__all__ = ["WindowedReasoner", "CountWindow", "TimeWindow"]


class CountWindow:
    """Keep the newest ``size`` streamed assertions."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        self.size = size

    def expired(self, entries: deque, now: float) -> list[Triple]:
        overflow = len(entries) - self.size
        return [entries[i][1] for i in range(overflow)] if overflow > 0 else []

    def __repr__(self):
        return f"CountWindow({self.size})"


class TimeWindow:
    """Keep assertions younger than ``duration`` seconds."""

    def __init__(self, duration: float):
        if duration <= 0:
            raise ValueError(f"window duration must be positive, got {duration}")
        self.duration = duration

    def expired(self, entries: deque, now: float) -> list[Triple]:
        cutoff = now - self.duration
        return [triple for stamp, triple in entries if stamp <= cutoff]

    def __repr__(self):
        return f"TimeWindow({self.duration}s)"


class WindowedReasoner:
    """Maintains the closure of a sliding window over a triple stream.

    Background knowledge (ontology/TBox) loaded through
    :meth:`load_background` is permanent; streamed assertions expire by
    the window policy.  The closure is maintained incrementally in both
    directions: additions through the normal Slider pipeline, expiry
    through DRed retraction.

    With ``persist_dir`` the underlying engine is durable: every window
    commit — arrivals *and* expirations — is one journaled revision, so
    expirations persist as retraction records and a recovered store
    holds exactly the closure of the window as it stood at the last
    commit.  The in-memory window bookkeeping (arrival stamps) is
    process-local: a restarted process resumes the *store* at the
    crashed closure but starts with an empty arrival deque, so triples
    surviving from the previous life expire only via explicit
    :meth:`slide`-style retraction of recovered state, not by stamp.
    """

    def __init__(
        self,
        window: CountWindow | TimeWindow,
        fragment: str = "rhodf",
        clock: Callable[[], float] = time.monotonic,
        persist_dir=None,
        **slider_options,
    ):
        slider_options.setdefault("workers", 0)
        slider_options.setdefault("timeout", None)
        self.window = window
        self.reasoner = Slider(fragment=fragment, persist_dir=persist_dir, **slider_options)
        self._clock = clock
        self._entries: deque[tuple[float, Triple]] = deque()
        self._background: set[Triple] = set()
        self.expired_total = 0
        #: The InferenceReport of the last window commit (extend/slide).
        self.last_report: InferenceReport | None = None

    # --- ingestion -----------------------------------------------------------
    def load_background(self, triples: Iterable[Triple]) -> int:
        """Add permanent knowledge (never expires)."""
        triples = list(triples)
        self._background.update(triples)
        return self.reasoner.add(triples)

    def extend(self, triples: Iterable[Triple]) -> int:
        """Stream new assertions in; slide the window; return expiry count.

        Additions and expirations commit as **one transaction** through
        :meth:`Slider.apply` — a single revision whose
        :class:`~repro.reasoner.delta.InferenceReport` (kept on
        :attr:`last_report`) carries exactly what the slide changed.
        Net-delta normalization makes a triple that enters and falls out
        of the window within the same chunk a no-op.

        Duplicates of background knowledge are ignored (they would
        otherwise expire knowledge meant to be permanent); re-streamed
        duplicates of a live windowed triple refresh its position.
        """
        now = self._clock()
        streamed = [t for t in triples if t not in self._background]
        live = {triple for _, triple in self._entries}
        for triple in streamed:
            if triple in live:
                self._remove_entry(triple)
            self._entries.append((now, triple))
        expired = self._take_expired(now)
        # Net-delta cancellation is only correct for triples that never
        # reached the store: a *re-streamed* live triple that expires in
        # the same chunk must keep its retraction (the pre-existing copy
        # has to leave the store), so its no-op re-assertion is dropped
        # instead of cancelling the retraction.
        expired_set = set(expired)
        assertions = [t for t in streamed if not (t in expired_set and t in live)]
        self._commit(Delta(assertions=assertions, retractions=expired), len(expired))
        return len(expired)

    def _remove_entry(self, triple: Triple) -> None:
        for index, (_, existing) in enumerate(self._entries):
            if existing == triple:
                del self._entries[index]
                return

    # --- expiry -----------------------------------------------------------------
    def slide(self) -> int:
        """Retract whatever the policy says has expired; returns count.

        Expiry is not private bookkeeping: it is a retraction delta
        committed through the engine's one
        :meth:`~repro.reasoner.engine.Slider.apply` pipeline (DRed
        removes the expired assertions and every no-longer-supported
        consequence).
        """
        expired = self._take_expired(self._clock())
        if not expired:
            return 0
        self._commit(Delta(retractions=expired), len(expired))
        return len(expired)

    def _take_expired(self, now: float) -> list[Triple]:
        """Ask the policy what expired and prune those window entries."""
        expired = self.window.expired(self._entries, now)
        if expired:
            expired_set = set(expired)
            self._entries = deque(
                (stamp, triple)
                for stamp, triple in self._entries
                if triple not in expired_set
            )
        return expired

    def _commit(self, delta: Delta, expired_count: int) -> None:
        """Apply one window delta as a single engine revision.

        ``expired_count`` is the *policy-level* count (a triple that
        arrived and expired within the same chunk still counts as an
        expiry even though net-normalization keeps it out of the store).
        """
        self.last_report = self.reasoner.apply(delta)
        self.expired_total += expired_count

    # --- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        """Triples currently in the window (streamed assertions only)."""
        return len(self._entries)

    @property
    def graph(self):
        """Closure of window ∪ background (a live Graph view)."""
        return self.reasoner.graph

    def flush(self) -> None:
        self.reasoner.flush()

    def close(self) -> None:
        self.reasoner.close()

    def __enter__(self) -> "WindowedReasoner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.reasoner.__exit__(exc_type, exc, tb)

    def __repr__(self):
        return (
            f"<WindowedReasoner {self.window!r} live={len(self)} "
            f"expired={self.expired_total} store={len(self.reasoner)}>"
        )
