"""Encoded vocabulary: well-known term ids for the rule sets.

Rules operate exclusively in integer space (see :mod:`repro.dictionary`),
so every fragment needs the ids of the RDF/RDFS/OWL vocabulary terms it
mentions.  :class:`Vocabulary` pre-registers those terms in a
:class:`~repro.dictionary.TermDictionary` and exposes their ids as plain
attributes; rule factories receive a vocabulary and bake the ids into
their patterns.

Pre-registration also guarantees the vocabulary ids are stable and small,
which keeps the routing table compact.
"""

from __future__ import annotations

from ..dictionary.encoder import TermDictionary
from ..rdf.namespaces import OWL, RDF, RDFS

__all__ = ["Vocabulary"]


class Vocabulary:
    """Integer ids of the schema vocabulary, bound to one dictionary.

    >>> vocab = Vocabulary(TermDictionary())
    >>> vocab.dictionary.decode(vocab.type)
    IRI('http://www.w3.org/1999/02/22-rdf-syntax-ns#type')
    """

    __slots__ = (
        "dictionary",
        # RDF
        "type",
        "property",
        # RDFS
        "sub_class_of",
        "sub_property_of",
        "domain",
        "range",
        "resource",
        "literal",
        "datatype",
        "class_",
        "container_membership_property",
        "member",
        # OWL (Horst-style extension fragment)
        "same_as",
        "equivalent_class",
        "equivalent_property",
        "inverse_of",
        "transitive_property",
        "symmetric_property",
        "functional_property",
        "inverse_functional_property",
    )

    def __init__(self, dictionary: TermDictionary):
        self.dictionary = dictionary
        encode = dictionary.encode
        # RDF
        self.type = encode(RDF.type)
        self.property = encode(RDF.Property)
        # RDFS
        self.sub_class_of = encode(RDFS.subClassOf)
        self.sub_property_of = encode(RDFS.subPropertyOf)
        self.domain = encode(RDFS.domain)
        self.range = encode(RDFS.range)
        self.resource = encode(RDFS.Resource)
        self.literal = encode(RDFS.Literal)
        self.datatype = encode(RDFS.Datatype)
        self.class_ = encode(RDFS.Class)
        self.container_membership_property = encode(RDFS.ContainerMembershipProperty)
        self.member = encode(RDFS.member)
        # OWL
        self.same_as = encode(OWL.sameAs)
        self.equivalent_class = encode(OWL.equivalentClass)
        self.equivalent_property = encode(OWL.equivalentProperty)
        self.inverse_of = encode(OWL.inverseOf)
        self.transitive_property = encode(OWL.TransitiveProperty)
        self.symmetric_property = encode(OWL.SymmetricProperty)
        self.functional_property = encode(OWL.FunctionalProperty)
        self.inverse_functional_property = encode(OWL.InverseFunctionalProperty)

    def is_literal(self, term_id: int) -> bool:
        """True iff ``term_id`` denotes a literal (rule guard helper)."""
        return self.dictionary.is_literal(term_id)
