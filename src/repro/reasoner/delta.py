"""The delta-centric transaction API: deltas, transactions, reports.

Slider computes *what changed* on every update anyway — that is the
whole point of incremental maintenance.  This module makes that
information a first-class part of the public API (in the spirit of
query answering under updates, Berkholz et al., PODS'17):

* :class:`Delta` — one batch of mutations (assertions + retractions),
  net-normalized: a triple both asserted and retracted in the same
  delta cancels out to a no-op.
* :class:`Transaction` — the ``with reasoner.transaction() as tx:``
  builder collecting ``tx.add(...)`` / ``tx.retract(...)`` calls into a
  single :class:`Delta`, committed atomically on exit.
* :class:`InferenceReport` — the structured result of committing a
  revision: exactly which triples entered the store (explicit vs
  inferred), which left it under DRed retraction, re-derivation counts,
  per-rule-module timings, and a monotonically increasing revision id.
  The triple sets are decoded lazily, so a report over a million-triple
  load costs nothing until someone looks at the triples themselves.
* :class:`Ticket` — the handle returned by
  :meth:`~repro.reasoner.engine.Slider.flush_async`, resolved with the
  revision's report once the barrier completes.
* :class:`ChangeLog` — the engine-internal accumulator that every store
  mutation funnels through; it nets additions against removals so a
  report's diff is exactly ``graph(revision n) - graph(revision n-1)``.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Iterable

from ..dictionary.encoder import EncodedTriple, TermDictionary
from ..rdf.terms import BNode, IRI, Quad, Term, Triple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import Slider

__all__ = ["Delta", "Transaction", "InferenceReport", "Ticket", "ChangeLog"]


def _as_triples(triples: Iterable[Triple] | Triple) -> list[Triple]:
    if isinstance(triples, Triple):
        return [triples]
    items = list(triples)
    for item in items:
        # Validate at the API boundary: a non-Triple must fail *before*
        # the engine stages or journals anything (a malformed delta
        # surfacing mid-apply would leave partial state behind).
        if not isinstance(item, Triple):
            raise TypeError(
                f"deltas take Triples, got {type(item).__name__}: {item!r}"
            )
    return items


def _as_statements(
    statements: "Iterable[Triple | Quad] | Triple | Quad",
    graphs_seen: set,
) -> list[Triple]:
    """Normalize a mixed Triple/Quad batch into triples.

    Quads contribute their graph label to ``graphs_seen`` (``None`` for
    default-graph quads); bare triples are graph-agnostic and adopt the
    delta's graph.  The caller reconciles ``graphs_seen`` against the
    explicit ``graph=`` argument — a delta targets exactly one graph.
    """
    if isinstance(statements, (Triple, Quad)):
        statements = [statements]
    items: list[Triple] = []
    for item in statements:
        if isinstance(item, Quad):
            graphs_seen.add(item.graph)
            items.append(item.triple())
        elif isinstance(item, Triple):
            items.append(item)
        else:
            raise TypeError(
                f"deltas take Triples or Quads, got {type(item).__name__}: {item!r}"
            )
    return items


class Delta:
    """One batch of mutations: triples to assert and triples to retract.

    Deltas are *net-normalized* on construction: duplicates are dropped
    (first occurrence wins, order preserved) and a triple appearing on
    both sides cancels entirely — asserting and retracting the same
    triple within one transaction is a no-op, regardless of call order.

    A delta targets exactly one graph of the RDF dataset: ``graph=None``
    (the default graph, fully backward compatible) or one named graph
    (:class:`~repro.rdf.terms.IRI` / :class:`~repro.rdf.terms.BNode`
    label).  :class:`~repro.rdf.terms.Quad` statements are accepted on
    either side; their graph labels must agree with each other and with
    ``graph=`` when given (default-graph quads adopt the delta's graph,
    like bare triples do).
    """

    __slots__ = ("assertions", "retractions", "graph")

    def __init__(
        self,
        assertions: "Iterable[Triple | Quad] | Triple | Quad" = (),
        retractions: "Iterable[Triple | Quad] | Triple | Quad" = (),
        graph: "IRI | BNode | None" = None,
    ):
        if graph is not None and not isinstance(graph, (IRI, BNode)):
            raise TypeError(
                f"delta graph must be IRI, BNode or None, got {type(graph).__name__}"
            )
        graphs_seen: set = set()
        adds = list(dict.fromkeys(_as_statements(assertions, graphs_seen)))
        rems = list(dict.fromkeys(_as_statements(retractions, graphs_seen)))
        graphs_seen.discard(None)  # default-graph quads adopt the delta's graph
        if len(graphs_seen) > 1:
            labels = ", ".join(sorted(g.n3() for g in graphs_seen))
            raise ValueError(
                f"a delta targets exactly one graph; quads span: {labels}"
            )
        if graphs_seen:
            quad_graph = next(iter(graphs_seen))
            if graph is not None and graph != quad_graph:
                raise ValueError(
                    f"delta graph {graph.n3()} conflicts with quad graph "
                    f"{quad_graph.n3()}"
                )
            graph = quad_graph
        common = set(adds) & set(rems)
        if common:
            adds = [t for t in adds if t not in common]
            rems = [t for t in rems if t not in common]
        self.assertions: tuple[Triple, ...] = tuple(adds)
        self.retractions: tuple[Triple, ...] = tuple(rems)
        self.graph: "IRI | BNode | None" = graph

    def quads(self) -> tuple[Quad, ...]:
        """Both sides of the delta as quads in its target graph."""
        return tuple(
            Quad.from_triple(t, self.graph)
            for t in self.assertions + self.retractions
        )

    def __bool__(self) -> bool:
        return bool(self.assertions or self.retractions)

    def __len__(self) -> int:
        return len(self.assertions) + len(self.retractions)

    def __repr__(self):
        scope = f" graph={self.graph.n3()}" if self.graph is not None else ""
        return (
            f"<Delta +{len(self.assertions)} -{len(self.retractions)}{scope}>"
        )


class Transaction:
    """Collects mutations and commits them as one :class:`Delta`.

    >>> with reasoner.transaction() as tx:
    ...     tx.add(new_triples)
    ...     tx.retract(stale_triples)
    >>> tx.report.inferred_added_count

    The commit happens on clean ``with``-block exit (or via an explicit
    :meth:`commit`); an exception inside the block, or :meth:`abort`,
    discards the transaction without touching the engine.  After the
    commit, :attr:`report` carries the revision's
    :class:`InferenceReport`.
    """

    __slots__ = (
        "_reasoner", "_assertions", "_retractions", "_graph", "_graphs_seen",
        "_state", "_report",
    )

    def __init__(self, reasoner: "Slider", graph: "IRI | BNode | None" = None):
        self._reasoner = reasoner
        self._assertions: list[Triple] = []
        self._retractions: list[Triple] = []
        self._graph = graph
        self._graphs_seen: set = set()
        self._state = "open"
        self._report: InferenceReport | None = None

    # --- building ---------------------------------------------------------
    def add(self, triples: "Iterable[Triple | Quad] | Triple | Quad") -> "Transaction":
        """Stage assertions (triples or quads); returns self for chaining."""
        self._require_open()
        self._assertions.extend(_as_statements(triples, self._graphs_seen))
        return self

    def retract(self, triples: "Iterable[Triple | Quad] | Triple | Quad") -> "Transaction":
        """Stage retractions (triples or quads); returns self for chaining."""
        self._require_open()
        self._retractions.extend(_as_statements(triples, self._graphs_seen))
        return self

    def delta(self) -> Delta:
        """The net-normalized delta staged so far."""
        graph = self._graph
        named = {g for g in self._graphs_seen if g is not None}
        if named:
            if len(named) > 1 or (graph is not None and graph not in named):
                labels = sorted(g.n3() for g in named | ({graph} if graph else set()))
                raise ValueError(
                    f"a transaction targets exactly one graph; saw: {', '.join(labels)}"
                )
            graph = next(iter(named))
        return Delta(self._assertions, self._retractions, graph=graph)

    # --- lifecycle --------------------------------------------------------
    def commit(self) -> "InferenceReport":
        """Apply the staged delta; returns (and stores) the report."""
        self._require_open()
        self._state = "committed"
        self._report = self._reasoner.apply(self.delta())
        return self._report

    def abort(self) -> None:
        """Discard the transaction; exiting the block will not commit."""
        self._require_open()
        self._state = "aborted"

    @property
    def state(self) -> str:
        """``"open"``, ``"committed"`` or ``"aborted"``."""
        return self._state

    @property
    def report(self) -> "InferenceReport | None":
        """The commit's :class:`InferenceReport` (``None`` until then)."""
        return self._report

    def _require_open(self) -> None:
        if self._state != "open":
            raise RuntimeError(f"transaction already {self._state}")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._state = "aborted"
        elif self._state == "open":
            self.commit()

    def __repr__(self):
        return (
            f"<Transaction {self._state} +{len(self._assertions)} "
            f"-{len(self._retractions)}>"
        )


class InferenceReport:
    """What one committed revision changed, exactly.

    The triple-level views (:attr:`explicit_added`, :attr:`inferred_added`,
    :attr:`removed`) are decoded from the engine's integer space on first
    access and cached; the ``*_count`` properties are always free.  The
    guarantee backing the whole delta API: the union of added triples
    minus the removed triples is precisely the set difference between the
    store at this revision and at the previous one.
    """

    __slots__ = (
        "revision",
        "seconds",
        "timings",
        "dred_deleted",
        "dred_rederived",
        "graph",
        "_dictionary",
        "_explicit_encoded",
        "_inferred_encoded",
        "_removed_encoded",
        "_decoded",
        "_touched_predicates",
    )

    def __init__(
        self,
        revision: int,
        seconds: float,
        timings: dict[str, float],
        dictionary: TermDictionary,
        explicit_encoded: tuple[EncodedTriple, ...],
        inferred_encoded: tuple[EncodedTriple, ...],
        removed_encoded: tuple[EncodedTriple, ...],
        dred_deleted: int = 0,
        dred_rederived: int = 0,
        graph: "IRI | BNode | None" = None,
    ):
        self.revision = revision
        self.seconds = seconds
        self.timings = timings
        self.dred_deleted = dred_deleted
        self.dred_rederived = dred_rederived
        #: The graph the committed delta targeted (None = default graph).
        #: Inferred triples always land in the default graph — rule
        #: conclusions are dataset-wide — so this scopes the *explicit*
        #: side of the revision.
        self.graph = graph
        self._dictionary = dictionary
        self._explicit_encoded = explicit_encoded
        self._inferred_encoded = inferred_encoded
        self._removed_encoded = removed_encoded
        self._decoded: dict[str, tuple[Triple, ...]] = {}
        self._touched_predicates: frozenset[Term] | None = None

    # --- counts (always cheap) --------------------------------------------
    @property
    def explicit_added_count(self) -> int:
        return len(self._explicit_encoded)

    @property
    def inferred_added_count(self) -> int:
        return len(self._inferred_encoded)

    @property
    def added_count(self) -> int:
        return len(self._explicit_encoded) + len(self._inferred_encoded)

    @property
    def removed_count(self) -> int:
        return len(self._removed_encoded)

    @property
    def net_change(self) -> int:
        """Store-size delta of this revision (may be negative)."""
        return self.added_count - self.removed_count

    def __bool__(self) -> bool:
        """True iff the revision changed the store at all."""
        return bool(
            self._explicit_encoded or self._inferred_encoded or self._removed_encoded
        )

    # --- triple views (lazy) ----------------------------------------------
    def _decode(self, key: str, encoded: tuple[EncodedTriple, ...]) -> tuple[Triple, ...]:
        cached = self._decoded.get(key)
        if cached is None:
            decode = self._dictionary.decode_triple
            cached = self._decoded[key] = tuple(decode(t) for t in encoded)
        return cached

    @property
    def explicit_added(self) -> tuple[Triple, ...]:
        """Asserted triples that were new to the store."""
        return self._decode("explicit", self._explicit_encoded)

    @property
    def inferred_added(self) -> tuple[Triple, ...]:
        """Rule-derived triples that were new to the store."""
        return self._decode("inferred", self._inferred_encoded)

    @property
    def added(self) -> tuple[Triple, ...]:
        """All triples that entered the store (explicit + inferred)."""
        return self.explicit_added + self.inferred_added

    @property
    def removed(self) -> tuple[Triple, ...]:
        """Triples DRed removed and that were not re-derived."""
        return self._decode("removed", self._removed_encoded)

    # --- encoded views (zero-decode consumers: read views, replicas) --------
    @property
    def added_encoded(self) -> tuple[EncodedTriple, ...]:
        """All added triples in the engine's integer space (no decoding).

        Consumers that maintain derived state per revision — the server's
        snapshot read views, external replicas — fold diffs in integer
        space; term ids are stable for the lifetime of the dictionary.
        """
        return self._explicit_encoded + self._inferred_encoded

    @property
    def removed_encoded(self) -> tuple[EncodedTriple, ...]:
        """Net-removed triples in the engine's integer space."""
        return self._removed_encoded

    # --- filtered views (for subscriptions) --------------------------------
    def _filtered(
        self,
        encoded: Iterable[EncodedTriple],
        predicate_ids: set[int] | None,
    ) -> list[Triple]:
        decode = self._dictionary.decode_triple
        if predicate_ids is None:
            return [decode(t) for t in encoded]
        return [decode(t) for t in encoded if t[1] in predicate_ids]

    def _predicate_ids(self, predicates: Iterable[Term] | None) -> set[int] | None:
        if predicates is None:
            return None
        lookup = self._dictionary.lookup
        ids = {lookup(p) for p in predicates}
        ids.discard(None)
        return ids  # type: ignore[return-value]

    def added_matching(self, predicates: Iterable[Term] | None = None) -> list[Triple]:
        """Added triples whose predicate is in ``predicates`` (None = all).

        Filtering happens in integer space before any decoding, so a
        subscription on a rare predicate pays nothing for a large load.
        """
        ids = self._predicate_ids(predicates)
        return self._filtered(
            self._explicit_encoded + self._inferred_encoded, ids
        )

    def removed_matching(self, predicates: Iterable[Term] | None = None) -> list[Triple]:
        """Removed triples whose predicate is in ``predicates`` (None = all)."""
        ids = self._predicate_ids(predicates)
        return self._filtered(self._removed_encoded, ids)

    def added_matching_encoded(
        self, predicates: Iterable[Term] | None = None
    ) -> list[EncodedTriple]:
        """Added triples matching the predicate filter, *without* decoding.

        The incremental subscription plans join deltas in integer space;
        handing them encoded triples keeps the whole maintenance path
        decode-free until final bindings are produced.
        """
        encoded = self._explicit_encoded + self._inferred_encoded
        ids = self._predicate_ids(predicates)
        if ids is None:
            return list(encoded)
        return [triple for triple in encoded if triple[1] in ids]

    def touched_predicates(self) -> frozenset[Term]:
        """The distinct predicate terms this revision added *or* removed.

        Cached after the first call: the engine uses it to route the
        revision to interested subscriptions only, so with thousands of
        standing queries a commit pays one decode pass over the delta's
        distinct predicates instead of one filter pass per subscription.
        """
        if self._touched_predicates is None:
            ids = {
                triple[1]
                for batch in (
                    self._explicit_encoded,
                    self._inferred_encoded,
                    self._removed_encoded,
                )
                for triple in batch
            }
            decode = self._dictionary.decode
            self._touched_predicates = frozenset(decode(i) for i in ids)
        return self._touched_predicates

    # --- serialization ------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-serializable summary (counts + timings, no triples)."""
        return {
            "revision": self.revision,
            "seconds": self.seconds,
            "graph": self.graph.n3() if self.graph is not None else None,
            "explicit_added": self.explicit_added_count,
            "inferred_added": self.inferred_added_count,
            "removed": self.removed_count,
            "net_change": self.net_change,
            "dred_deleted": self.dred_deleted,
            "dred_rederived": self.dred_rederived,
            "timings": dict(sorted(self.timings.items())),
        }

    def __repr__(self):
        return (
            f"<InferenceReport rev={self.revision} "
            f"+{self.explicit_added_count}e/+{self.inferred_added_count}i "
            f"-{self.removed_count} in {self.seconds:.3f}s>"
        )


class Ticket:
    """Handle for a pipelined (non-blocking) flush.

    Returned by :meth:`~repro.reasoner.engine.Slider.flush_async`; call
    :meth:`result` to wait for the barrier and get the revision's
    :class:`InferenceReport` (re-raising any engine error).
    """

    __slots__ = ("_event", "_report", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._report: InferenceReport | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Has the flush completed (successfully or not)?"""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> InferenceReport:
        """Block until the flush completes; return its report."""
        if not self._event.wait(timeout):
            raise TimeoutError("flush did not complete in time")
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report

    def _resolve(self, report: InferenceReport) -> None:
        self._report = report
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def __repr__(self):
        state = "done" if self.done() else "pending"
        return f"<Ticket {state}>"


class ChangeLog:
    """Nets every store mutation of the current revision epoch.

    All writes funnel through three recorders (explicit adds from the
    input manager, inferred adds from the distributors, removals from
    DRed); the log cancels opposite mutations of the same triple so the
    snapshot taken at commit time is the exact store diff:

    * removed then re-added (re-derivation)  → no net change;
    * added then removed inside the epoch    → no net change;
    * everything else lands in exactly one of the three diff sets.

    Thread-safe: distributors record from worker threads.
    """

    __slots__ = (
        "_lock",
        "_explicit",
        "_inferred",
        "_removed",
        "_dred_deleted",
        "_dred_rederived",
        "_timings",
        "_started",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._reset()

    def _reset(self) -> None:
        self._explicit: dict[EncodedTriple, None] = {}
        self._inferred: dict[EncodedTriple, None] = {}
        self._removed: dict[EncodedTriple, None] = {}
        self._dred_deleted = 0
        self._dred_rederived = 0
        self._timings: dict[str, float] = {}
        self._started = time.perf_counter()

    def record_added(
        self, triples: Iterable[EncodedTriple], explicit: bool
    ) -> None:
        """Record store-new triples (callers pass post-dedup lists)."""
        target = self._explicit if explicit else self._inferred
        with self._lock:
            removed = self._removed
            for triple in triples:
                if triple in removed:
                    del removed[triple]  # was present at epoch start: no net change
                else:
                    target[triple] = None

    def record_removed(self, triples: Iterable[EncodedTriple]) -> None:
        """Record triples actually deleted from the store."""
        with self._lock:
            explicit, inferred, removed = self._explicit, self._inferred, self._removed
            count = 0
            for triple in triples:
                count += 1
                if triple in explicit:
                    del explicit[triple]  # added this epoch: net no-op
                elif triple in inferred:
                    del inferred[triple]
                else:
                    removed[triple] = None
            self._dred_deleted += count

    def record_rederived(self, triples: Iterable[EncodedTriple]) -> None:
        """DRed phase-3 re-adds: cancel the over-deletion, count them."""
        triples = list(triples)
        with self._lock:
            self._dred_rederived += len(triples)
        self.record_added(triples, explicit=False)

    def record_timing(self, rule: str, seconds: float) -> None:
        """Accumulate one rule-module firing's wall time."""
        with self._lock:
            self._timings[rule] = self._timings.get(rule, 0.0) + seconds

    @property
    def has_changes(self) -> bool:
        """Would committing now produce a content-bearing report?"""
        with self._lock:
            return bool(self._explicit or self._inferred or self._removed)

    def snapshot(
        self,
        revision: int,
        dictionary: TermDictionary,
        graph: "IRI | BNode | None" = None,
    ) -> InferenceReport:
        """Close the epoch: build the revision's report and reset."""
        with self._lock:
            report = InferenceReport(
                revision=revision,
                seconds=time.perf_counter() - self._started,
                timings=self._timings,
                dictionary=dictionary,
                explicit_encoded=tuple(self._explicit),
                inferred_encoded=tuple(self._inferred),
                removed_encoded=tuple(self._removed),
                dred_deleted=self._dred_deleted,
                dred_rederived=self._dred_rederived,
                graph=graph,
            )
            self._reset()
        return report
