"""The Slider reasoner: rules, fragments, pipeline, engine, streams."""

from .adaptive import AdaptiveBufferController, RuleYield
from .buffers import TripleBuffer
from .delta import ChangeLog, Delta, InferenceReport, Ticket, Transaction
from .dependency import DependencyGraph, build_routing_table
from .distributor import Distributor
from .engine import RecoveryInfo, Slider, SliderError
from .subscription import Subscription, SubscriptionEvent
from .fragments import (
    Fragment,
    UnknownFragmentError,
    available_fragments,
    get_fragment,
    register_fragment,
)
from .input_manager import InputManager
from .modules import RuleModule
from .retraction import dred_retract
from .rules import JoinRule, OutputBuffer, Pattern, Rule, RuleViolation, SingleRule, Var
from .stream import (
    FileSource,
    GeneratorSource,
    ListSource,
    RateLimitedSource,
    StreamPump,
    StreamSource,
    merge_sources,
)
from .trace import NullTrace, Trace, TraceEvent, load_trace, save_trace
from .vocabulary import Vocabulary
from .window import CountWindow, TimeWindow, WindowedReasoner

__all__ = [
    "Slider",
    "SliderError",
    "RecoveryInfo",
    "Delta",
    "Transaction",
    "InferenceReport",
    "Ticket",
    "ChangeLog",
    "Subscription",
    "SubscriptionEvent",
    "AdaptiveBufferController",
    "RuleYield",
    "Fragment",
    "get_fragment",
    "register_fragment",
    "available_fragments",
    "UnknownFragmentError",
    "Rule",
    "SingleRule",
    "JoinRule",
    "Pattern",
    "Var",
    "RuleViolation",
    "OutputBuffer",
    "Vocabulary",
    "DependencyGraph",
    "build_routing_table",
    "TripleBuffer",
    "RuleModule",
    "Distributor",
    "InputManager",
    "Trace",
    "TraceEvent",
    "NullTrace",
    "save_trace",
    "load_trace",
    "dred_retract",
    "WindowedReasoner",
    "CountWindow",
    "TimeWindow",
    "StreamSource",
    "ListSource",
    "FileSource",
    "GeneratorSource",
    "RateLimitedSource",
    "StreamPump",
    "merge_sources",
]
