"""Standing BGP queries, maintained incrementally from revision deltas.

Polling the graph after every update throws away the information an
incremental reasoner computes for free: the delta.  A
:class:`Subscription` registers a conjunctive triple pattern (the same
BGP language as :mod:`repro.store.query`) and is re-evaluated against
each committed revision's :class:`~repro.reasoner.delta.InferenceReport`
— *incrementally*:

* **additions** — the BGP is compiled once, at registration, into an
  :class:`~repro.store.planner.IncrementalBGPPlan`: one pre-ordered
  join plan per pattern position a delta triple can enter through.
  Every added triple is unified against each pattern *in encoded
  integer space*; each hit seeds that pattern's rest-plan, so work
  scales with the delta and the plan, not with the graph — and no plan
  is recomputed per revision;
* **removals** — a maintained solution dies iff one of its (fully
  instantiated, hence unique) supporting triples is in the revision's
  net-removed set; no re-join is needed because a net-removed triple is
  by definition absent from the new graph.

Events carry binding-level diffs (added / removed solutions); a
subscription whose patterns cannot match any delta triple is never
woken, so there are no spurious notifications.

>>> x = Variable("x")
>>> sub = reasoner.subscribe([(x, RDF.type, EX.Alert)], on_alert)
>>> ...                     # every commit with matching bindings fires
>>> sub.cancel()
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

from ..rdf.terms import Term, Triple, Variable
from ..store.graph import Graph
from ..store.planner import IncrementalBGPPlan
from ..store.query import Binding, TriplePattern
from .delta import InferenceReport

__all__ = ["Subscription", "SubscriptionEvent"]


def _key(binding: Binding) -> frozenset:
    """A solution as a hashable key (order-free set of (variable, term))."""
    return frozenset(binding.items())


class SubscriptionEvent:
    """One notification: the binding-level diff of one revision."""

    __slots__ = ("revision", "added", "removed")

    def __init__(
        self,
        revision: int,
        added: tuple[Binding, ...],
        removed: tuple[Binding, ...],
    ):
        self.revision = revision
        self.added = added
        self.removed = removed

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __repr__(self):
        return (
            f"<SubscriptionEvent rev={self.revision} "
            f"+{len(self.added)} -{len(self.removed)} bindings>"
        )


class Subscription:
    """A standing BGP over the reasoner's closure.

    Created through :meth:`~repro.reasoner.engine.Slider.subscribe`; the
    current solution set is materialized once at registration, then
    maintained from deltas.  With a ``callback`` the subscription pushes
    each :class:`SubscriptionEvent` synchronously from the committing
    thread; without one, events queue on :attr:`events` for polling via
    :meth:`drain`.  A callback exception is captured on :attr:`error`
    (the engine is never poisoned by a subscriber).
    """

    def __init__(
        self,
        patterns: Sequence[TriplePattern],
        callback: Callable[[SubscriptionEvent], None] | None = None,
        graph: Term | None = None,
    ):
        patterns = tuple(tuple(p) for p in patterns)
        for pattern in patterns:
            if len(pattern) != 3:
                raise ValueError(f"patterns must be (s, p, o) triples, got {pattern!r}")
        if not patterns:
            raise ValueError("a subscription needs at least one pattern")
        self.patterns: tuple[TriplePattern, ...] = patterns
        self.callback = callback
        #: Named-graph delivery filter: when set, only revisions whose
        #: delta targeted this graph are folded in (tenant isolation).
        self.graph = graph
        self.active = True
        #: The revision the initial solution set was materialized at
        #: (set by the engine under the commit lock during registration).
        self.seeded_revision = 0
        self.error: BaseException | None = None
        self.events: list[SubscriptionEvent] = []
        self._lock = threading.Lock()
        self._solutions: dict[frozenset, Binding] = {}
        #: Compiled incremental join plans (full + one rest-plan per
        #: pattern), built against the graph's statistics at seed time.
        self._plan = IncrementalBGPPlan(self.patterns)
        # Constant predicates let the delta be filtered in integer space
        # before decoding; any variable predicate disables the filter.
        predicates = [p[1] for p in patterns]
        self._predicates: tuple[Term, ...] | None = (
            None
            if any(isinstance(p, Variable) for p in predicates)
            else tuple(dict.fromkeys(predicates))
        )
        self._predicate_set: frozenset[Term] | None = (
            None if self._predicates is None else frozenset(self._predicates)
        )

    def _wants(self, touched: frozenset[Term]) -> bool:
        """Can a revision touching exactly ``touched`` predicates change
        this subscription's solutions?  O(min(|touched|, |patterns|)) —
        the engine's routing check, run for every subscription on every
        commit, so it must stay trivially cheap."""
        return self._predicate_set is None or not touched.isdisjoint(
            self._predicate_set
        )

    # --- lifecycle ---------------------------------------------------------
    def cancel(self) -> None:
        """Stop receiving events; the engine prunes cancelled entries."""
        self.active = False

    def drain(self) -> list[SubscriptionEvent]:
        """Pop and return all queued events (callback-less mode)."""
        with self._lock:
            events, self.events = self.events, []
        return events

    @property
    def solutions(self) -> list[Binding]:
        """A copy of the currently maintained solution set."""
        with self._lock:
            return [dict(s) for s in self._solutions.values()]

    # --- engine side -------------------------------------------------------
    def _seed(self, graph: Graph) -> None:
        """Materialize the initial solution set (no event is emitted).

        Compiles the incremental plans against the graph's statistics as
        a side effect; they are maintained (and re-planned on size
        drift) by the plan itself from here on.
        """
        with self._lock:
            self._plan.compile(graph)
            self._solutions = {_key(s): s for s in self._plan.solutions(graph)}

    def _deliver(self, report: InferenceReport, graph: Graph) -> SubscriptionEvent | None:
        """Fold one revision's delta in; return the binding diff (or None)."""
        added_encoded = report.added_matching_encoded(self._predicates)
        removed_triples = report.removed_matching(self._predicates)
        if not added_encoded and not removed_triples:
            return None

        with self._lock:
            removed_bindings = self._fold_removals(removed_triples)
            added_bindings = self._fold_additions(added_encoded, graph)
        if not removed_bindings and not added_bindings:
            return None
        event = SubscriptionEvent(
            report.revision, tuple(added_bindings), tuple(removed_bindings)
        )
        self._emit(event)
        return event

    def _fold_removals(self, removed_triples: Iterable[Triple]) -> list[Binding]:
        removed_set = set(removed_triples)
        if not removed_set:
            return []
        dead: list[Binding] = []
        for key, solution in list(self._solutions.items()):
            if any(
                self._instantiate(pattern, solution) in removed_set
                for pattern in self.patterns
            ):
                dead.append(solution)
                del self._solutions[key]
        return dead

    def _fold_additions(
        self, added_encoded: Sequence[tuple[int, int, int]], graph: Graph
    ) -> list[Binding]:
        if not added_encoded:
            return []
        fresh: list[Binding] = []
        for solution in self._plan.additions(graph, added_encoded):
            key = _key(solution)
            if key not in self._solutions:
                self._solutions[key] = solution
                fresh.append(solution)
        return fresh

    @staticmethod
    def _instantiate(pattern: TriplePattern, solution: Binding) -> Triple:
        subject, predicate, obj = (
            solution[term] if isinstance(term, Variable) else term for term in pattern
        )
        return Triple(subject, predicate, obj)

    def _emit(self, event: SubscriptionEvent) -> None:
        if self.callback is None:
            with self._lock:
                self.events.append(event)
            return
        try:
            self.callback(event)
        except Exception as error:  # noqa: BLE001 - isolate subscriber bugs
            self.error = error

    def __repr__(self):
        state = "active" if self.active else "cancelled"
        return (
            f"<Subscription {state} patterns={len(self.patterns)} "
            f"solutions={len(self._solutions)}>"
        )
