"""Run-time adaptive scheduling (the paper's second future-work item).

The conclusion announces "a just-in-time optimisation of the rules
execution's scheduling — migrating from 'static' plans produced by
traditional optimizers to run-time dynamic plans ... learning from
ontologies structures and previously executed runs".

This module implements that idea for the knob the architecture exposes:
**per-rule buffer capacity**.  The static plan gives every rule the same
buffer size; at run time the relative value of firing a rule early is
wildly skewed — on a BSBM-like stream, cax-sco fires usefully all the
time while prp-dom never produces anything.  The controller learns each
rule's *yield* (kept triples per consumed triple) online and retunes:

* **productive rules** get *smaller* buffers — their output feeds other
  rules, so propagating it sooner shortens derivation chains;
* **inert rules** get *larger* buffers — each firing is overhead, so
  amortize it over more triples.

Capacities move by a damping factor per adjustment window and are
clamped to ``[min_capacity, max_capacity]``, so a rule that suddenly
becomes productive (schema arriving late) recovers quickly — the
recency-weighted yield makes old observations fade.

Usage::

    controller = AdaptiveBufferController(min_capacity=16, max_capacity=4096)
    reasoner = Slider(fragment="rdfs", adaptive=controller)

Correctness is untouched: capacity only affects *when* batches fire, and
the engine's completeness argument is capacity-independent (tests pin
this down).
"""

from __future__ import annotations

import threading

__all__ = ["AdaptiveBufferController", "RuleYield"]


class RuleYield:
    """Recency-weighted statistics for one rule."""

    __slots__ = ("consumed", "kept", "firings")

    def __init__(self):
        self.consumed = 0.0
        self.kept = 0.0
        self.firings = 0

    def observe(self, consumed: int, kept: int, decay: float) -> None:
        self.consumed = self.consumed * decay + consumed
        self.kept = self.kept * decay + kept
        self.firings += 1

    @property
    def yield_rate(self) -> float:
        """Kept triples per consumed triple (recency-weighted)."""
        return self.kept / self.consumed if self.consumed else 0.0


class AdaptiveBufferController:
    """Learns per-rule yields and retunes buffer capacities online.

    Parameters
    ----------
    min_capacity / max_capacity:
        Clamp range for any buffer.
    target_yield:
        The yield at which a rule keeps its current capacity.  Rules
        above it shrink toward ``min_capacity``; rules below grow toward
        ``max_capacity``.
    adjust_every:
        Number of observed firings (across all rules) between
        adjustment passes.
    decay:
        Recency weight applied to past observations at each firing
        (1.0 = plain cumulative averages, never forgets).
    damping:
        Fraction of the way a capacity moves toward its target per
        adjustment pass (1.0 = jump straight to the target).
    """

    def __init__(
        self,
        min_capacity: int = 8,
        max_capacity: int = 8192,
        target_yield: float = 0.1,
        adjust_every: int = 32,
        decay: float = 0.9,
        damping: float = 0.5,
    ):
        if not 1 <= min_capacity <= max_capacity:
            raise ValueError(
                f"need 1 <= min_capacity <= max_capacity, got {min_capacity}..{max_capacity}"
            )
        if not 0 < target_yield:
            raise ValueError(f"target_yield must be positive, got {target_yield}")
        if adjust_every < 1:
            raise ValueError(f"adjust_every must be >= 1, got {adjust_every}")
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if not 0 < damping <= 1:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        self.min_capacity = min_capacity
        self.max_capacity = max_capacity
        self.target_yield = target_yield
        self.adjust_every = adjust_every
        self.decay = decay
        self.damping = damping
        self._lock = threading.Lock()
        self._stats: dict[str, RuleYield] = {}
        self._since_adjust = 0
        self.adjustments = 0  # demo/trace counter

    # --- engine integration -------------------------------------------------
    def attach(self, modules) -> None:
        """Called once by the engine with its rule modules."""
        self._modules = list(modules)
        with self._lock:
            for module in self._modules:
                self._stats.setdefault(module.rule.name, RuleYield())

    def observe(self, rule_name: str, consumed: int, kept: int) -> bool:
        """Record one firing; returns True when an adjustment pass ran."""
        with self._lock:
            stats = self._stats.setdefault(rule_name, RuleYield())
            stats.observe(consumed, kept, self.decay)
            self._since_adjust += 1
            if self._since_adjust < self.adjust_every:
                return False
            self._since_adjust = 0
            self._adjust_locked()
            return True

    def _adjust_locked(self) -> None:
        self.adjustments += 1
        for module in self._modules:
            stats = self._stats[module.rule.name]
            if not stats.firings:
                continue
            buffer = module.buffer
            current = buffer.capacity
            if stats.yield_rate >= self.target_yield:
                # Productive: shrink proportionally to how far above
                # target the yield sits (min halving per pass).
                target = max(self.min_capacity, current // 2)
            else:
                # Inert: grow; fully idle rules head for the max.
                growth = 2 if stats.yield_rate > 0 else 4
                target = min(self.max_capacity, current * growth)
            adjusted = round(current + (target - current) * self.damping)
            buffer.capacity = max(self.min_capacity, min(self.max_capacity, adjusted))

    # --- inspection -----------------------------------------------------------
    def yields(self) -> dict[str, float]:
        """Current recency-weighted yield per rule."""
        with self._lock:
            return {name: stats.yield_rate for name, stats in self._stats.items()}

    def capacities(self) -> dict[str, int]:
        """Current buffer capacity per rule."""
        return {module.rule.name: module.buffer.capacity for module in self._modules}

    def __repr__(self):
        return (
            f"<AdaptiveBufferController adjustments={self.adjustments} "
            f"range=[{self.min_capacity}, {self.max_capacity}]>"
        )
