"""The rule framework: declarative patterns and Algorithm 1's rule body.

A rule body is one or two triple *patterns*; the head is a triple
*template*.  Pattern terms are either an ``int`` (a constant term id,
normally a vocabulary predicate) or a :class:`Var`.  For example the
paper's running example CAX-SCO (``<c1 subClassOf c2> ∧ <x type c1> →
<x type c2>``) is declared as::

    JoinRule(
        "cax-sco",
        Pattern(Var("c1"), vocab.sub_class_of, Var("c2")),
        Pattern(Var("x"), vocab.type, Var("c1")),
        head=Pattern(Var("x"), vocab.type, Var("c2")),
    )

:meth:`JoinRule.apply` implements the paper's Algorithm 1 verbatim but
generalized to any two-pattern body: it joins the *new* triples matching
pattern 1 against the *store* side of pattern 2, and vice versa.  Because
the input manager and distributors insert every triple into the store
before routing it to buffers, this two-sided delta join is complete: for
any pair of triples satisfying the body, whichever member is routed last
finds the other already in the store.

Evaluation is batch-native: the primitive is :meth:`Rule.apply_into`,
which emits one firing's derivations into a caller-owned (and reusable)
:class:`OutputBuffer` instead of allocating per-firing lists and dedup
sets.  :meth:`Rule.apply` remains as the list-returning convenience
wrapper, and custom rules may override either method — each has a
default implemented in terms of the other.

Rules advertise their *input predicates* (the constant predicate ids of
their body patterns; ``None`` means universal — the rule must see every
triple) and *output predicates* (the head's constant predicate id, or
``None`` when the head predicate is a variable).  The dependency graph
and the routing table are computed from these signatures alone, which is
what makes the reasoner fragment agnostic.
"""

from __future__ import annotations

from typing import Sequence

from ..dictionary.encoder import EncodedTriple
from ..store.backends.base import TripleStore
from .kernels import compile_half_join
from .vocabulary import Vocabulary

__all__ = [
    "Var",
    "Pattern",
    "Rule",
    "SingleRule",
    "JoinRule",
    "RuleViolation",
    "OutputBuffer",
]


class OutputBuffer:
    """A reusable, deduplicating sink for one rule firing's derivations.

    Rule modules keep one of these per worker thread and pass it to
    :meth:`Rule.apply_into`, so the hot write path accumulates into an
    already-allocated buffer instead of building a fresh list + seen-set
    pair per firing.  :meth:`take` hands the accumulated batch to the
    distributor (already intra-batch deduplicated — the store's
    ``add_all`` never sees a duplicate pair from one firing) and resets
    the buffer for reuse.
    """

    __slots__ = ("_items", "_seen")

    def __init__(self):
        self._items: list[EncodedTriple] = []
        self._seen: set[EncodedTriple] = set()

    def emit(self, triple: EncodedTriple) -> bool:
        """Append ``triple`` unless already emitted; True iff appended."""
        if triple in self._seen:
            return False
        self._seen.add(triple)
        self._items.append(triple)
        return True

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, triple: EncodedTriple) -> bool:
        return triple in self._seen

    def take(self) -> list[EncodedTriple]:
        """Return the accumulated batch and reset for the next firing."""
        items = self._items
        self._items = []
        self._seen.clear()
        return items


class Var:
    """A named variable inside a rule pattern."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError("variable name must be a non-empty string")
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return hash(("Var", self.name))

    def __repr__(self):
        return f"?{self.name}"


PatternTerm = "int | Var"


class Pattern:
    """One triple pattern/template: each slot a constant id or a variable.

    Constants are normally ``int`` term ids; under the dictionary-free
    ablation (:class:`~repro.dictionary.IdentityDictionary`) they are the
    term objects themselves.  Anything that is not a :class:`Var` and is
    hashable is treated as a constant.
    """

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject, predicate, object):
        for slot, value in (("subject", subject), ("predicate", predicate), ("object", object)):
            if isinstance(value, (str, float, type(None))) or (
                not isinstance(value, (int, Var)) and not hasattr(value, "n3")
            ):
                raise TypeError(
                    f"pattern {slot} must be a term id, an RDF term, or Var, got {value!r}"
                )
        self.subject = subject
        self.predicate = predicate
        self.object = object

    def __iter__(self):
        yield self.subject
        yield self.predicate
        yield self.object

    def variables(self) -> set[str]:
        """Names of all variables occurring in the pattern."""
        return {slot.name for slot in self if isinstance(slot, Var)}

    def matches(self, triple: EncodedTriple, binding: dict[str, int]) -> dict[str, int] | None:
        """Try to match ``triple`` against this pattern under ``binding``.

        Returns the extended binding, or ``None`` on mismatch.  The input
        binding is never mutated.
        """
        extended = None
        for slot, value in zip(self, triple):
            if not isinstance(slot, Var):
                if slot != value:
                    return None
                continue
            bound = binding.get(slot.name)
            if extended is not None:
                bound = extended.get(slot.name, bound)
            if bound is None:
                if extended is None:
                    extended = dict(binding)
                extended[slot.name] = value
            elif bound != value:
                return None
        return binding if extended is None else extended

    def lookup_key(self, binding: dict[str, int]) -> tuple[int | None, int | None, int | None]:
        """The (s, p, o) store-lookup pattern under ``binding`` (None = wildcard)."""
        key = []
        for slot in self:
            if isinstance(slot, Var):
                key.append(binding.get(slot.name))
            else:
                key.append(slot)
        return tuple(key)

    def instantiate(self, binding: dict[str, int]) -> EncodedTriple:
        """Build a concrete triple from the template; raises on unbound vars."""
        out = []
        for slot in self:
            if isinstance(slot, Var):
                value = binding.get(slot.name)
                if value is None:
                    raise RuleViolation(f"unbound head variable ?{slot.name}")
                out.append(value)
            else:
                out.append(slot)
        return tuple(out)

    def __repr__(self):
        return f"({self.subject!r} {self.predicate!r} {self.object!r})"


class RuleViolation(RuntimeError):
    """Raised when a rule is declared or instantiated inconsistently."""


class Rule:
    """Base class for inference rules.

    Subclasses must set :attr:`name`, :attr:`head`, :attr:`body`
    (a sequence of patterns) and implement :meth:`apply`.
    """

    name: str
    head: Pattern
    body: Sequence[Pattern]

    def __init__(self, name: str, head: Pattern, body: Sequence[Pattern]):
        if not name:
            raise RuleViolation("rule needs a name")
        head_vars = head.variables()
        body_vars = set()
        for pattern in body:
            body_vars |= pattern.variables()
        unbound = head_vars - body_vars
        if unbound:
            raise RuleViolation(
                f"rule {name}: head variables {sorted(unbound)} never bound by the body"
            )
        self.name = name
        self.head = head
        self.body = tuple(body)

    # --- signatures -------------------------------------------------------
    @property
    def input_predicates(self) -> frozenset[int] | None:
        """Constant predicate ids this rule consumes; ``None`` = universal.

        A rule is universal as soon as *any* body pattern has a variable
        predicate: it must then be offered every triple.
        """
        predicates = set()
        for pattern in self.body:
            if isinstance(pattern.predicate, Var):
                return None
            predicates.add(pattern.predicate)
        return frozenset(predicates)

    @property
    def activation_predicates(self) -> frozenset[int] | None:
        """Constant predicate ids anywhere in the body; ``None`` if none.

        For a *universal-input* rule this is its lazy-activation set: as
        long as every activation predicate's partition is empty, a data
        triple cannot complete the body, so the engine may skip buffering
        it — only triples carrying an activation predicate (which make
        the rule "live") must always be delivered.  A body with no
        constant predicate at all (e.g. rdfs4a) returns ``None``: such a
        rule can fire on anything and must see everything.
        """
        predicates = set()
        for pattern in self.body:
            if not isinstance(pattern.predicate, Var):
                predicates.add(pattern.predicate)
        return frozenset(predicates) if predicates else None

    @property
    def output_predicates(self) -> frozenset[int] | None:
        """Constant predicate ids this rule can produce; ``None`` = unknown."""
        if isinstance(self.head.predicate, Var):
            return None
        return frozenset({self.head.predicate})

    def accepts(self, predicate: int) -> bool:
        """Whether a triple with this predicate is relevant to the body."""
        inputs = self.input_predicates
        return inputs is None or predicate in inputs

    # --- evaluation -------------------------------------------------------
    def apply(
        self,
        store: TripleStore,
        new_triples: Sequence[EncodedTriple],
        vocab: Vocabulary,
    ) -> list[EncodedTriple]:
        """Derive consequences of ``new_triples`` w.r.t. the store.

        Convenience wrapper over :meth:`apply_into`; subclasses normally
        override that instead (the pipeline only calls ``apply_into``).
        """
        if type(self).apply_into is Rule.apply_into:
            raise NotImplementedError(
                f"rule {self.name!r} must implement apply() or apply_into()"
            )
        out = OutputBuffer()
        self.apply_into(store, new_triples, vocab, out)
        return out.take()

    def apply_into(
        self,
        store: TripleStore,
        new_triples: Sequence[EncodedTriple],
        vocab: Vocabulary,
        out: OutputBuffer,
    ) -> None:
        """Batch-native evaluation: emit derivations into ``out``.

        The default bridges duck-typed custom rules that only define
        :meth:`apply`; built-in rules override this and emit directly.
        """
        for triple in self.apply(store, new_triples, vocab):
            out.emit(triple)

    # --- head guards -----------------------------------------------------
    def _emit(
        self,
        binding: dict[str, int],
        vocab: Vocabulary,
        out: OutputBuffer,
    ) -> None:
        """Instantiate the head under RDF well-formedness guards.

        Inferred triples must be valid RDF: literals cannot be subjects or
        predicates, and blank nodes cannot be predicates.  Rules like
        rdfs3/rdfs4b would otherwise type literals as resources.
        """
        triple = self.head.instantiate(binding)
        if triple in out:
            return
        subject, predicate, obj = triple
        is_literal = vocab.dictionary.is_literal
        if is_literal(subject) or is_literal(predicate):
            return
        out.emit(triple)

    def __repr__(self):
        body = " ∧ ".join(repr(p) for p in self.body)
        return f"<Rule {self.name}: {body} → {self.head!r}>"


class SingleRule(Rule):
    """A rule with a one-pattern body, e.g. rdfs6: ``<p type Property> →
    <p subPropertyOf p>``."""

    def __init__(self, name: str, pattern: Pattern, head: Pattern):
        super().__init__(name, head, (pattern,))
        self.pattern = pattern

    def apply_into(self, store, new_triples, vocab, out: OutputBuffer) -> None:
        empty: dict[str, int] = {}
        for triple in new_triples:
            binding = self.pattern.matches(triple, empty)
            if binding is not None:
                self._emit(binding, vocab, out)


class JoinRule(Rule):
    """A rule with a two-pattern body — the general case of Algorithm 1.

    The two body patterns must share at least one variable (the join), and
    every head variable must be bound by the body (checked by the base
    class).
    """

    def __init__(self, name: str, left: Pattern, right: Pattern, head: Pattern):
        super().__init__(name, head, (left, right))
        self.left = left
        self.right = right
        if not (left.variables() & right.variables()) and not self._ground_join():
            raise RuleViolation(f"rule {name}: body patterns share no variable")
        # Compiled batch kernels, one per half-join direction (None when
        # the direction's shape is not batchable — it stays on the
        # classic per-triple loop below).
        self._plans = (
            compile_half_join(left, right, head),
            compile_half_join(right, left, head),
        )

    def _ground_join(self) -> bool:
        # A cartesian body (no shared variable) is legal only if one side
        # is fully ground; no built-in fragment needs it, but custom rules
        # might declare e.g. an activation pattern.
        return not self.left.variables() or not self.right.variables()

    def apply_into(self, store, new_triples, vocab, out: OutputBuffer) -> None:
        # Each direction runs its compiled batch kernel when the pass's
        # cardinalities make batching profitable (see
        # :mod:`repro.reasoner.kernels`), else the classic probe loop.
        is_literal = vocab.dictionary.is_literal
        left_plan, right_plan = self._plans
        if left_plan is None or not left_plan.execute(
            store, new_triples, is_literal, out
        ):
            self._half_join(store, new_triples, self.left, self.right, vocab, out)
        if right_plan is None or not right_plan.execute(
            store, new_triples, is_literal, out
        ):
            self._half_join(store, new_triples, self.right, self.left, vocab, out)

    def _half_join(
        self,
        store: TripleStore,
        new_triples: Sequence[EncodedTriple],
        new_side: Pattern,
        store_side: Pattern,
        vocab: Vocabulary,
        out: OutputBuffer,
    ) -> None:
        """One direction of Algorithm 1: new triples × stored partners.

        Short-circuit: when the stored side has a constant predicate with
        an empty partition, no probe can succeed — skip the whole sweep.
        This is safe, not just fast: if a matching stored-side triple
        arrives later, *its* half-join (the other direction) re-joins it
        against the store, which by then contains today's new triples.
        """
        store_predicate = store_side.predicate
        if not isinstance(store_predicate, Var) and not store.has_predicate(store_predicate):
            return
        new_predicate = new_side.predicate
        if not isinstance(new_predicate, Var):
            # C-speed pre-filter: only triples with the right predicate
            # can match, and most batches are dominated by others.
            new_triples = [t for t in new_triples if t[1] == new_predicate]
            if not new_triples:
                return
        empty: dict[str, int] = {}
        for triple in new_triples:
            binding = new_side.matches(triple, empty)
            if binding is None:
                continue
            subject, predicate, obj = store_side.lookup_key(binding)
            for partner in store.match(subject, predicate, obj):
                merged = store_side.matches(partner, binding)
                if merged is not None:
                    self._emit(merged, vocab, out)

    def derive_all(
        self, store: TripleStore, vocab: Vocabulary
    ) -> list[EncodedTriple]:
        """Full (non-incremental) evaluation of the body against the store.

        This is the "commonly used iterative rules scheme" of the naive
        baseline, so — unlike the pipeline's :meth:`apply` — it does NOT
        deduplicate its output: every successful body instantiation is
        materialized and duplicate elimination is left to the store.  On
        the subClassOf chains this is exactly the O(n³) derivations for
        an O(n²) closure that the paper cites; the length of the returned
        list is the baseline's work metric.
        """
        out: list[EncodedTriple] = []
        is_literal = vocab.dictionary.is_literal
        head = self.head
        subject, predicate, obj = self.left.lookup_key({})
        empty: dict[str, int] = {}
        for triple in store.match(subject, predicate, obj):
            binding = self.left.matches(triple, empty)
            if binding is None:
                continue
            s2, p2, o2 = self.right.lookup_key(binding)
            for partner in store.match(s2, p2, o2):
                merged = self.right.matches(partner, binding)
                if merged is None:
                    continue
                derived = head.instantiate(merged)
                if is_literal(derived[0]) or is_literal(derived[1]):
                    continue  # same well-formedness guards as _emit
                out.append(derived)
        return out


def apply_rule_into(
    rule: Rule,
    store: TripleStore,
    new_triples: Sequence[EncodedTriple],
    vocab: Vocabulary,
    out: OutputBuffer,
) -> None:
    """Batch-native evaluation that tolerates duck-typed rules.

    Custom rules registered with a fragment need not subclass
    :class:`Rule`; any object with an ``apply`` method works.  This
    helper routes through ``apply_into`` when the rule has one and
    funnels a plain ``apply`` result through the buffer otherwise.
    """
    method = getattr(rule, "apply_into", None)
    if method is not None:
        method(store, new_triples, vocab, out)
        return
    for triple in rule.apply(store, new_triples, vocab):
        out.emit(triple)


def derive_all(rule: Rule, store: TripleStore, vocab: Vocabulary) -> list[EncodedTriple]:
    """Full evaluation of any rule against the whole store.

    ``JoinRule`` has a specialized implementation; single-pattern rules
    reuse :meth:`Rule.apply` with the store contents as the "new" side.
    """
    if isinstance(rule, JoinRule):
        return rule.derive_all(store, vocab)
    return rule.apply(store, list(store), vocab)
