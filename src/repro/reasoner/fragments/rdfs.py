"""The RDFS fragment: the standard rdfs2–rdfs13 entailment rules.

Two variants are provided, mirroring how deployed reasoners (including
the OWLIM rulesets the paper benchmarks against) trim the RDF Semantics
rule table:

* ``rdfs`` — the *practical* ruleset: rdfs2, rdfs3, rdfs4a, rdfs4b,
  rdfs5, rdfs7, rdfs9, rdfs11, rdfs12, rdfs13.  It omits the reflexive
  subClassOf/subPropertyOf rules (rdfs6, rdfs8, rdfs10) whose conclusions
  are tautological for query answering, and rdfs1 (literal
  generalization), which allocates blank nodes.  This matches the shape
  of the paper's Table 1: the RDFS-minus-ρdf surplus on the subClassOf_n
  chains is ≈ n (one ``<x type Resource>`` per resource), not ≈ 3n.
* ``rdfs-full`` — additionally rdfs6, rdfs8, rdfs10 and the RDF/RDFS
  axiomatic triples, for users who want the full RDF Semantics closure.

All of ρdf is subsumed: rdfs2/3/7/9/5/11 are prp-dom/prp-rng/prp-spo1/
cax-sco/scm-spo/scm-sco; scm-dom2/scm-rng2 are entailed by rdfs7 only
indirectly, so they are kept explicitly for parity with the ρdf closure.
"""

from __future__ import annotations

from ...rdf.namespaces import RDF, RDFS
from ...rdf.terms import Triple
from ..rules import JoinRule, Pattern, Rule, SingleRule, Var
from ..vocabulary import Vocabulary

__all__ = ["build_rules", "build_full_rules", "axiomatic_triples", "RULE_NAMES"]

RULE_NAMES = (
    "rdfs2",
    "rdfs3",
    "rdfs4a",
    "rdfs4b",
    "rdfs5",
    "rdfs7",
    "rdfs9",
    "rdfs11",
    "rdfs12",
    "rdfs13",
    "scm-dom2",
    "scm-rng2",
)

FULL_EXTRA_RULE_NAMES = ("rdfs6", "rdfs8", "rdfs10")


def build_rules(vocab: Vocabulary) -> list[Rule]:
    """The practical RDFS ruleset (see module docstring)."""
    x, y = Var("x"), Var("y")
    c, d, e = Var("c"), Var("d"), Var("e")
    p, q, r = Var("p"), Var("q"), Var("r")

    return [
        JoinRule(
            "rdfs2",
            Pattern(p, vocab.domain, c),
            Pattern(x, p, y),
            head=Pattern(x, vocab.type, c),
        ),
        JoinRule(
            "rdfs3",
            Pattern(p, vocab.range, c),
            Pattern(x, p, y),
            head=Pattern(y, vocab.type, c),
        ),
        SingleRule(
            "rdfs4a",
            Pattern(x, p, y),
            head=Pattern(x, vocab.type, vocab.resource),
        ),
        SingleRule(
            "rdfs4b",
            Pattern(x, p, y),
            head=Pattern(y, vocab.type, vocab.resource),
        ),
        JoinRule(
            "rdfs5",
            Pattern(p, vocab.sub_property_of, q),
            Pattern(q, vocab.sub_property_of, r),
            head=Pattern(p, vocab.sub_property_of, r),
        ),
        JoinRule(
            "rdfs7",
            Pattern(p, vocab.sub_property_of, q),
            Pattern(x, p, y),
            head=Pattern(x, q, y),
        ),
        JoinRule(
            "rdfs9",
            Pattern(c, vocab.sub_class_of, d),
            Pattern(x, vocab.type, c),
            head=Pattern(x, vocab.type, d),
        ),
        JoinRule(
            "rdfs11",
            Pattern(c, vocab.sub_class_of, d),
            Pattern(d, vocab.sub_class_of, e),
            head=Pattern(c, vocab.sub_class_of, e),
        ),
        SingleRule(
            "rdfs12",
            Pattern(p, vocab.type, vocab.container_membership_property),
            head=Pattern(p, vocab.sub_property_of, vocab.member),
        ),
        SingleRule(
            "rdfs13",
            Pattern(c, vocab.type, vocab.datatype),
            head=Pattern(c, vocab.sub_class_of, vocab.literal),
        ),
        JoinRule(
            "scm-dom2",
            Pattern(q, vocab.domain, c),
            Pattern(p, vocab.sub_property_of, q),
            head=Pattern(p, vocab.domain, c),
        ),
        JoinRule(
            "scm-rng2",
            Pattern(q, vocab.range, c),
            Pattern(p, vocab.sub_property_of, q),
            head=Pattern(p, vocab.range, c),
        ),
    ]


def build_full_rules(vocab: Vocabulary) -> list[Rule]:
    """The practical ruleset plus the reflexive/axiomatic rules."""
    c = Var("c")
    p = Var("p")
    rules = build_rules(vocab)
    rules.extend(
        [
            SingleRule(
                "rdfs6",
                Pattern(p, vocab.type, vocab.property),
                head=Pattern(p, vocab.sub_property_of, p),
            ),
            SingleRule(
                "rdfs8",
                Pattern(c, vocab.type, vocab.class_),
                head=Pattern(c, vocab.sub_class_of, vocab.resource),
            ),
            SingleRule(
                "rdfs10",
                Pattern(c, vocab.type, vocab.class_),
                head=Pattern(c, vocab.sub_class_of, c),
            ),
        ]
    )
    return rules


def axiomatic_triples() -> list[Triple]:
    """The RDF/RDFS axiomatic triples that seed the ``rdfs-full`` closure.

    A pragmatic subset of the RDF Semantics axiomatic set: the typing of
    the RDFS vocabulary itself, plus the domain/range declarations of the
    core properties.  (The infinite rdf:_n container-membership family is
    represented by rdfs:member alone.)
    """
    return [
        Triple(RDF.type, RDF.type, RDF.Property),
        Triple(RDFS.subClassOf, RDF.type, RDF.Property),
        Triple(RDFS.subPropertyOf, RDF.type, RDF.Property),
        Triple(RDFS.domain, RDF.type, RDF.Property),
        Triple(RDFS.range, RDF.type, RDF.Property),
        Triple(RDFS.member, RDF.type, RDF.Property),
        Triple(RDFS.Resource, RDF.type, RDFS.Class),
        Triple(RDFS.Class, RDF.type, RDFS.Class),
        Triple(RDFS.Literal, RDF.type, RDFS.Class),
        Triple(RDFS.Datatype, RDF.type, RDFS.Class),
        Triple(RDF.Property, RDF.type, RDFS.Class),
        Triple(RDF.type, RDFS.domain, RDFS.Resource),
        Triple(RDF.type, RDFS.range, RDFS.Class),
        Triple(RDFS.domain, RDFS.domain, RDF.Property),
        Triple(RDFS.domain, RDFS.range, RDFS.Class),
        Triple(RDFS.range, RDFS.domain, RDF.Property),
        Triple(RDFS.range, RDFS.range, RDFS.Class),
        Triple(RDFS.subClassOf, RDFS.domain, RDFS.Class),
        Triple(RDFS.subClassOf, RDFS.range, RDFS.Class),
        Triple(RDFS.subPropertyOf, RDFS.domain, RDF.Property),
        Triple(RDFS.subPropertyOf, RDFS.range, RDF.Property),
    ]
