"""The ρdf fragment (Muñoz, Pérez & Gutierrez 2007), as used by Slider.

Figure 2 of the paper shows the eight rules, with their OWL 2 RL profile
names (tables 4–9 of the Profiles recommendation):

========  ==========================================================
PRP-DOM   <p domain c> ∧ <x p y> → <x type c>
PRP-RNG   <p range c>  ∧ <x p y> → <y type c>
PRP-SPO1  <p subPropertyOf q> ∧ <x p y> → <x q y>
CAX-SCO   <c1 subClassOf c2>  ∧ <x type c1> → <x type c2>
SCM-SCO   <c1 subClassOf c2>  ∧ <c2 subClassOf c3> → <c1 subClassOf c3>
SCM-SPO   <p1 subPropertyOf p2> ∧ <p2 subPropertyOf p3> → <p1 subPropertyOf p3>
SCM-DOM2  <p2 domain c> ∧ <p1 subPropertyOf p2> → <p1 domain c>
SCM-RNG2  <p2 range c>  ∧ <p1 subPropertyOf p2> → <p1 range c>
========  ==========================================================

PRP-DOM, PRP-RNG and PRP-SPO1 have *universal input* (their second body
pattern matches any predicate), exactly as the dependency graph in the
paper's Figure 2 shows.
"""

from __future__ import annotations

from ..rules import JoinRule, Pattern, Rule, Var
from ..vocabulary import Vocabulary

__all__ = ["build_rules", "RULE_NAMES"]

RULE_NAMES = (
    "prp-dom",
    "prp-rng",
    "prp-spo1",
    "cax-sco",
    "scm-sco",
    "scm-spo",
    "scm-dom2",
    "scm-rng2",
)


def build_rules(vocab: Vocabulary) -> list[Rule]:
    """Instantiate the eight ρdf rules against a vocabulary."""
    x, y = Var("x"), Var("y")
    c, c1, c2, c3 = Var("c"), Var("c1"), Var("c2"), Var("c3")
    p, q = Var("p"), Var("q")
    p1, p2, p3 = Var("p1"), Var("p2"), Var("p3")

    return [
        JoinRule(
            "prp-dom",
            Pattern(p, vocab.domain, c),
            Pattern(x, p, y),
            head=Pattern(x, vocab.type, c),
        ),
        JoinRule(
            "prp-rng",
            Pattern(p, vocab.range, c),
            Pattern(x, p, y),
            head=Pattern(y, vocab.type, c),
        ),
        JoinRule(
            "prp-spo1",
            Pattern(p, vocab.sub_property_of, q),
            Pattern(x, p, y),
            head=Pattern(x, q, y),
        ),
        JoinRule(
            "cax-sco",
            Pattern(c1, vocab.sub_class_of, c2),
            Pattern(x, vocab.type, c1),
            head=Pattern(x, vocab.type, c2),
        ),
        JoinRule(
            "scm-sco",
            Pattern(c1, vocab.sub_class_of, c2),
            Pattern(c2, vocab.sub_class_of, c3),
            head=Pattern(c1, vocab.sub_class_of, c3),
        ),
        JoinRule(
            "scm-spo",
            Pattern(p1, vocab.sub_property_of, p2),
            Pattern(p2, vocab.sub_property_of, p3),
            head=Pattern(p1, vocab.sub_property_of, p3),
        ),
        JoinRule(
            "scm-dom2",
            Pattern(p2, vocab.domain, c),
            Pattern(p1, vocab.sub_property_of, p2),
            head=Pattern(p1, vocab.domain, c),
        ),
        JoinRule(
            "scm-rng2",
            Pattern(p2, vocab.range, c),
            Pattern(p1, vocab.sub_property_of, p2),
            head=Pattern(p1, vocab.range, c),
        ),
    ]
