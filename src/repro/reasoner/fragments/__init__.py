"""Fragment registry: named, pluggable rule sets.

A *fragment* bundles a rule factory with optional axiomatic triples.  The
engine asks the registry by name (``"rhodf"``, ``"rdfs"``, ``"rdfs-full"``,
``"owl-horst"``), and third-party code can register custom fragments —
the paper's "Fragment's Customization" feature::

    from repro.reasoner.fragments import Fragment, register_fragment

    def my_rules(vocab):
        return [...]

    register_fragment(Fragment("my-fragment", my_rules))
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ...rdf.terms import Triple
from ..rules import Rule
from ..vocabulary import Vocabulary
from . import owl_horst, rdfs, rhodf

__all__ = [
    "Fragment",
    "register_fragment",
    "get_fragment",
    "available_fragments",
    "UnknownFragmentError",
]


class UnknownFragmentError(KeyError):
    """Raised when asking the registry for a fragment it does not know."""

    def __init__(self, name: str, known: Iterable[str]):
        super().__init__(name)
        self.name = name
        self.known = sorted(known)

    def __str__(self):
        return f"unknown fragment {self.name!r}; available: {', '.join(self.known)}"


class Fragment:
    """A named rule set.

    ``build_rules`` receives a :class:`~repro.reasoner.vocabulary.Vocabulary`
    and returns fresh :class:`~repro.reasoner.rules.Rule` instances (fresh,
    because some rules — e.g. the OWL-Horst transitivity rule — carry
    per-run state).  ``axioms`` are term-level triples injected into the
    store before any input.
    """

    def __init__(
        self,
        name: str,
        build_rules: Callable[[Vocabulary], list[Rule]],
        axioms: Callable[[], Sequence[Triple]] | None = None,
        description: str = "",
    ):
        if not name:
            raise ValueError("fragment needs a name")
        self.name = name
        self._build_rules = build_rules
        self._axioms = axioms
        self.description = description

    def rules(self, vocab: Vocabulary) -> list[Rule]:
        """Fresh rule instances bound to ``vocab``."""
        built = self._build_rules(vocab)
        names = [rule.name for rule in built]
        if len(set(names)) != len(names):
            raise ValueError(f"fragment {self.name!r} has duplicate rule names: {names}")
        return built

    def axioms(self) -> list[Triple]:
        """Axiomatic triples to seed the store with (may be empty)."""
        return list(self._axioms()) if self._axioms is not None else []

    def __repr__(self):
        return f"Fragment({self.name!r})"


_REGISTRY: dict[str, Fragment] = {}

_ALIASES = {
    "pdf": "rhodf",
    "ρdf": "rhodf",
    "rho-df": "rhodf",
    "rhodf": "rhodf",
    "rdfs": "rdfs",
    "rdfs-default": "rdfs",
    "rdfs-full": "rdfs-full",
    "owl-horst": "owl-horst",
    "owlhorst": "owl-horst",
    "pd*": "owl-horst",
}


def register_fragment(fragment: Fragment, overwrite: bool = False) -> Fragment:
    """Add a fragment to the registry.  Returns it for chaining."""
    key = fragment.name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"fragment {fragment.name!r} already registered")
    _REGISTRY[key] = fragment
    return fragment


def get_fragment(name: str) -> Fragment:
    """Look a fragment up by name (case-insensitive, aliases allowed)."""
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownFragmentError(name, _REGISTRY.keys()) from None


def available_fragments() -> list[str]:
    """Registered fragment names, sorted."""
    return sorted(_REGISTRY.keys())


register_fragment(
    Fragment(
        "rhodf",
        rhodf.build_rules,
        description="ρdf: the 8-rule minimal deductive system (paper Figure 2)",
    )
)
register_fragment(
    Fragment(
        "rdfs",
        rdfs.build_rules,
        description="RDFS: practical rdfs2-13 ruleset (no reflexive/axiomatic rules)",
    )
)
register_fragment(
    Fragment(
        "rdfs-full",
        rdfs.build_full_rules,
        axioms=rdfs.axiomatic_triples,
        description="RDFS plus reflexive rules and axiomatic triples",
    )
)
register_fragment(
    Fragment(
        "owl-horst",
        owl_horst.build_rules,
        description="RDFS plus OWL-Horst property/equality rules (paper future work)",
    )
)
