"""An OWL-Horst-style extension fragment (the paper's "future work").

The paper's conclusion plans "more complex inference rules, in order to
implement reasoning over a more complex fragment".  This module provides
that extension: the pD* (ter Horst) property-reasoning core layered on
top of RDFS — transitivity, symmetry, inverses, owl:sameAs equality and
equivalence of classes/properties.  All rules fit the same one- or
two-pattern shape the pipeline executes, which demonstrates the
fragment-agnostic claim: nothing in the engine changes.

Rules (names follow the OWL 2 RL profile tables where they exist):

=========  =========================================================
prp-trp    <p type TransitiveProperty> routes p-triples through a
           dedicated transitivity join: <x p y> ∧ <y p z> → <x p z>
prp-symp   <p type SymmetricProperty> ∧ <x p y> → <y p x>
prp-inv1   <p inverseOf q> ∧ <x p y> → <y q x>
prp-inv2   <p inverseOf q> ∧ <x q y> → <y p x>
eq-sym     <x sameAs y> → <y sameAs x>
eq-trans   <x sameAs y> ∧ <y sameAs z> → <x sameAs z>
eq-rep-s   <x sameAs y> ∧ <x p o> → <y p o>
eq-rep-o   <x sameAs y> ∧ <s p x> → <s p y>
scm-eqc1   <c1 equivalentClass c2> → <c1 subClassOf c2>
scm-eqc1i  <c1 equivalentClass c2> → <c2 subClassOf c1>
scm-eqp1   <p1 equivalentProperty p2> → <p1 subPropertyOf p2>
scm-eqp1i  <p1 equivalentProperty p2> → <p2 subPropertyOf p1>
=========  =========================================================

``prp-trp`` needs a *three*-pattern body in its textbook form; here it is
decomposed into the standard two-pattern encoding used by streaming
reasoners: a :class:`TransitivityRule` holds the set of known transitive
properties (maintained from ``<p type TransitiveProperty>`` triples) and
performs the two-sided join only for those predicates.
"""

from __future__ import annotations

from ..rules import JoinRule, OutputBuffer, Pattern, Rule, SingleRule, Var
from ..vocabulary import Vocabulary
from . import rdfs as rdfs_fragment

__all__ = ["build_rules", "TransitivityRule", "RULE_NAMES"]

RULE_NAMES = (
    "prp-trp",
    "prp-symp",
    "prp-inv1",
    "prp-inv2",
    "eq-sym",
    "eq-trans",
    "eq-rep-s",
    "eq-rep-o",
    "scm-eqc1",
    "scm-eqc1i",
    "scm-eqp1",
    "scm-eqp1i",
)


class TransitivityRule(Rule):
    """prp-trp: transitive closure restricted to declared transitive props.

    The body would be ``<p type TransitiveProperty> ∧ <x p y> ∧ <y p z>``;
    since the pipeline executes two-pattern joins, this rule keeps its own
    registry of transitive property ids (updated whenever it sees a
    declaration triple) and runs the ``<x p y> ∧ <y p z>`` join per
    registered property.  It has universal input: a data triple for a
    property declared transitive *later* is still handled, because the
    declaration's arrival triggers a full re-join for that property from
    the store.
    """

    def __init__(self, vocab: Vocabulary):
        x, y, z = Var("x"), Var("y"), Var("z")
        p = Var("p")
        # Declarative metadata only; apply() is hand-written.
        super().__init__(
            "prp-trp",
            head=Pattern(x, p, z),
            body=(Pattern(x, p, y), Pattern(y, p, z)),
        )
        self._declaration = Pattern(p, vocab.type, vocab.transitive_property)
        self._vocab = vocab
        self._transitive: set[int] = set()

    @property
    def transitive_properties(self) -> frozenset[int]:
        """Snapshot of the property ids currently known to be transitive."""
        return frozenset(self._transitive)

    def prime(self, store, vocab) -> None:
        """Rebuild the registry from an externally-restored store.

        Snapshot recovery loads a complete closure without routing any
        triple through the rules, so declaration triples never pass
        :meth:`apply_into`; the engine calls this hook (duck-typed —
        any rule may define it) after a restore.  No re-join is needed:
        the restored closure is already complete, the registry only has
        to cover *future* increments.
        """
        self._transitive.update(
            store.subjects(self._vocab.type, self._vocab.transitive_property)
        )

    def apply_into(self, store, new_triples, vocab, out: OutputBuffer) -> None:
        # First absorb new declarations; each newly-declared property gets
        # a full self-join over the store (its triples may predate the
        # declaration).
        for subject, predicate, obj in new_triples:
            if (
                predicate == self._vocab.type
                and obj == self._vocab.transitive_property
                and subject not in self._transitive
            ):
                self._transitive.add(subject)
                self._full_join(store, subject, out)
        # Then the incremental two-sided join for known transitive props.
        for triple in new_triples:
            subject, predicate, obj = triple
            if predicate not in self._transitive:
                continue
            for farther in store.objects(predicate, obj):
                out.emit((subject, predicate, farther))
            for nearer in store.subjects(predicate, subject):
                out.emit((nearer, predicate, obj))

    def _full_join(self, store, predicate: int, out: OutputBuffer) -> None:
        pairs = store.pairs_for_predicate(predicate)
        by_subject: dict[int, list[int]] = {}
        for subject, obj in pairs:
            by_subject.setdefault(subject, []).append(obj)
        for subject, obj in pairs:
            for farther in by_subject.get(obj, ()):
                out.emit((subject, predicate, farther))


def build_rules(vocab: Vocabulary) -> list[Rule]:
    """RDFS (practical) plus the OWL-Horst property/equality rules."""
    x, y, z = Var("x"), Var("y"), Var("z")
    s, o = Var("s"), Var("o")
    c1, c2 = Var("c1"), Var("c2")
    p, q = Var("p"), Var("q")
    p1, p2 = Var("p1"), Var("p2")

    rules: list[Rule] = rdfs_fragment.build_rules(vocab)
    rules.extend(
        [
            TransitivityRule(vocab),
            JoinRule(
                "prp-symp",
                Pattern(p, vocab.type, vocab.symmetric_property),
                Pattern(x, p, y),
                head=Pattern(y, p, x),
            ),
            JoinRule(
                "prp-inv1",
                Pattern(p, vocab.inverse_of, q),
                Pattern(x, p, y),
                head=Pattern(y, q, x),
            ),
            JoinRule(
                "prp-inv2",
                Pattern(p, vocab.inverse_of, q),
                Pattern(x, q, y),
                head=Pattern(y, p, x),
            ),
            SingleRule(
                "eq-sym",
                Pattern(x, vocab.same_as, y),
                head=Pattern(y, vocab.same_as, x),
            ),
            JoinRule(
                "eq-trans",
                Pattern(x, vocab.same_as, y),
                Pattern(y, vocab.same_as, z),
                head=Pattern(x, vocab.same_as, z),
            ),
            JoinRule(
                "eq-rep-s",
                Pattern(x, vocab.same_as, y),
                Pattern(x, p, o),
                head=Pattern(y, p, o),
            ),
            JoinRule(
                "eq-rep-o",
                Pattern(x, vocab.same_as, y),
                Pattern(s, p, x),
                head=Pattern(s, p, y),
            ),
            SingleRule(
                "scm-eqc1",
                Pattern(c1, vocab.equivalent_class, c2),
                head=Pattern(c1, vocab.sub_class_of, c2),
            ),
            SingleRule(
                "scm-eqc1i",
                Pattern(c1, vocab.equivalent_class, c2),
                head=Pattern(c2, vocab.sub_class_of, c1),
            ),
            SingleRule(
                "scm-eqp1",
                Pattern(p1, vocab.equivalent_property, p2),
                head=Pattern(p1, vocab.sub_property_of, p2),
            ),
            SingleRule(
                "scm-eqp1i",
                Pattern(p1, vocab.equivalent_property, p2),
                head=Pattern(p2, vocab.sub_property_of, p1),
            ),
        ]
    )
    return rules
