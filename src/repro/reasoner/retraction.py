"""Incremental retraction: the DRed (delete-and-rederive) algorithm.

The paper's related work (§1) notes that most stream-reasoning systems
"limit the amount of data in the knowledge base by eliminating former
triples" — but Slider itself only adds.  This module supplies the
missing operation as the classic DRed algorithm (Gupta, Mumick &
Subrahmanian, SIGMOD'93), adapted to the engine's rule framework:

1. **Over-delete.**  Starting from the explicitly retracted triples,
   repeatedly apply every rule with the deletion frontier as the delta
   (against the *pre-deletion* store): anything derivable *from* a
   deleted triple is a candidate.  Explicitly asserted triples are
   immune — an assertion never depends on a derivation.
2. **Delete** the whole over-estimate from the store.
3. **Re-derive.**  Some candidates are still supported by the surviving
   triples through other derivations.  Evaluate each rule that could
   produce a candidate against the post-deletion store and re-add the
   intersection; re-added triples then propagate through the normal
   incremental machinery (the engine's dispatch), which restores any
   transitive support.

Correctness (pinned by property tests): for any ontology A and any
subset B ⊆ A, ``materialize(A); retract(B)`` leaves exactly
``closure(A \\ B)`` in the store.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..dictionary.encoder import EncodedTriple
from ..store.backends.base import TripleStore
from .rules import OutputBuffer, Rule, apply_rule_into, derive_all
from .vocabulary import Vocabulary

__all__ = ["dred_retract"]


def _rules_producing(rules: Sequence[Rule], predicates: set[int]) -> list[Rule]:
    """Rules whose head could produce a triple with one of ``predicates``."""
    relevant = []
    for rule in rules:
        outputs = rule.output_predicates
        if outputs is None or outputs & predicates:
            relevant.append(rule)
    return relevant


def dred_retract(
    store: TripleStore,
    rules: Sequence[Rule],
    vocab: Vocabulary,
    explicit: set[EncodedTriple],
    retracted: Iterable[EncodedTriple],
    redispatch: Callable[[list[EncodedTriple]], None] | None = None,
) -> tuple[list[EncodedTriple], list[EncodedTriple]]:
    """Run DRed over ``store``.  Returns the (deleted, re-derived) lists.

    The first list holds every triple phase 2 actually removed from the
    store, the second every triple phase 3 put back — the engine's
    change log nets the two into the revision's exact removal set.

    ``explicit`` is the live set of asserted triples; the retracted ones
    are removed from it.  ``redispatch`` (the engine's dispatcher) is
    called with the re-derived seeds so their consequences propagate
    incrementally; pass ``None`` for store-only use (the caller must
    then reach the fixpoint itself — the batch tests do).
    """
    frontier = [t for t in set(retracted) if t in store]
    if not frontier:
        return ([], [])
    for triple in frontier:
        explicit.discard(triple)

    # Phase 1: over-delete (against the still-intact store).  One reusable
    # output buffer serves every round; it also dedups across rules, so a
    # candidate derived by two rules is filtered once here rather than
    # twice downstream.
    scratch = OutputBuffer()
    overdeleted: set[EncodedTriple] = set(frontier)
    while frontier:
        for rule in rules:
            apply_rule_into(rule, store, frontier, vocab, scratch)
        candidates = scratch.take()
        frontier = [
            t
            for t in candidates
            if t in store and t not in overdeleted and t not in explicit
        ]
        overdeleted.update(frontier)

    # Phase 2: delete the over-estimate.
    deleted = store.remove_all(overdeleted)

    # Phase 3: re-derive survivors.  A candidate still derivable from the
    # remaining store is put back; its consequences then flow through the
    # normal incremental path.
    candidate_predicates = {t[1] for t in overdeleted}
    producers = _rules_producing(rules, candidate_predicates)
    pending = set(overdeleted)
    seeds: list[EncodedTriple] = []
    for rule in producers:
        for triple in derive_all(rule, store, vocab):
            if triple in pending:
                seeds.append(triple)
    rederived = store.add_all(seeds)
    pending.difference_update(rederived)
    # Re-added triples may support further pending candidates; propagate
    # incrementally (delta joins) until the re-derivation frontier dries.
    frontier = list(rederived)
    while frontier and pending:
        for rule in producers:
            apply_rule_into(rule, store, frontier, vocab, scratch)
        found = [triple for triple in scratch.take() if triple in pending]
        frontier = store.add_all(found)
        pending.difference_update(frontier)
        rederived.extend(frontier)

    if redispatch is not None and rederived:
        redispatch(rederived)
    return (deleted, rederived)
