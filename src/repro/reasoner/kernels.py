"""Vectorized rule-join kernels: batch joins instead of per-triple probes.

The classic inner loop of Algorithm 1 (:meth:`JoinRule._half_join`)
probes the store once per new triple: build a binding dict, derive a
lookup key, take the store's read lock, materialize the matching
partners, re-match each partner to extend the binding.  Correct, but
every step is per-triple Python work.

This module compiles each half-join direction of a
:class:`~repro.reasoner.rules.JoinRule` into a positional
:class:`HalfJoinPlan` — constants to check, slots to join on, how to
build the head — and executes a whole firing batch through one of two
batch kernels:

* **hash join** (mutable stores): fetch the stored partner partition
  *once* (one lock acquisition), group it by join key, then stream the
  new batch through plain dict lookups;
* **galloping merge join** (columnar stores): the partner partition is
  already a sorted ``memoryview`` column of the mapped snapshot, so the
  batch is sorted by join key and intersected with the column by
  exponential (galloping) search — no partner materialization at all.

Kernel selection is per pass, by operand cardinality: tiny batches keep
the classic per-triple probes (building a partition index would cost
more than it saves), as do passes where the stored partition dwarfs the
batch.  Both kernels emit through the same
:class:`~repro.reasoner.rules.OutputBuffer` and apply the same RDF
well-formedness guards as ``Rule._emit``, so the derived closure is
identical triple-for-triple — the differential harness holds either
way.

Snapshotting the partner partition at firing start is as complete as
live probing: a partner inserted mid-pass is routed to this rule
itself, and *its* half-join finds today's batch already in the store
(the same argument that justifies the empty-partition short-circuit in
``_half_join``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from ..dictionary.encoder import EncodedTriple

__all__ = [
    "KERNEL_MIN_BATCH",
    "HalfJoinPlan",
    "compile_half_join",
    "gallop_left",
    "intersect_sorted",
]

#: Below this batch size the per-triple probe path wins (no index build).
KERNEL_MIN_BATCH = 8

#: Skip the hash kernel when the stored partition is more than this many
#: times larger than the batch — per-triple probes touch less of it.
_INDEX_MAX_RATIO = 64

# Head-slot op kinds.
_CONST = 0   # value is the constant itself
_NEW = 1     # value indexes the new triple (0..2)
_PARTNER = 2  # value indexes the partner (s, o) pair (0..1)


def gallop_left(column, value, lo: int, hi: int) -> int:
    """Leftmost index in sorted ``column[lo:hi]`` with ``column[i] >= value``.

    Exponential (galloping) search: doubles the probe distance from
    ``lo`` before binary-searching the bracketed window — O(log d) for a
    partner d positions ahead, which is what makes a merge join over a
    long sorted column proportional to the *output*, not the column.
    """
    if lo >= hi or column[lo] >= value:
        return lo
    step = 1
    while lo + step < hi and column[lo + step] < value:
        step <<= 1
    return bisect_left(column, value, lo + (step >> 1) + 1, min(lo + step, hi))


def intersect_sorted(a, b) -> list:
    """Galloping intersection of two sorted, duplicate-free sequences.

    Works over any indexable sequence — lists, arrays, or the
    ``memoryview`` id columns of a mapped columnar snapshot.
    """
    out: list = []
    i, j = 0, 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        va, vb = a[i], b[j]
        if va == vb:
            out.append(va)
            i += 1
            j += 1
        elif va < vb:
            i = gallop_left(a, vb, i + 1, len_a)
        else:
            j = gallop_left(b, va, j + 1, len_b)
    return out


class HalfJoinPlan:
    """One compiled half-join direction of a two-pattern rule body.

    Positional program: every check and projection is a (slot, value)
    pair — no binding dicts, no pattern re-matching.  Built once per
    rule by :func:`compile_half_join`; ``execute`` runs one firing's
    batch and returns ``False`` when the pass should fall back to the
    classic per-triple probe loop (tiny batch, unfavourable
    cardinalities), in which case it has emitted nothing.
    """

    __slots__ = (
        "store_pred",
        "new_pred",
        "new_checks",
        "new_eq",
        "partner_checks",
        "partner_eq",
        "probe",
        "head_ops",
    )

    def __init__(self, store_pred, new_pred, new_checks, new_eq,
                 partner_checks, partner_eq, probe, head_ops):
        self.store_pred = store_pred
        self.new_pred = new_pred
        self.new_checks = tuple(new_checks)
        self.new_eq = tuple(new_eq)
        self.partner_checks = tuple(partner_checks)
        self.partner_eq = tuple(partner_eq)
        self.probe = tuple(probe)
        self.head_ops = tuple(head_ops)

    # --- batch filtering ---------------------------------------------------
    def _filter_batch(self, new_triples: Sequence[EncodedTriple]) -> list:
        batch = new_triples
        if self.new_pred is not None:
            batch = [t for t in batch if t[1] == self.new_pred]
        for pos, val in self.new_checks:
            batch = [t for t in batch if t[pos] == val]
        for i, j in self.new_eq:
            batch = [t for t in batch if t[i] == t[j]]
        return batch if isinstance(batch, list) else list(batch)

    def _partner_ok(self, pair) -> bool:
        for ppos, val in self.partner_checks:
            if pair[ppos] != val:
                return False
        for i, j in self.partner_eq:
            if pair[i] != pair[j]:
                return False
        return True

    def _emit_join(self, t, pair, is_literal, out) -> None:
        (ks, vs), (kp, vp), (ko, vo) = self.head_ops
        s = vs if ks == _CONST else (t[vs] if ks == _NEW else pair[vs])
        p = vp if kp == _CONST else (t[vp] if kp == _NEW else pair[vp])
        if is_literal(s) or is_literal(p):
            return
        o = vo if ko == _CONST else (t[vo] if ko == _NEW else pair[vo])
        out.emit((s, p, o))

    # --- execution ---------------------------------------------------------
    def execute(self, store, new_triples, is_literal, out) -> bool:
        """Run one firing batch; ``False`` defers to the classic loop."""
        if len(new_triples) < KERNEL_MIN_BATCH:
            return False
        batch = self._filter_batch(new_triples)
        if not batch:
            return True  # handled: nothing can join
        if not store.has_predicate(self.store_pred):
            return True  # empty partition short-circuit, as in _half_join
        partition = getattr(store, "pos_partition", None)
        if partition is not None and len(self.probe) == 1 and self.probe[0][0] == 1:
            self._merge_join_columnar(partition(self.store_pred), batch,
                                      is_literal, out)
            return True
        if store.count_predicate(self.store_pred) > _INDEX_MAX_RATIO * len(batch):
            return False  # probing beats indexing at this ratio
        self._hash_join(store, batch, is_literal, out)
        return True

    def _hash_join(self, store, batch, is_literal, out) -> None:
        """Group the stored partition by join key, stream the batch through."""
        probe = self.probe
        index: dict = {}
        if len(probe) == 1:
            ppos, new_pos = probe[0]
            for pair in store.pairs_for_predicate(self.store_pred):
                if self._partner_ok(pair):
                    index.setdefault(pair[ppos], []).append(pair)
            for t in batch:
                partners = index.get(t[new_pos])
                if partners:
                    for pair in partners:
                        self._emit_join(t, pair, is_literal, out)
            return
        for pair in store.pairs_for_predicate(self.store_pred):
            if self._partner_ok(pair):
                key = tuple(pair[ppos] for ppos, _ in probe)
                index.setdefault(key, []).append(pair)
        for t in batch:
            partners = index.get(tuple(t[new_pos] for _, new_pos in probe))
            if partners:
                for pair in partners:
                    self._emit_join(t, pair, is_literal, out)

    def _merge_join_columnar(self, partition, batch, is_literal, out) -> None:
        """Gallop the sorted batch along the mapped partition columns.

        ``partition`` is ``(o_col, s_col, lo, hi)`` — the predicate's
        span of the POS ordering, sorted by object then subject, served
        as zero-copy ``memoryview`` windows.  The batch is sorted by its
        probe value, so the cursor only ever moves forward.
        """
        o_col, s_col, lo, hi = partition
        _, new_pos = self.probe[0]
        batch = sorted(batch, key=lambda t: t[new_pos])
        partner_ok = self._partner_ok
        for t in batch:
            value = t[new_pos]
            lo = gallop_left(o_col, value, lo, hi)
            i = lo
            while i < hi and o_col[i] == value:
                pair = (s_col[i], value)
                if partner_ok(pair):
                    self._emit_join(t, pair, is_literal, out)
                i += 1


def compile_half_join(new_side, store_side, head) -> HalfJoinPlan | None:
    """Compile one half-join direction into a plan, or ``None``.

    ``None`` means this direction stays on the classic loop for good:
    the stored side's predicate is a variable (no partition to batch
    over) or the body is cartesian (no join slot).  Import is deferred
    by the caller; this function only needs the pattern structure.
    """
    from .rules import Var  # local import: rules imports this module

    store_pred = store_side.predicate
    if isinstance(store_pred, Var):
        return None

    new_checks: list = []
    new_eq: list = []
    new_vars: dict = {}
    new_pred = None
    for pos, slot in enumerate(new_side):
        if isinstance(slot, Var):
            first = new_vars.setdefault(slot.name, pos)
            if first != pos:
                new_eq.append((first, pos))
        elif pos == 1:
            new_pred = slot
        else:
            new_checks.append((pos, slot))

    partner_checks: list = []
    partner_eq: list = []
    probe: list = []
    partner_vars: dict = {}
    for ppos, slot in enumerate((store_side.subject, store_side.object)):
        if not isinstance(slot, Var):
            partner_checks.append((ppos, slot))
        elif slot.name in new_vars:
            probe.append((ppos, new_vars[slot.name]))
        else:
            first = partner_vars.setdefault(slot.name, ppos)
            if first != ppos:
                partner_eq.append((first, ppos))
    if not probe:
        return None  # cartesian body: stay on the classic loop

    head_ops: list = []
    for slot in head:
        if isinstance(slot, Var):
            # Probed store-side vars are, by construction, also new-side
            # vars (that is what makes them probes), so every head var is
            # reachable through one of these two tables.
            if slot.name in new_vars:
                head_ops.append((_NEW, new_vars[slot.name]))
            elif slot.name in partner_vars:
                head_ops.append((_PARTNER, partner_vars[slot.name]))
            else:
                return None  # bound through an unsupported slot shape
        else:
            head_ops.append((_CONST, slot))
    return HalfJoinPlan(
        store_pred, new_pred, new_checks, new_eq,
        partner_checks, partner_eq, probe, head_ops,
    )
