"""Distributors (paper §2, "Distributors").

Each rule has a distributor with three tasks: collect the triples the
rule inferred, add them to the triple store, and dispatch the *new* ones
(duplicates are dropped by the store's hash indexes) to the buffers of
dependent rules.  The dependent-buffer list comes from the rules
dependency graph at initialization; actual dispatch is by predicate, so
a triple only reaches the dependents whose input signature matches.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..dictionary.encoder import EncodedTriple
from ..store.backends.base import TripleStore
from .modules import RuleModule
from .trace import NullTrace

__all__ = ["Distributor"]

DispatchFn = Callable[[Sequence[EncodedTriple]], None]


class Distributor:
    """Collects one rule's inferences and feeds dependents.

    ``dispatch`` is provided by the engine: it routes a batch of
    *already-stored, known-new* triples to every matching buffer and
    schedules any rule firings that result.  ``dependents`` is kept for
    introspection (it is the paper's per-distributor buffer list).
    """

    def __init__(
        self,
        module: RuleModule,
        store: TripleStore,
        dispatch: DispatchFn,
        dependents: Sequence[str],
        trace=None,
        on_new: DispatchFn | None = None,
    ):
        self.module = module
        self.store = store
        self.dispatch = dispatch
        self.dependents = tuple(dependents)
        self.on_new = on_new  # engine change-log hook (store-new inferred triples)
        self.trace = trace if trace is not None else NullTrace()

    def collect(self, derived: Sequence[EncodedTriple]) -> list[EncodedTriple]:
        """Insert derived triples; dispatch and return the new ones.

        ``derived`` comes from a module firing's
        :class:`~repro.reasoner.rules.OutputBuffer`, so it is already
        free of intra-batch duplicates — ``add_all`` only pays for
        cross-batch deduplication against the store's indexes.
        """
        if not derived:
            return []
        new_triples = self.store.add_all(derived)
        self.module.record_kept(len(new_triples))
        if self.trace.enabled:
            self.trace.record(
                "store",
                rule=self.module.rule.name,
                derived=len(derived),
                kept=len(new_triples),
                store_size=len(self.store),
            )
        if new_triples:
            if self.on_new is not None:
                self.on_new(new_triples)
            self.dispatch(new_triples)
        return new_triples

    def __repr__(self):
        return f"<Distributor {self.module.rule.name} -> {list(self.dependents)}>"
