"""Rule modules (paper §2, "Rule Modules").

A :class:`RuleModule` pairs one rule with its buffer and accumulates the
execution statistics the demo GUI displays.  Each *firing* — a batch of
triples leaving the buffer — conceptually creates a new module instance
on the thread pool; here an instance is simply one :meth:`execute` call,
which is reentrant and thread-safe (the rule reads a consistent store
snapshot through the store's read lock, and the statistics are guarded).

Firings are batch-native: each worker thread reuses one
:class:`~repro.reasoner.rules.OutputBuffer` per module, so a firing
emits into pre-allocated storage instead of building a fresh list and
dedup set — and the batch handed to the distributor is guaranteed free
of intra-firing duplicates.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..dictionary.encoder import EncodedTriple
from ..store.backends.base import TripleStore
from .buffers import TripleBuffer
from .rules import OutputBuffer, Rule, apply_rule_into
from .vocabulary import Vocabulary

__all__ = ["RuleModule"]


class RuleModule:
    """One rule plus its buffer plus execution statistics."""

    def __init__(self, rule: Rule, buffer: TripleBuffer):
        if rule.name != buffer.rule_name:
            raise ValueError(
                f"buffer {buffer.rule_name!r} does not belong to rule {rule.name!r}"
            )
        self.rule = rule
        self.buffer = buffer
        self._stats_lock = threading.Lock()
        self._scratch = threading.local()  # per-thread reusable OutputBuffer
        self.executions = 0
        self.triples_consumed = 0
        self.triples_derived = 0  # raw rule output (pre store-dedup)
        self.triples_kept = 0  # survived store deduplication

    def execute(
        self,
        store: TripleStore,
        batch: Sequence[EncodedTriple],
        vocab: Vocabulary,
    ) -> list[EncodedTriple]:
        """Run one rule-module instance over a buffered batch."""
        out = getattr(self._scratch, "out", None)
        if out is None:
            out = self._scratch.out = OutputBuffer()
        try:
            apply_rule_into(self.rule, store, batch, vocab, out)
        except BaseException:
            out.take()  # discard partial output so the buffer reuses clean
            raise
        derived = out.take()
        with self._stats_lock:
            self.executions += 1
            self.triples_consumed += len(batch)
            self.triples_derived += len(derived)
        return derived

    def record_kept(self, count: int) -> None:
        """Distributor feedback: how many derived triples were new."""
        with self._stats_lock:
            self.triples_kept += count

    def stats(self) -> dict[str, int]:
        """Snapshot of the module's counters (demo GUI panel 2)."""
        with self._stats_lock:
            return {
                "executions": self.executions,
                "consumed": self.triples_consumed,
                "derived": self.triples_derived,
                "kept": self.triples_kept,
                "duplicates_filtered": self.triples_derived - self.triples_kept,
            }

    def __repr__(self):
        return f"<RuleModule {self.rule.name} runs={self.executions} kept={self.triples_kept}>"
