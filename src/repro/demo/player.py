"""The inference player (paper §4, panel 2).

The demo web GUI lets users "pause the inference, go backwards, and
replay any part of the inference", driven by a per-step log of module
states.  :class:`InferencePlayer` provides exactly that over a recorded
:class:`~repro.reasoner.trace.Trace`: play / pause / step forward /
step backward / seek, with the full module state (the GUI's progress
bars and three per-buffer counters) reconstructed at every step.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..reasoner.trace import Trace, TraceEvent

__all__ = ["ModuleState", "PlayerState", "InferencePlayer"]


class ModuleState:
    """One rule module's counters at a point in the replay."""

    __slots__ = ("rule", "size_fires", "timeout_fires", "executions",
                 "derived", "kept")

    def __init__(self, rule: str):
        self.rule = rule
        self.size_fires = 0      # GUI counter (i): times the buffer filled
        self.timeout_fires = 0   # GUI counter (ii): forced flushes
        self.executions = 0
        self.derived = 0
        self.kept = 0            # GUI counter (iii): triples inferred

    def as_dict(self) -> dict[str, int | str]:
        return {
            "rule": self.rule,
            "size_fires": self.size_fires,
            "timeout_fires": self.timeout_fires,
            "executions": self.executions,
            "derived": self.derived,
            "kept": self.kept,
        }

    def copy(self) -> "ModuleState":
        clone = ModuleState(self.rule)
        clone.size_fires = self.size_fires
        clone.timeout_fires = self.timeout_fires
        clone.executions = self.executions
        clone.derived = self.derived
        clone.kept = self.kept
        return clone


class PlayerState:
    """Global reasoner state at one step of the replay.

    Mirrors the GUI's progress bars: input consumed, store composition
    (explicit green part vs inferred orange part), per-module counters,
    and the ring of recently executed rules ("the thread pool is
    represented by the last five executed rules").
    """

    RECENT_RULES = 5

    def __init__(self):
        self.step = 0
        self.input_received = 0
        self.input_new = 0
        self.inferred_kept = 0
        self.store_size = 0
        self.flushes = 0
        self.revision = 0       # last committed revision (delta API)
        self.removed_total = 0  # triples DRed removed (net, all retractions)
        self.done = False
        self.modules: dict[str, ModuleState] = {}
        self.recent_rules: list[str] = []

    @property
    def explicit_in_store(self) -> int:
        """The green part of the GUI's store bar."""
        return self.input_new

    @property
    def inferred_in_store(self) -> int:
        """The orange part of the GUI's store bar."""
        return self.inferred_kept

    def module(self, rule: str) -> ModuleState:
        state = self.modules.get(rule)
        if state is None:
            state = ModuleState(rule)
            self.modules[rule] = state
        return state

    def advance(self, event: TraceEvent) -> None:
        """Fold one trace event into the state."""
        kind = event.kind
        payload = event.payload
        if kind == "input":
            self.input_received += payload["received"]
            self.input_new += payload["new"]
            self.store_size = payload["store_size"]
        elif kind == "buffer_full":
            self.module(payload["rule"]).size_fires += 1
        elif kind == "buffer_timeout":
            self.module(payload["rule"]).timeout_fires += 1
        elif kind == "rule_start":
            module = self.module(payload["rule"])
            module.executions += 1
            self.recent_rules.append(payload["rule"])
            del self.recent_rules[: -self.RECENT_RULES]
        elif kind == "rule_end":
            module = self.module(payload["rule"])
            module.derived += payload["derived"]
            module.kept += payload["kept"]
            self.inferred_kept += payload["kept"]
        elif kind == "store":
            self.store_size = payload["store_size"]
        elif kind == "flush":
            self.flushes += 1
        elif kind == "commit":
            self.revision = payload["revision"]
            self.store_size = payload["store_size"]
        elif kind == "retract":
            self.removed_total += payload["deleted"] - payload["rederived"]
            self.store_size = payload["store_size"]
        elif kind == "done":
            self.done = True
            self.store_size = payload["store_size"]
        self.step = event.seq + 1

    def copy(self) -> "PlayerState":
        clone = PlayerState()
        clone.step = self.step
        clone.input_received = self.input_received
        clone.input_new = self.input_new
        clone.inferred_kept = self.inferred_kept
        clone.store_size = self.store_size
        clone.flushes = self.flushes
        clone.revision = self.revision
        clone.removed_total = self.removed_total
        clone.done = self.done
        clone.modules = {name: module.copy() for name, module in self.modules.items()}
        clone.recent_rules = list(self.recent_rules)
        return clone

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "input_received": self.input_received,
            "explicit": self.explicit_in_store,
            "inferred": self.inferred_in_store,
            "store_size": self.store_size,
            "flushes": self.flushes,
            "revision": self.revision,
            "removed": self.removed_total,
            "done": self.done,
            "recent_rules": list(self.recent_rules),
            "modules": {name: m.as_dict() for name, m in sorted(self.modules.items())},
        }


class InferencePlayer:
    """Replayable view over a recorded inference trace.

    >>> player = InferencePlayer(trace)
    >>> player.seek(100).store_size
    >>> player.step_forward()        # -> PlayerState at step 101
    >>> player.step_back()           # -> back to 100
    >>> for event, state in player.play():   # full replay
    ...     ...
    """

    def __init__(self, trace: Trace):
        self._events = trace.snapshot()
        self._state = PlayerState()
        self._position = 0  # number of events folded into _state

    def __len__(self) -> int:
        return len(self._events)

    @property
    def position(self) -> int:
        return self._position

    @property
    def state(self) -> PlayerState:
        return self._state.copy()

    @property
    def at_end(self) -> bool:
        return self._position >= len(self._events)

    def seek(self, step: int) -> PlayerState:
        """Jump so that ``step`` events have been applied (clamped)."""
        step = max(0, min(step, len(self._events)))
        if step < self._position:
            # The log is the source of truth; rebuild from the start
            # (replays are demo-sized, and this keeps state exact).
            self._state = PlayerState()
            self._position = 0
        while self._position < step:
            self._state.advance(self._events[self._position])
            self._position += 1
        return self.state

    def step_forward(self) -> PlayerState | None:
        """Apply one event; ``None`` at the end of the log."""
        if self.at_end:
            return None
        self._state.advance(self._events[self._position])
        self._position += 1
        return self.state

    def step_back(self) -> PlayerState:
        """Undo one event (by replaying the prefix)."""
        return self.seek(self._position - 1)

    def play(
        self,
        from_step: int = 0,
        to_step: int | None = None,
        on_step: Callable[[TraceEvent, PlayerState], None] | None = None,
    ) -> Iterator[tuple[TraceEvent, PlayerState]]:
        """Iterate (event, state-after-event) pairs over a step range."""
        self.seek(from_step)
        end = len(self._events) if to_step is None else min(to_step, len(self._events))
        while self._position < end:
            event = self._events[self._position]
            state = self.step_forward()
            if on_step is not None:
                on_step(event, state)
            yield event, state

    def final_state(self) -> PlayerState:
        """The state after the whole log (does not move the cursor)."""
        saved = self._position
        state = self.seek(len(self._events))
        self.seek(saved)
        return state
