"""Demo layer: inference player and summary report (paper §4, Figure 4)."""

from .player import InferencePlayer, ModuleState, PlayerState
from .report import render_html, render_text, summarize, write_html_report

__all__ = [
    "InferencePlayer",
    "PlayerState",
    "ModuleState",
    "summarize",
    "render_text",
    "render_html",
    "write_html_report",
]
