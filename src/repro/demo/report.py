"""The demo's summary panel (paper §4, panel 3 / Figure 4).

Renders "proportion of triples from the ontology compared with the
triples inferred, distribution by rule of the triples inferred, and
number of time each rule has run", plus the quality/impact table —
as plain text for terminals and as a self-contained HTML page.
"""

from __future__ import annotations

import html
import json
from typing import Mapping

from ..reasoner.trace import Trace
from .player import InferencePlayer

__all__ = ["summarize", "render_text", "render_html", "write_html_report"]


def summarize(trace: Trace, config: Mapping | None = None) -> dict:
    """Aggregate a trace into the demo's summary structure."""
    state = InferencePlayer(trace).final_state()
    total = state.store_size or 1
    rules = sorted(
        (module.as_dict() for module in state.modules.values()),
        key=lambda row: (-row["kept"], row["rule"]),
    )
    return {
        "config": dict(config or {}),
        "steps": state.step,
        "input_received": state.input_received,
        "explicit": state.explicit_in_store,
        "inferred": state.inferred_in_store,
        "store_size": state.store_size,
        "explicit_pct": 100.0 * state.explicit_in_store / total,
        "inferred_pct": 100.0 * state.inferred_in_store / total,
        "rule_executions": sum(row["executions"] for row in rules),
        "size_fires": sum(row["size_fires"] for row in rules),
        "timeout_fires": sum(row["timeout_fires"] for row in rules),
        "duplicates_filtered": sum(row["derived"] - row["kept"] for row in rules),
        "rules": rules,
        "done": state.done,
    }


def _bar(fraction: float, width: int = 30, fill: str = "█") -> str:
    return fill * max(0, round(fraction * width))


def render_text(trace: Trace, config: Mapping | None = None) -> str:
    """Terminal rendering of the summary panel."""
    summary = summarize(trace, config)
    lines = ["=== Slider inference summary ==="]
    if summary["config"]:
        settings = ", ".join(f"{k}={v}" for k, v in sorted(summary["config"].items()))
        lines.append(f"configuration: {settings}")
    total = summary["store_size"] or 1
    lines.append(
        f"store: {summary['store_size']} triples "
        f"({summary['explicit']} explicit / {summary['inferred']} inferred)"
    )
    lines.append(
        f"  explicit {_bar(summary['explicit'] / total)} {summary['explicit_pct']:.1f}%"
    )
    lines.append(
        f"  inferred {_bar(summary['inferred'] / total, fill='▒')} {summary['inferred_pct']:.1f}%"
    )
    lines.append(
        f"rule executions: {summary['rule_executions']} "
        f"({summary['size_fires']} size-fired, {summary['timeout_fires']} timeout-fired); "
        f"duplicates filtered: {summary['duplicates_filtered']}"
    )
    lines.append("")
    lines.append(f"{'rule':<12} {'runs':>6} {'derived':>9} {'kept':>9}  share of inferences")
    peak = max((row["kept"] for row in summary["rules"]), default=0) or 1
    inferred_total = summary["inferred"] or 1
    for row in summary["rules"]:
        share = row["kept"] / inferred_total * 100.0
        lines.append(
            f"{row['rule']:<12} {row['executions']:>6} {row['derived']:>9} "
            f"{row['kept']:>9}  {_bar(row['kept'] / peak, width=24)} {share:.1f}%"
        )
    return "\n".join(lines)


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Slider inference report</title>
<style>
  body {{ font-family: system-ui, sans-serif; margin: 2rem; color: #222; }}
  h1 {{ font-size: 1.4rem; }}  h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
  table {{ border-collapse: collapse; margin-top: .5rem; }}
  th, td {{ border: 1px solid #ccc; padding: .3rem .7rem; text-align: right; }}
  th {{ background: #f0f0f0; }}  td.rule {{ text-align: left; font-family: monospace; }}
  .bar {{ display: inline-block; height: .8rem; background: #e67e22; vertical-align: middle; }}
  .bar.explicit {{ background: #27ae60; }}
  .storebar {{ width: 100%; background: #eee; height: 1.2rem; }}
  .storebar div {{ height: 100%; float: left; }}
  .legend {{ font-size: .85rem; color: #555; }}
</style>
</head>
<body>
<h1>Slider inference report</h1>
<p class="legend">{config}</p>
<h2>Triple store composition</h2>
<div class="storebar">
  <div class="bar explicit" style="width:{explicit_pct:.1f}%"></div>
  <div class="bar" style="width:{inferred_pct:.1f}%"></div>
</div>
<p class="legend">{store_size} triples — {explicit} explicit
({explicit_pct:.1f}%, green) / {inferred} inferred ({inferred_pct:.1f}%, orange)</p>
<h2>Inference quality &amp; parameter impact</h2>
<table>
<tr><th>rule executions</th><th>size-fired</th><th>timeout-fired</th>
<th>duplicates filtered</th><th>trace steps</th></tr>
<tr><td>{rule_executions}</td><td>{size_fires}</td><td>{timeout_fires}</td>
<td>{duplicates_filtered}</td><td>{steps}</td></tr>
</table>
<h2>Distribution by rule</h2>
<table>
<tr><th>rule</th><th>runs</th><th>derived</th><th>kept</th><th>share</th></tr>
{rule_rows}
</table>
<script type="application/json" id="summary">{summary_json}</script>
</body>
</html>
"""


def render_html(trace: Trace, config: Mapping | None = None) -> str:
    """Self-contained HTML rendering of the summary panel."""
    summary = summarize(trace, config)
    inferred_total = summary["inferred"] or 1
    rows = []
    for row in summary["rules"]:
        share = row["kept"] / inferred_total * 100.0
        rows.append(
            "<tr><td class=\"rule\">{rule}</td><td>{runs}</td><td>{derived}</td>"
            "<td>{kept}</td><td><span class=\"bar\" style=\"width:{width:.0f}px\"></span>"
            " {share:.1f}%</td></tr>".format(
                rule=html.escape(row["rule"]),
                runs=row["executions"],
                derived=row["derived"],
                kept=row["kept"],
                width=120.0 * row["kept"] / inferred_total,
                share=share,
            )
        )
    config_text = ", ".join(
        f"{html.escape(str(k))}={html.escape(str(v))}"
        for k, v in sorted((config or {}).items())
    )
    return _HTML_TEMPLATE.format(
        config=config_text or "default configuration",
        explicit=summary["explicit"],
        inferred=summary["inferred"],
        explicit_pct=summary["explicit_pct"],
        inferred_pct=summary["inferred_pct"],
        store_size=summary["store_size"],
        rule_executions=summary["rule_executions"],
        size_fires=summary["size_fires"],
        timeout_fires=summary["timeout_fires"],
        duplicates_filtered=summary["duplicates_filtered"],
        steps=summary["steps"],
        rule_rows="\n".join(rows),
        # \u-escape angle brackets so user-supplied config values cannot
        # break out of the <script> block.
        summary_json=json.dumps(summary, indent=1)
        .replace("<", "\\u003c")
        .replace(">", "\\u003e"),
    )


def write_html_report(trace: Trace, path, config: Mapping | None = None) -> None:
    """Write :func:`render_html` output to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html(trace, config))
