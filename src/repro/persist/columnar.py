"""Snapshot format v2: columnar, mmap-able, zero-copy.

The v1 snapshot (:mod:`repro.persist.snapshot`) is a varint stream —
compact, but loading it constructs every term and triple as Python
objects before the first read can be served.  Format v2 restructures
the image into fixed-width sorted id columns so a reader can *map* the
file and serve lookups straight off the mapped bytes:

::

    SLSNAP02                                   magic (8 bytes)
    header     varints: revision, axiom_count, fragment, store_spec,
               term_count, explicit_count, inferred_count, id_width
    ----8-byte aligned sections follow----
    term index (term_count + 1) u64 cumulative offsets into the blob
    term blob  concatenated v1 term encodings (term i occupies
               bytes index[i]:index[i+1])
    SPO cols   3 arrays of triple_count ids (s, p, o columns),
               rows sorted by (s, p, o)
    POS cols   3 arrays of triple_count ids (p, o, s columns),
               rows sorted by (p, o, s)
    explicit   explicit_count ascending row indexes into the SPO
               ordering marking the explicit partition
    crc        u32 crc32 of everything after the magic

Ids are little-endian ``id_width``-byte integers (4 unless the term
table overflows u32); columns are exposed as ``memoryview.cast``
windows, so a lookup is a pair of bisects over the mapped file — no
per-triple object construction, no heap-resident copy of the store.
Term payloads reuse the v1 ``write_term`` encoding, decoded lazily
per id through the offset index.

:class:`ColumnarSnapshot` is duck-compatible with
:class:`~repro.persist.snapshot.Snapshot` (same metadata attributes,
same ``restore`` contract), so every v1 consumer — engine recovery,
follower bootstrap, the CLI inspector — accepts either format.
Integrity is the trailing whole-image CRC, exactly as in v1.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from array import array
from pathlib import Path
from typing import Iterable, Sequence

from ..dictionary.encoder import EncodedTriple, TermDictionary
from ..rdf.terms import Term
from .format import (
    FormatError,
    fsync_dir,
    read_string,
    read_term,
    read_varint,
    write_string,
    write_term,
    write_varint,
)
from .snapshot import SnapshotError

__all__ = [
    "COLUMNAR_MAGIC",
    "COLUMNAR_MAGIC_V3",
    "COLUMNAR_MAGICS",
    "ColumnarSnapshot",
    "encode_columnar_snapshot",
    "parse_columnar_snapshot",
    "write_columnar_snapshot",
    "load_columnar_snapshot",
]

COLUMNAR_MAGIC = b"SLSNAP02"
#: Format v3: v2 plus a sparse named-graph column (row index + graph
#: term id pairs).  Written only when the image actually carries graph
#: data, so default-graph images stay byte-identical v2; the reader
#: accepts both, loading a v2 image as "everything in the default
#: graph" — that *is* the migration.
COLUMNAR_MAGIC_V3 = b"SLSNAP03"
COLUMNAR_MAGICS = (COLUMNAR_MAGIC, COLUMNAR_MAGIC_V3)

_CRC = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _pad8(out: bytearray) -> None:
    out.extend(b"\x00" * (_align8(len(out)) - len(out)))


def _typecode(id_width: int) -> str:
    return "I" if id_width == 4 else "Q"


# --- writer ------------------------------------------------------------------
def encode_columnar_snapshot(
    *,
    revision: int,
    fragment: str,
    store_spec: str,
    axiom_count: int,
    terms: Sequence[Term],
    explicit: Iterable[EncodedTriple],
    inferred: Iterable[EncodedTriple],
    graphs: Iterable[tuple[int, int, int, int]] = (),
) -> bytes:
    """The complete v2/v3 image as bytes (same keyword surface as v1).

    ``graphs`` is the sparse named-graph column as ``(s, p, o, graph)``
    id rows; a non-empty column switches the image to format v3 (the v2
    layout plus a ``graph_count`` header field and two trailing id
    arrays: SPO row indexes and their graph term ids).
    """
    explicit = list(explicit)
    inferred = list(inferred)
    graphs = sorted(graphs)
    explicit_set = set(explicit)
    rows = sorted(explicit_set.union(inferred))
    term_count = len(terms)
    id_width = 4 if term_count <= 0xFFFFFFFF and len(rows) <= 0xFFFFFFFF else 8
    code = _typecode(id_width)

    out = bytearray(COLUMNAR_MAGIC_V3 if graphs else COLUMNAR_MAGIC)
    write_varint(out, revision)
    write_varint(out, axiom_count)
    write_string(out, fragment)
    write_string(out, store_spec)
    write_varint(out, term_count)
    write_varint(out, len(explicit))
    write_varint(out, len(rows) - len(explicit))
    write_varint(out, id_width)
    if graphs:
        write_varint(out, len(graphs))

    # Term blob + cumulative offset index (encoded in id order, exactly
    # as v1, so restore reproduces dictionary ids bit for bit).
    blob = bytearray()
    offsets = array("Q", [0])
    for term in terms:
        write_term(blob, term)
        offsets.append(len(blob))
    _pad8(out)
    out.extend(offsets.tobytes())
    out.extend(blob)

    # Sorted column sections.
    _pad8(out)
    for column in range(3):
        out.extend(array(code, [row[column] for row in rows]).tobytes())
        _pad8(out)
    rows_pos = sorted(rows, key=lambda row: (row[1], row[2], row[0]))
    for column in (1, 2, 0):
        out.extend(array(code, [row[column] for row in rows_pos]).tobytes())
        _pad8(out)

    # Explicit partition: ascending row indexes into the SPO ordering.
    explicit_rows = array(
        code, (i for i, row in enumerate(rows) if row in explicit_set)
    )
    if len(explicit_rows) != len(explicit_set):
        raise FormatError("explicit partition is not a subset of the image")
    out.extend(explicit_rows.tobytes())

    if graphs:
        # Named-graph column: ascending SPO row indexes + graph term ids.
        row_index = {row: i for i, row in enumerate(rows)}
        try:
            tagged = sorted((row_index[(s, p, o)], g) for s, p, o, g in graphs)
        except KeyError:
            raise FormatError("graph column references a triple outside the image")
        _pad8(out)
        out.extend(array(code, (i for i, _ in tagged)).tobytes())
        _pad8(out)
        out.extend(array(code, (g for _, g in tagged)).tobytes())

    out.extend(_CRC.pack(zlib.crc32(memoryview(out)[len(COLUMNAR_MAGIC):])))
    return bytes(out)


def write_columnar_snapshot(path, *, fsync: bool = True, **state) -> int:
    """Write a v2 snapshot atomically; returns the file size in bytes."""
    path = Path(path)
    blob = encode_columnar_snapshot(**state)
    temp_path = path.with_name(path.name + ".tmp")
    with open(temp_path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(temp_path, path)
    if fsync:
        fsync_dir(path.parent)
    return len(blob)


# --- reader ------------------------------------------------------------------
class ColumnarSnapshot:
    """A mapped v2 snapshot: metadata eagerly, everything else lazily.

    Duck-compatible with :class:`~repro.persist.snapshot.Snapshot`:
    ``revision`` / ``fragment`` / ``store_spec`` / ``axiom_count`` /
    ``terms`` / ``explicit`` / ``inferred`` / ``triple_count`` /
    ``restore``.  The list-shaped attributes are materialized on first
    access; zero-copy consumers use the column accessors instead.
    """

    __slots__ = (
        "revision",
        "fragment",
        "store_spec",
        "axiom_count",
        "term_count",
        "explicit_count",
        "inferred_count",
        "id_width",
        "term_index",
        "term_blob",
        "spo",
        "pos",
        "explicit_rows",
        "graph_rows",
        "graph_ids",
        "_buffer",
        "_terms",
        "_explicit",
        "_inferred",
        "_graphs",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields.get(name))

    @property
    def triple_count(self) -> int:
        return self.explicit_count + self.inferred_count

    # --- lazy v1-compatible views ----------------------------------------
    @property
    def terms(self) -> list[Term]:
        if self._terms is None:
            self._terms = [self.term(i) for i in range(self.term_count)]
        return self._terms

    @property
    def explicit(self) -> list[EncodedTriple]:
        if self._explicit is None:
            spo_s, spo_p, spo_o = self.spo
            self._explicit = [
                (spo_s[i], spo_p[i], spo_o[i]) for i in self.explicit_rows
            ]
        return self._explicit

    @property
    def inferred(self) -> list[EncodedTriple]:
        if self._inferred is None:
            explicit = set(self.explicit_rows)
            spo_s, spo_p, spo_o = self.spo
            self._inferred = [
                (spo_s[i], spo_p[i], spo_o[i])
                for i in range(self.triple_count)
                if i not in explicit
            ]
        return self._inferred

    @property
    def graphs(self) -> list[tuple[int, int, int, int]]:
        """The named-graph column as ``(s, p, o, graph)`` id rows."""
        if self._graphs is None:
            spo_s, spo_p, spo_o = self.spo
            self._graphs = [
                (spo_s[i], spo_p[i], spo_o[i], g)
                for i, g in zip(self.graph_rows or (), self.graph_ids or ())
            ]
        return self._graphs

    def term(self, term_id: int) -> Term:
        """Decode one term by id, straight from the mapped blob."""
        start = self.term_index[term_id]
        term, _ = read_term(self.term_blob[start:self.term_index[term_id + 1]], 0)
        return term

    def restore(self, dictionary: TermDictionary, store) -> set[EncodedTriple]:
        """Load the image into ``dictionary`` + ``store`` (v1 contract).

        Explicit rows land before inferred rows, both in (s, p, o)
        order — the same order the engine's snapshot writer uses — so a
        fresh dictionary + empty store end up bit-identical to a v1
        restore of the same closure.
        """
        mapping = [dictionary.encode(term) for term in self.terms]
        identity = all(new == old for old, new in enumerate(mapping))
        if identity:
            explicit = self.explicit
            inferred = self.inferred
        else:
            explicit = [(mapping[s], mapping[p], mapping[o]) for s, p, o in self.explicit]
            inferred = [(mapping[s], mapping[p], mapping[o]) for s, p, o in self.inferred]
        store.add_all(explicit)
        store.add_all(inferred)
        from .snapshot import _restore_graphs

        _restore_graphs(self.graphs, mapping, store)
        return set(explicit)

    def close(self) -> None:
        """Release the underlying map (a no-op for in-memory images)."""
        buffer = self._buffer
        self._buffer = None
        self.term_index = self.term_blob = None
        self.spo = self.pos = self.explicit_rows = None
        self.graph_rows = self.graph_ids = None
        if isinstance(buffer, mmap.mmap):
            buffer.close()

    def __repr__(self):
        return (
            f"<ColumnarSnapshot rev={self.revision} fragment={self.fragment!r} "
            f"terms={self.term_count} explicit={self.explicit_count} "
            f"inferred={self.inferred_count}>"
        )


def parse_columnar_snapshot(data, source: str = "<bytes>") -> ColumnarSnapshot:
    """Verify and parse a v2 image over any buffer (bytes or mmap).

    The columns returned are zero-copy windows into ``data``; the
    snapshot keeps ``data`` alive for as long as it is open.
    """
    view = memoryview(data)
    # Every window and cast exports a pointer into ``data``; on a failed
    # parse they must all be released before the caller can close an
    # ``mmap`` buffer (the traceback would otherwise pin this frame and
    # its views alive, making the close a BufferError).
    held: list[memoryview] = [view]
    try:
        return _parse_columnar(view, held, data, source)
    except Exception:
        for window in reversed(held):
            window.release()
        raise


def _parse_columnar(view, held, data, source) -> ColumnarSnapshot:
    magic = len(COLUMNAR_MAGIC)
    file_magic = bytes(view[:magic])
    if file_magic not in COLUMNAR_MAGICS:
        raise SnapshotError(f"{source} is not a v2 Slider snapshot (bad magic)")
    has_graphs = file_magic == COLUMNAR_MAGIC_V3
    if len(view) < magic + _CRC.size:
        raise SnapshotError(f"snapshot {source} is truncated")
    (expected_crc,) = _CRC.unpack(view[-_CRC.size:])
    if zlib.crc32(view[magic:-_CRC.size]) != expected_crc:
        raise SnapshotError(f"snapshot {source} failed its checksum (corrupt)")
    try:
        offset = magic
        revision, offset = read_varint(view, offset)
        axiom_count, offset = read_varint(view, offset)
        fragment, offset = read_string(view, offset)
        store_spec, offset = read_string(view, offset)
        term_count, offset = read_varint(view, offset)
        explicit_count, offset = read_varint(view, offset)
        inferred_count, offset = read_varint(view, offset)
        id_width, offset = read_varint(view, offset)
        graph_count = 0
        if has_graphs:
            graph_count, offset = read_varint(view, offset)
    except FormatError as error:
        raise SnapshotError(f"snapshot {source} is malformed: {error}") from None
    if id_width not in (4, 8):
        raise SnapshotError(f"snapshot {source} has invalid id width {id_width}")
    code = _typecode(id_width)
    triple_count = explicit_count + inferred_count

    def section(start: int, size: int) -> tuple[memoryview, int]:
        start = _align8(start)
        end = start + size
        if end > len(view) - _CRC.size:
            raise SnapshotError(f"snapshot {source} is truncated mid-section")
        window = view[start:end]
        held.append(window)
        return window, end

    def cast(window: memoryview, typecode: str) -> memoryview:
        column = window.cast(typecode)
        held.append(column)
        return column

    index_bytes, offset = section(offset, 8 * (term_count + 1))
    term_index = cast(index_bytes, "Q")
    blob_len = term_index[term_count] if term_count else 0
    term_blob, offset = section(offset, blob_len)

    columns: list[memoryview] = []
    for _ in range(6):
        col_bytes, offset = section(offset, id_width * triple_count)
        columns.append(cast(col_bytes, code))
    explicit_bytes, offset = section(offset, id_width * explicit_count)
    graph_rows = graph_ids = None
    if has_graphs:
        graph_row_bytes, offset = section(offset, id_width * graph_count)
        graph_id_bytes, offset = section(offset, id_width * graph_count)
        graph_rows = cast(graph_row_bytes, code)
        graph_ids = cast(graph_id_bytes, code)

    return ColumnarSnapshot(
        revision=revision,
        fragment=fragment,
        store_spec=store_spec,
        axiom_count=axiom_count,
        term_count=term_count,
        explicit_count=explicit_count,
        inferred_count=inferred_count,
        id_width=id_width,
        term_index=term_index,
        term_blob=term_blob,
        spo=tuple(columns[:3]),
        pos=tuple(columns[3:]),
        explicit_rows=explicit_bytes.cast(code),
        graph_rows=graph_rows,
        graph_ids=graph_ids,
        _buffer=data,
    )


def load_columnar_snapshot(path) -> ColumnarSnapshot:
    """Map a v2 snapshot file read-only and parse it in place.

    The file is ``mmap``-ed, so "loading" is O(header) — column bytes
    fault in on first access.  Falls back to a plain read for empty
    files or filesystems that cannot map.
    """
    try:
        with open(path, "rb") as handle:
            try:
                buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                buffer = handle.read()
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    try:
        return parse_columnar_snapshot(buffer, source=str(path))
    except Exception:
        if isinstance(buffer, mmap.mmap):
            buffer.close()
        raise
