"""The persistence manager: one directory, one snapshot, one changelog.

:class:`PersistenceManager` owns the on-disk layout of a durable engine
(``snapshot.slider`` + ``changelog.wal`` inside ``persist_dir``) and the
lifecycle around it:

* :meth:`load` — called once at engine start-up: loads the latest
  snapshot (if any), reads the changelog, truncates any torn tail, and
  hands back the records newer than the snapshot for replay;
* :meth:`journal_commit` — called under the engine's commit lock for
  every committed revision, before ``apply()`` returns;
* :meth:`write_snapshot` — seals the current state atomically and
  truncates the changelog (compaction); triggered explicitly via
  :meth:`Slider.snapshot` or automatically once the journal outgrows
  ``compact_bytes``.

The manager knows nothing about inference — it moves engine state to
bytes and back.  The engine decides *when*; the manager decides *how*.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Sequence

try:  # pragma: no cover - platform availability, not logic
    import fcntl
except ImportError:  # non-POSIX: no advisory locking primitive
    fcntl = None

from ..obs import instruments as _obs
from ..rdf.terms import Term, Triple
from .journal import JournalRecord, JournalWriter, read_journal
from .snapshot import Snapshot, load_snapshot, write_snapshot

__all__ = [
    "PersistenceManager",
    "PersistenceLockError",
    "SNAPSHOT_FILENAME",
    "JOURNAL_FILENAME",
    "LOCK_FILENAME",
    "DEFAULT_COMPACT_BYTES",
]

SNAPSHOT_FILENAME = "snapshot.slider"
JOURNAL_FILENAME = "changelog.wal"
LOCK_FILENAME = ".lock"

#: Journal size beyond which a commit triggers automatic compaction.
DEFAULT_COMPACT_BYTES = 8 * 1024 * 1024


class PersistenceLockError(RuntimeError):
    """Another live process owns this durable state directory."""


class PersistenceManager:
    """Filesystem side of a durable :class:`~repro.reasoner.engine.Slider`."""

    def __init__(
        self,
        directory,
        fsync: bool = True,
        compact_bytes: int | None = DEFAULT_COMPACT_BYTES,
        fragment: str = "",
        snapshot_format: str = "v1",
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.compact_bytes = compact_bytes
        self.fragment = fragment
        if snapshot_format not in ("v1", "v2"):
            raise ValueError(f"unknown snapshot format {snapshot_format!r}")
        #: The format new snapshots are *written* in; either format is
        #: always readable (load dispatches on the file magic).
        self.snapshot_format = snapshot_format
        self.snapshot_path = self.directory / SNAPSHOT_FILENAME
        self.journal_path = self.directory / JOURNAL_FILENAME
        self._writer: JournalWriter | None = None
        self._lock_handle = None
        self._acquire_lock()
        #: The fragment stamped in the changelog header (set by load()).
        self.journal_fragment: str | None = None
        #: Statistics surfaced through ``Slider.recovery`` / the CLI.
        self.torn_bytes_dropped = 0
        self.compactions = 0
        #: The revision the current snapshot seals — the changelog only
        #: covers revisions *after* this, so it is also the resumability
        #: floor of the replication change feed's WAL fallback (a
        #: follower asking for older revisions must re-bootstrap).
        self.last_snapshot_revision = 0

    def _acquire_lock(self) -> None:
        """Claim exclusive ownership of the directory (advisory flock).

        One writer per state directory: a concurrent opener — say, a
        ``slider-reason snapshot`` CLI pointed at a live service's
        directory — would commit duplicate revision ids and truncate
        the changelog underneath the live writer.  The lock dies with
        the process, so a kill -9 never leaves the directory wedged.
        Platforms without :mod:`fcntl` skip the guard (documented).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        handle = open(self.directory / LOCK_FILENAME, "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise PersistenceLockError(
                f"durable state directory {self.directory} is owned by a "
                "live engine (close it first, or point this one elsewhere)"
            ) from None
        handle.truncate(0)
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        self._lock_handle = handle

    # --- recovery ----------------------------------------------------------
    def load(self) -> tuple[Snapshot | None, list[JournalRecord]]:
        """Read durable state; returns (snapshot or None, replay records).

        The changelog's torn tail (if the last process died mid-append)
        is truncated away here, so the subsequently opened writer always
        appends after a verified record.  Records at or below the
        snapshot's revision are skipped — they are already part of the
        snapshot image (the snapshot is written after the journal entry
        of its own revision).
        """
        snapshot = None
        if self.snapshot_path.exists():
            snapshot = load_snapshot(self.snapshot_path)
            self.last_snapshot_revision = snapshot.revision
        records: list[JournalRecord] = []
        if self.journal_path.exists():
            records, durable, self.journal_fragment = read_journal(self.journal_path)
            actual = self.journal_path.stat().st_size
            if durable < actual:
                self.torn_bytes_dropped = actual - durable
                with open(self.journal_path, "r+b") as handle:
                    handle.truncate(durable)
        if snapshot is not None:
            records = [r for r in records if r.revision > snapshot.revision]
        return snapshot, records

    # --- journal -----------------------------------------------------------
    def _journal(self) -> JournalWriter:
        if self._writer is None:
            self._writer = JournalWriter(
                self.journal_path, fsync=self.fsync, fragment=self.fragment
            )
        return self._writer

    def journal_commit(
        self,
        revision: int,
        assertions: Sequence[Triple],
        retractions: Sequence[Triple],
        graph: Term | None = None,
    ) -> int:
        """Durably append one committed revision; returns bytes written.

        ``graph`` is the named graph a graph-scoped delta targeted
        (``None`` — the common case — journals the v1 record shape).
        """
        return self._journal().append(
            JournalRecord(revision, assertions, retractions, graph=graph)
        )

    def should_compact(self) -> bool:
        """Has the changelog outgrown the compaction threshold?"""
        if self.compact_bytes is None:
            return False
        return self._journal().size >= self.compact_bytes

    # --- snapshot ----------------------------------------------------------
    def write_snapshot(self, **state) -> int:
        """Seal ``state`` into the snapshot and truncate the changelog.

        ``state`` is forwarded to :func:`repro.persist.snapshot.write_snapshot`
        (revision, fragment, store_spec, axiom_count, terms, explicit,
        inferred).  Ordering matters for crash safety: the snapshot is
        atomically replaced *first*; only then is the journal reset.  A
        crash between the two steps leaves a snapshot plus a journal of
        already-applied records — harmless, because recovery skips
        records at or below the snapshot revision.
        """
        # Raise the feed floor *before* touching the files: a concurrent
        # feed reader that re-checks the floor after scanning the WAL
        # then can never miss records the truncation just dropped.
        self.last_snapshot_revision = state.get("revision", 0)
        started = time.perf_counter()
        if self.snapshot_format == "v2":
            from .columnar import write_columnar_snapshot

            written = write_columnar_snapshot(
                self.snapshot_path, fsync=self.fsync, **state
            )
        else:
            written = write_snapshot(self.snapshot_path, fsync=self.fsync, **state)
        self._journal().reset()
        self.compactions += 1
        if _obs.REGISTRY.enabled:
            _obs.PERSIST_SNAPSHOT_SECONDS.observe(time.perf_counter() - started)
            _obs.PERSIST_SNAPSHOT_BYTES.inc(written)
            _obs.PERSIST_COMPACTIONS.inc()
        return written

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._lock_handle is not None:
            self._lock_handle.close()  # releases the flock
            self._lock_handle = None

    def __repr__(self):
        return f"<PersistenceManager {self.directory} fsync={self.fsync}>"
