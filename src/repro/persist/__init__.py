"""Durable snapshots + changelog persistence for the Slider engine.

The incremental closure only pays off at service scale if it survives
restarts; this package makes the engine a *restartable* system:

* :mod:`~repro.persist.snapshot` — an atomic, CRC-checked binary image
  of the term dictionary, the explicit/inferred store partitions and
  the revision id;
* :mod:`~repro.persist.journal` — an append-only write-ahead changelog
  of committed deltas, fsynced before ``apply()`` returns, with a
  torn-tail-tolerant reader;
* :mod:`~repro.persist.manager` — the :class:`PersistenceManager`
  wiring both into the recovery / compaction lifecycle;
* :mod:`~repro.persist.format` — the shared byte-level encoding.

Enable it with ``Slider(persist_dir="state/")``; see the README's
*Durability* section for the lifecycle and recovery semantics.
"""

from .format import FormatError
from .journal import (
    JOURNAL_MAGIC,
    JournalError,
    JournalRecord,
    JournalWriter,
    read_journal,
)
from .manager import (
    DEFAULT_COMPACT_BYTES,
    JOURNAL_FILENAME,
    LOCK_FILENAME,
    SNAPSHOT_FILENAME,
    PersistenceLockError,
    PersistenceManager,
)
from .snapshot import (
    SNAPSHOT_MAGIC,
    Snapshot,
    SnapshotError,
    encode_snapshot,
    load_snapshot,
    parse_snapshot,
    write_snapshot,
)

__all__ = [
    "PersistenceManager",
    "PersistenceLockError",
    "Snapshot",
    "SnapshotError",
    "encode_snapshot",
    "parse_snapshot",
    "write_snapshot",
    "load_snapshot",
    "JournalRecord",
    "JournalWriter",
    "JournalError",
    "read_journal",
    "FormatError",
    "SNAPSHOT_FILENAME",
    "JOURNAL_FILENAME",
    "LOCK_FILENAME",
    "SNAPSHOT_MAGIC",
    "JOURNAL_MAGIC",
    "DEFAULT_COMPACT_BYTES",
]
