"""Binary encoding primitives shared by the snapshot and the changelog.

Both durable artifacts are built from the same three layers:

* **varints** — unsigned LEB128, so small ids (the overwhelmingly common
  case for dictionary-encoded triples) cost one byte;
* **terms** — a one-byte kind tag followed by length-prefixed UTF-8
  payloads, covering every concrete :mod:`repro.rdf.terms` shape (IRI,
  blank node, plain / language-tagged / datatyped literal);
* **framed records** — ``u32 length | u32 crc32(payload) | payload``,
  the unit of the write-ahead changelog.  The CRC makes torn or
  bit-rotted tails detectable: a reader stops at the first frame whose
  length runs past the file or whose checksum disagrees, and everything
  before that point is known-good.

Everything here is pure byte manipulation — no engine types beyond the
term classes — so the on-disk format is testable in isolation and the
higher layers (:mod:`repro.persist.snapshot`,
:mod:`repro.persist.journal`) stay small.
"""

from __future__ import annotations

import os
import struct
import zlib

from ..rdf.terms import BNode, IRI, Literal, Term, Triple

__all__ = [
    "FormatError",
    "write_varint",
    "read_varint",
    "write_string",
    "read_string",
    "write_term",
    "read_term",
    "write_triple",
    "read_triple",
    "frame_record",
    "read_frames",
    "fsync_dir",
    "FRAME_HEADER",
]

# Term kind tags (disjoint from the dictionary's KIND_* — these describe
# the serialized shape, which distinguishes the three literal forms).
_TERM_IRI = 0x00
_TERM_BNODE = 0x01
_TERM_LITERAL_PLAIN = 0x02
_TERM_LITERAL_LANG = 0x03
_TERM_LITERAL_TYPED = 0x04

#: Frame header layout: payload length + CRC32 of the payload.
FRAME_HEADER = struct.Struct("<II")


class FormatError(ValueError):
    """The bytes do not parse as the expected structure."""


# --- varints -----------------------------------------------------------------
def write_varint(out: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise FormatError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Parse a varint at ``offset``; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise FormatError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise FormatError("varint too long")


# --- strings -----------------------------------------------------------------
def write_string(out: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string."""
    payload = text.encode("utf-8")
    write_varint(out, len(payload))
    out.extend(payload)


def read_string(data: bytes, offset: int) -> tuple[str, int]:
    """Parse a length-prefixed UTF-8 string; returns (text, next offset).

    ``data`` may be ``bytes`` or a ``memoryview``; only the string's own
    payload is ever materialized (``bytes()`` of a bytes object is a
    no-op, of a memoryview slice a copy of exactly ``length`` bytes).
    """
    length, offset = read_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise FormatError("truncated string")
    try:
        return bytes(data[offset:end]).decode("utf-8"), end
    except UnicodeDecodeError as error:
        raise FormatError(f"invalid UTF-8 in string: {error}") from None


# --- terms -------------------------------------------------------------------
def write_term(out: bytearray, term: Term) -> None:
    """Append one concrete RDF term (kind tag + payload strings)."""
    if isinstance(term, IRI):
        out.append(_TERM_IRI)
        write_string(out, term.value)
    elif isinstance(term, BNode):
        out.append(_TERM_BNODE)
        write_string(out, term.label)
    elif isinstance(term, Literal):
        if term.language is not None:
            out.append(_TERM_LITERAL_LANG)
            write_string(out, term.lexical)
            write_string(out, term.language)
        elif term.datatype is not None:
            out.append(_TERM_LITERAL_TYPED)
            write_string(out, term.lexical)
            write_string(out, term.datatype.value)
        else:
            out.append(_TERM_LITERAL_PLAIN)
            write_string(out, term.lexical)
    else:
        raise FormatError(f"not a serializable RDF term: {term!r}")


def read_term(data: bytes, offset: int) -> tuple[Term, int]:
    """Parse one term; returns (term, next offset)."""
    if offset >= len(data):
        raise FormatError("truncated term")
    kind = data[offset]
    offset += 1
    try:
        if kind == _TERM_IRI:
            value, offset = read_string(data, offset)
            return IRI(value), offset
        if kind == _TERM_BNODE:
            label, offset = read_string(data, offset)
            return BNode(label), offset
        if kind == _TERM_LITERAL_PLAIN:
            lexical, offset = read_string(data, offset)
            return Literal(lexical), offset
        if kind == _TERM_LITERAL_LANG:
            lexical, offset = read_string(data, offset)
            language, offset = read_string(data, offset)
            return Literal(lexical, language=language), offset
        if kind == _TERM_LITERAL_TYPED:
            lexical, offset = read_string(data, offset)
            datatype, offset = read_string(data, offset)
            return Literal(lexical, datatype=IRI(datatype)), offset
    except (TypeError, ValueError) as error:
        # Term constructors validate their input; a CRC-passing payload
        # that still fails construction is a format error all the same.
        raise FormatError(f"invalid term payload: {error}") from None
    raise FormatError(f"unknown term kind tag 0x{kind:02x}")


def write_triple(out: bytearray, triple: Triple) -> None:
    """Append one term-level triple (three terms, no separator)."""
    write_term(out, triple.subject)
    write_term(out, triple.predicate)
    write_term(out, triple.object)


def read_triple(data: bytes, offset: int) -> tuple[Triple, int]:
    """Parse one term-level triple; returns (triple, next offset)."""
    subject, offset = read_term(data, offset)
    predicate, offset = read_term(data, offset)
    obj, offset = read_term(data, offset)
    try:
        return Triple(subject, predicate, obj), offset
    except TypeError as error:
        raise FormatError(f"invalid triple: {error}") from None


# --- framed records ----------------------------------------------------------
def frame_record(payload: bytes) -> bytes:
    """Wrap a payload in the ``length | crc32 | payload`` frame."""
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_frames(
    data: bytes, offset: int = 0
) -> tuple[list[bytes], int]:
    """Parse consecutive frames starting at ``offset``.

    Returns the list of verified payloads and the offset just past the
    last *intact* frame — the durable prefix.  A frame whose header is
    incomplete, whose declared length overruns the data, or whose CRC
    disagrees ends the scan; such a tail is *torn*, not fatal.

    The scan runs over a single ``memoryview`` cursor, so each payload
    is a zero-copy window into ``data`` rather than a per-record slice —
    O(n) over the whole log instead of O(n²) in payload bytes.  The
    record decoders (:func:`read_varint` / :func:`read_string` /
    :func:`read_term`) all accept these views directly.
    """
    payloads: list[bytes] = []
    view = memoryview(data)
    size = len(view)
    while True:
        header_end = offset + FRAME_HEADER.size
        if header_end > size:
            return payloads, offset
        length, crc = FRAME_HEADER.unpack_from(view, offset)
        payload_end = header_end + length
        if payload_end > size:
            return payloads, offset
        payload = view[header_end:payload_end]
        if zlib.crc32(payload) != crc:
            return payloads, offset
        payloads.append(payload)
        offset = payload_end


def fsync_dir(directory) -> None:
    """Flush a directory entry to disk (after create/rename).

    An fsynced *file* is not durable until the directory entry naming it
    is too; without this, a power loss can surface the old name.  Best
    effort: platforms/filesystems that cannot fsync a directory are
    silently skipped (they provide no stronger primitive anyway).
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
