"""The binary snapshot: one durable image of a materialized closure.

A snapshot freezes everything the engine needs to resume without
re-materializing:

* the **term dictionary**, written in id order so a fresh dictionary
  that re-encodes the terms in sequence reproduces every id bit for bit;
* the **explicit partition** (asserted triples, including fragment
  axioms) and the **inferred partition** (everything else in the store),
  both as encoded ``(s, p, o)`` id tuples against the snapshot's own
  term table — backend-independent, so a snapshot taken over the
  hashdict store restores into a sharded one and vice versa;
* the **revision id** the closure corresponds to, the fragment name,
  the store spec it ran under (informational), and the axiom count
  (so ``input_count`` stays correct after recovery).

Layout: ``magic | payload | u32 crc32(payload)``, written to a
temporary file and atomically renamed into place — a crash mid-snapshot
leaves the previous snapshot untouched, and a torn write is caught by
the trailing checksum at load time.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterable, Sequence

from ..dictionary.encoder import EncodedTriple, TermDictionary
from ..rdf.terms import Term
from .format import (
    FormatError,
    fsync_dir,
    read_string,
    read_term,
    read_varint,
    write_string,
    write_term,
    write_varint,
)

__all__ = [
    "Snapshot",
    "SnapshotError",
    "encode_snapshot",
    "parse_snapshot",
    "write_snapshot",
    "load_snapshot",
    "SNAPSHOT_MAGIC",
]

SNAPSHOT_MAGIC = b"SLSNAP01"


class SnapshotError(RuntimeError):
    """The snapshot file is missing structure, corrupt, or truncated."""


class Snapshot:
    """A loaded snapshot: term table + partitions + metadata.

    The encoded triples are expressed in the snapshot's own id space
    (``terms[i]`` is the term with id ``i``).  :meth:`restore` replays
    them into a live dictionary + store; on a *fresh* dictionary the ids
    are reproduced exactly, and on a pre-populated one the triples are
    transparently re-mapped through a translation table.
    """

    __slots__ = (
        "revision",
        "fragment",
        "store_spec",
        "axiom_count",
        "terms",
        "explicit",
        "inferred",
        "graphs",
    )

    def __init__(
        self,
        revision: int,
        fragment: str,
        store_spec: str,
        axiom_count: int,
        terms: list[Term],
        explicit: list[EncodedTriple],
        inferred: list[EncodedTriple],
        graphs: list[tuple[int, int, int, int]] | None = None,
    ):
        self.revision = revision
        self.fragment = fragment
        self.store_spec = store_spec
        self.axiom_count = axiom_count
        self.terms = terms
        self.explicit = explicit
        self.inferred = inferred
        #: Sparse named-graph column: ``(s, p, o, graph)`` id rows for
        #: the triples that live outside the default graph.
        self.graphs = list(graphs) if graphs else []

    @property
    def triple_count(self) -> int:
        return len(self.explicit) + len(self.inferred)

    def restore(self, dictionary: TermDictionary, store) -> set[EncodedTriple]:
        """Load the snapshot into ``dictionary`` + ``store``.

        Returns the restored *explicit* set in the live dictionary's id
        space.  Terms are encoded in snapshot-id order, so a fresh
        dictionary ends up with identical ids and the stored tuples can
        be inserted as-is; a shared (non-empty) dictionary gets an
        old-id → new-id translation instead.
        """
        mapping = [dictionary.encode(term) for term in self.terms]
        identity = all(new == old for old, new in enumerate(mapping))
        if identity:
            explicit = self.explicit
            inferred = self.inferred
        else:
            explicit = [(mapping[s], mapping[p], mapping[o]) for s, p, o in self.explicit]
            inferred = [(mapping[s], mapping[p], mapping[o]) for s, p, o in self.inferred]
        store.add_all(explicit)
        store.add_all(inferred)
        _restore_graphs(self.graphs, mapping, store)
        return set(explicit)

    def __repr__(self):
        return (
            f"<Snapshot rev={self.revision} fragment={self.fragment!r} "
            f"terms={len(self.terms)} explicit={len(self.explicit)} "
            f"inferred={len(self.inferred)}>"
        )


def _restore_graphs(graphs, mapping, store) -> None:
    """Re-tag a restored store's named-graph column (shared by v1/v2).

    ``graphs`` is the snapshot's ``(s, p, o, graph)`` id rows; ids pass
    through the same old-id → new-id ``mapping`` as the partitions.  A
    backend without the quad protocol (no ``set_graphs``) simply keeps
    everything in the default graph — the documented degradation.
    """
    if not graphs:
        return
    set_graphs = getattr(store, "set_graphs", None)
    if set_graphs is None:
        return
    by_graph: dict[int, list[EncodedTriple]] = {}
    for s, p, o, g in graphs:
        by_graph.setdefault(mapping[g], []).append((mapping[s], mapping[p], mapping[o]))
    for graph_id, triples in by_graph.items():
        set_graphs(triples, graph_id)


def _encode_payload(
    revision: int,
    fragment: str,
    store_spec: str,
    axiom_count: int,
    terms: Sequence[Term],
    explicit: Iterable[EncodedTriple],
    inferred: Iterable[EncodedTriple],
    graphs: Iterable[tuple[int, int, int, int]] = (),
) -> bytes:
    out = bytearray()
    write_varint(out, revision)
    write_varint(out, axiom_count)
    write_string(out, fragment)
    write_string(out, store_spec)
    write_varint(out, len(terms))
    for term in terms:
        write_term(out, term)
    for partition in (explicit, inferred):
        partition = list(partition)
        write_varint(out, len(partition))
        for s, p, o in partition:
            write_varint(out, s)
            write_varint(out, p)
            write_varint(out, o)
    graphs = sorted(graphs)
    if graphs:
        # Optional trailing section: a default-graph-only image ends
        # after its partitions, byte-identical to the original format.
        write_varint(out, len(graphs))
        for s, p, o, g in graphs:
            write_varint(out, s)
            write_varint(out, p)
            write_varint(out, o)
            write_varint(out, g)
    return bytes(out)


def encode_snapshot(
    *,
    revision: int,
    fragment: str,
    store_spec: str,
    axiom_count: int,
    terms: Sequence[Term],
    explicit: Iterable[EncodedTriple],
    inferred: Iterable[EncodedTriple],
    graphs: Iterable[tuple[int, int, int, int]] = (),
) -> bytes:
    """The complete snapshot image as bytes (magic + payload + CRC).

    The same blob :func:`write_snapshot` puts on disk, usable anywhere a
    self-verifying state image is needed — notably the replication
    leader's ``GET /snapshot`` bootstrap endpoint, whose clients parse
    it back with :func:`parse_snapshot`.
    """
    payload = _encode_payload(
        revision, fragment, store_spec, axiom_count, terms, explicit, inferred, graphs
    )
    return SNAPSHOT_MAGIC + payload + struct.pack("<I", zlib.crc32(payload))


def write_snapshot(
    path,
    *,
    fsync: bool = True,
    **state,
) -> int:
    """Write a snapshot atomically; returns the file size in bytes.

    The image lands in ``path + ".tmp"`` first (fsynced when ``fsync``),
    then replaces ``path`` with :func:`os.replace` — the all-or-nothing
    step — so a reader never observes a half-written snapshot.
    """
    path = Path(path)
    blob = encode_snapshot(**state)
    temp_path = path.with_name(path.name + ".tmp")
    with open(temp_path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(temp_path, path)
    if fsync:
        # The rename itself must survive power loss *before* the caller
        # truncates the changelog, or recovery would see the old
        # snapshot with an already-emptied journal.
        fsync_dir(path.parent)
    return len(blob)


def load_snapshot(path):
    """Read and verify a snapshot file of either format.

    Returns a :class:`Snapshot` for v1 images and a duck-compatible
    :class:`~repro.persist.columnar.ColumnarSnapshot` for v2 images —
    the latter is mmap-ed, so its load cost is O(header) and the column
    bytes fault in on demand.  Raises :class:`SnapshotError` either way.
    """
    from .columnar import COLUMNAR_MAGIC, COLUMNAR_MAGICS, load_columnar_snapshot

    try:
        with open(path, "rb") as handle:
            head = handle.read(len(COLUMNAR_MAGIC))
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    if head in COLUMNAR_MAGICS:
        return load_columnar_snapshot(path)
    try:
        data = Path(path).read_bytes()
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    return parse_snapshot(data, source=str(path))


def parse_snapshot(data: bytes, source: str = "<bytes>"):
    """Verify and parse one snapshot image (file bytes or wire bytes).

    Dispatches on the magic: v1 images parse into :class:`Snapshot`,
    v2 images into a :class:`~repro.persist.columnar.ColumnarSnapshot`
    over the same buffer (zero-copy columns).
    """
    path = source
    from .columnar import COLUMNAR_MAGIC, COLUMNAR_MAGICS, parse_columnar_snapshot

    if bytes(data[:len(COLUMNAR_MAGIC)]) in COLUMNAR_MAGICS:
        return parse_columnar_snapshot(data, source=source)
    if not data.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError(f"{path} is not a Slider snapshot (bad magic)")
    if len(data) < len(SNAPSHOT_MAGIC) + 4:
        raise SnapshotError(f"snapshot {path} is truncated")
    payload = memoryview(data)[len(SNAPSHOT_MAGIC):-4]
    (expected_crc,) = struct.unpack("<I", data[-4:])
    if zlib.crc32(payload) != expected_crc:
        raise SnapshotError(f"snapshot {path} failed its checksum (corrupt)")
    try:
        offset = 0
        revision, offset = read_varint(payload, offset)
        axiom_count, offset = read_varint(payload, offset)
        fragment, offset = read_string(payload, offset)
        store_spec, offset = read_string(payload, offset)
        term_count, offset = read_varint(payload, offset)
        terms: list[Term] = []
        for _ in range(term_count):
            term, offset = read_term(payload, offset)
            terms.append(term)
        partitions: list[list[EncodedTriple]] = []
        for _ in range(2):
            count, offset = read_varint(payload, offset)
            triples: list[EncodedTriple] = []
            for _ in range(count):
                s, offset = read_varint(payload, offset)
                p, offset = read_varint(payload, offset)
                o, offset = read_varint(payload, offset)
                triples.append((s, p, o))
            partitions.append(triples)
        graphs: list[tuple[int, int, int, int]] = []
        if offset < len(payload):
            # The optional named-graph column (absent in older images).
            count, offset = read_varint(payload, offset)
            for _ in range(count):
                s, offset = read_varint(payload, offset)
                p, offset = read_varint(payload, offset)
                o, offset = read_varint(payload, offset)
                g, offset = read_varint(payload, offset)
                graphs.append((s, p, o, g))
        if offset != len(payload):
            raise FormatError(f"{len(payload) - offset} trailing bytes")
    except FormatError as error:
        raise SnapshotError(f"snapshot {path} is malformed: {error}") from None
    explicit, inferred = partitions
    for rows in (*partitions, graphs):
        for encoded in rows:
            if any(term_id >= term_count for term_id in encoded):
                raise SnapshotError(
                    f"snapshot {path} references a term id outside its dictionary"
                )
    return Snapshot(
        revision=revision,
        fragment=fragment,
        store_spec=store_spec,
        axiom_count=axiom_count,
        terms=terms,
        explicit=explicit,
        inferred=inferred,
        graphs=graphs,
    )
