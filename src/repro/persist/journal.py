"""The append-only changelog (write-ahead log) of committed deltas.

Every revision the engine commits is journaled as one CRC-framed record
*before* :meth:`~repro.reasoner.engine.Slider.apply` returns, so a
process death after the commit point loses nothing: recovery replays
the journal tail (everything newer than the last snapshot) through the
normal ``apply()`` pipeline and arrives at the identical closure, with
identical revision ids.

Records carry the *requested* explicit mutations at term level — the
net-normalized assertions and retractions of the revision's delta — not
the inferred consequences; inference is deterministic, so replay
recomputes it.  Term-level (rather than dictionary-id) encoding keeps
each record self-contained: the journal never depends on dictionary
state that only existed in the dead process.

A graph-scoped commit (``Delta(graph=...)``) journals its graph label
as an optional trailing term on the record — format v2
(``SLWAL002``).  The extension is self-describing at the record level:
a record either ends after its retractions (default graph, the v1
shape) or carries exactly one IRI/BNode graph term, so v1 journals
replay unchanged under the v2 reader and a v2 journal needs no
migration pass — recovery simply re-applies each record's graph scope.

Durability contract:

* ``fsync=True`` (the default) fsyncs after every record — commit
  means *on disk*;
* a record torn by a crash mid-write fails its length or CRC check;
  :func:`read_journal` returns the records before it plus the byte
  length of the intact prefix, and recovery truncates the file there —
  the torn tail is dropped, never "repaired" into corruption.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Sequence

from ..obs import instruments as _obs
from ..rdf.terms import BNode, IRI, Term, Triple
from .format import (
    FRAME_HEADER,
    FormatError,
    frame_record,
    fsync_dir,
    read_frames,
    read_string,
    read_term,
    read_triple,
    read_varint,
    write_string,
    write_term,
    write_triple,
    write_varint,
)

__all__ = [
    "JournalRecord",
    "JournalError",
    "JournalWriter",
    "read_journal",
    "JOURNAL_MAGIC",
    "JOURNAL_MAGICS",
]

#: The magic fresh journals are written under (format v2: records may
#: carry a trailing named-graph term).
JOURNAL_MAGIC = b"SLWAL002"
#: Every magic the reader accepts; record decoding is identical for
#: both — the graph extension is self-describing per record.
JOURNAL_MAGICS = (JOURNAL_MAGIC, b"SLWAL001")


def _encode_header(fragment: str) -> bytes:
    """File header: magic + the fragment the changelog was built under."""
    out = bytearray(JOURNAL_MAGIC)
    write_string(out, fragment)
    return bytes(out)


def _decode_header(data: bytes) -> tuple[str, int] | None:
    """Parse the header; ``None`` when it is torn (recoverable as empty).

    Raises :class:`JournalError` when the head is simply not a Slider
    changelog — damage that truncation cannot explain.
    """
    if len(data) < len(JOURNAL_MAGIC):
        if any(magic.startswith(data) for magic in JOURNAL_MAGICS):
            return None  # torn mid-magic
        raise JournalError("not a Slider changelog (bad magic)")
    if not any(data.startswith(magic) for magic in JOURNAL_MAGICS):
        raise JournalError("not a Slider changelog (bad magic)")
    try:
        fragment, offset = read_string(data, len(JOURNAL_MAGIC))
    except FormatError:
        return None  # torn mid-header
    return fragment, offset


class JournalError(RuntimeError):
    """The journal file head is not a Slider changelog."""


class JournalRecord:
    """One committed revision: its id, requested term-level delta, and —
    for graph-scoped commits — the named graph the delta targeted."""

    __slots__ = ("revision", "assertions", "retractions", "graph")

    def __init__(
        self,
        revision: int,
        assertions: Sequence[Triple] = (),
        retractions: Sequence[Triple] = (),
        graph: Term | None = None,
    ):
        if graph is not None and not isinstance(graph, (IRI, BNode)):
            raise FormatError(f"graph label must be an IRI or BNode, got {graph!r}")
        self.revision = revision
        self.assertions = tuple(assertions)
        self.retractions = tuple(retractions)
        self.graph = graph

    def encode(self) -> bytes:
        """Serialize to a framed, CRC-protected record.

        A default-graph record ends after its retractions — the exact v1
        byte shape — so only graph-scoped commits pay for (and signal)
        the extension.
        """
        out = bytearray()
        write_varint(out, self.revision)
        write_varint(out, len(self.assertions))
        for triple in self.assertions:
            write_triple(out, triple)
        write_varint(out, len(self.retractions))
        for triple in self.retractions:
            write_triple(out, triple)
        if self.graph is not None:
            write_term(out, self.graph)
        return frame_record(bytes(out))

    @classmethod
    def decode(cls, payload: bytes) -> "JournalRecord":
        """Parse one verified frame payload back into a record."""
        offset = 0
        revision, offset = read_varint(payload, offset)
        groups: list[list[Triple]] = []
        for _ in range(2):
            count, offset = read_varint(payload, offset)
            triples: list[Triple] = []
            for _ in range(count):
                triple, offset = read_triple(payload, offset)
                triples.append(triple)
            groups.append(triples)
        graph: Term | None = None
        if offset != len(payload):
            graph, offset = read_term(payload, offset)
            if not isinstance(graph, (IRI, BNode)):
                raise FormatError(f"graph label must be an IRI or BNode, got {graph!r}")
        if offset != len(payload):
            raise FormatError(f"{len(payload) - offset} trailing bytes in record")
        return cls(revision, groups[0], groups[1], graph=graph)

    def __repr__(self):
        scope = f" graph={self.graph.n3()}" if self.graph is not None else ""
        return (
            f"<JournalRecord rev={self.revision} "
            f"+{len(self.assertions)} -{len(self.retractions)}{scope}>"
        )


class JournalWriter:
    """Appends framed records to the changelog file, fsyncing on commit.

    The writer owns the file handle for its lifetime; :meth:`append` is
    called under the engine's commit lock, so no internal locking is
    needed.  :meth:`reset` starts a fresh log epoch after a snapshot
    (truncate back to the file header).

    A fresh journal's header stamps the ``fragment`` it is built under;
    recovery refuses to replay records into an engine running different
    rules (the closure would silently diverge otherwise).
    """

    def __init__(self, path, fsync: bool = True, fragment: str = ""):
        self.path = Path(path)
        self.fsync = fsync
        existing_size = self.path.stat().st_size if self.path.exists() else 0
        if existing_size:
            with open(self.path, "rb") as head:
                header = _decode_header(head.read(4096))
            if header is None:
                raise JournalError(
                    f"{path} has a torn header (recover first to truncate it)"
                )
            self._header_end = header[1]
        self._handle = open(self.path, "ab")
        if not existing_size:
            blob = _encode_header(fragment)
            self._header_end = len(blob)
            self._handle.write(blob)
            self._flush()
            if self.fsync:
                fsync_dir(self.path.parent)  # the *creation* must be durable too

    def append(self, record: JournalRecord) -> int:
        """Durably append one record; returns its size in bytes."""
        started = time.perf_counter()
        blob = record.encode()
        self._handle.write(blob)
        self._flush()
        if _obs.REGISTRY.enabled:
            _obs.PERSIST_WAL_APPEND_SECONDS.observe(time.perf_counter() - started)
            _obs.PERSIST_WAL_BYTES.inc(len(blob))
        return len(blob)

    def _flush(self) -> None:
        self._handle.flush()
        if self.fsync:
            started = time.perf_counter()
            os.fsync(self._handle.fileno())
            _obs.PERSIST_FSYNC_SECONDS.observe(time.perf_counter() - started)

    def reset(self) -> None:
        """Truncate to an empty journal (post-snapshot compaction)."""
        self._handle.truncate(self._header_end)
        self._handle.seek(0, os.SEEK_END)
        self._flush()

    @property
    def size(self) -> int:
        """Current journal size in bytes (file header included)."""
        return self._handle.tell()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self):
        return f"<JournalWriter {self.path} fsync={self.fsync}>"


def read_journal(path) -> tuple[list[JournalRecord], int, str | None]:
    """Read every intact record; returns ``(records, durable_bytes, fragment)``.

    ``durable_bytes`` is the length of the verified prefix (header +
    whole frames) and ``fragment`` is the rule fragment stamped into the
    header (``None`` when the header itself is torn).  A torn or
    corrupt tail simply ends the scan — the caller truncates the file
    to ``durable_bytes`` before appending again.  A file whose *head*
    is not a journal at all raises :class:`JournalError` (that is
    damage truncation cannot explain).
    """
    data = Path(path).read_bytes()
    if not data:
        return [], 0, None
    try:
        header = _decode_header(data)
    except JournalError as error:
        raise JournalError(f"{path}: {error}") from None
    if header is None:
        return [], 0, None  # torn mid-header: an empty, recoverable journal
    fragment, header_end = header
    payloads, durable = read_frames(data, header_end)
    records: list[JournalRecord] = []
    valid = header_end
    for payload in payloads:
        try:
            records.append(JournalRecord.decode(payload))
        except FormatError:
            # A CRC-passing but unparseable record: stop at the last
            # good one; everything after it is dropped as torn.
            return records, valid, fragment
        valid += FRAME_HEADER.size + len(payload)
    return records, durable, fragment
