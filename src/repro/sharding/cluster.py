"""The sharded multi-leader cluster: N engines, one logical reasoner.

:class:`ShardedReasoner` partitions the triple space across ``shards``
in-process :class:`~repro.reasoner.engine.Slider` leader engines — each
with its own dictionary, store, and (when durable) its own WAL/snapshot
directory — behind the same duck-typed surface the single-node engine
presents, so :class:`~repro.server.service.ReasoningService`, the
replication :class:`~repro.replication.feed.ChangeFeed`, subscriptions,
and the CLI all compose with it unchanged.

How a commit works
------------------

1. **Route.**  Each incoming delta is split by the
   :mod:`~repro.sharding.router`: schema triples (the four RDFS join
   predicates) broadcast to every shard, instance triples go to their
   owner; user retractions broadcast (a shard that never held the
   triple treats it as the ghost retraction it already supports).
2. **Commit per shard, concurrently.**  Each shard applies its
   sub-delta stream in order through its own ``apply()`` pipeline —
   quiesce, local fixpoint, WAL append + fsync.  This is the
   multi-leader pipeline: per-shard commit latencies (fsync stalls)
   overlap instead of serializing through one log.
3. **Merge deterministically.**  Shard reports are folded in shard
   index order (the stable tie-break) into cluster state: a per-triple
   holder bitmask, a cluster-wide dictionary + store (what readers
   see), and a netting change set.
4. **Forward to fixpoint.**  Derived triples whose routing key lands on
   a shard that does not hold them are forwarded as follow-on deltas
   (broadcast for derived schema, owner-directed for instance triples);
   a shard's net-removed triples that are not user-asserted broadcast
   as retractions to the shards still holding them, so remotely
   supported copies are DRed-checked and either re-derived or dropped.
   Rounds repeat until no forwards remain — the global fixpoint.
5. **One global revision.**  The vector of per-shard revisions advances
   by however many sub-commits each shard performed; the cluster
   commits exactly one monotonic global revision whose
   :class:`~repro.reasoner.delta.InferenceReport` is the exact global
   store diff, classified explicit/inferred against the *user's* net
   assertions.  Commit listeners (the change feed) receive the net
   user-level delta — a follower replaying it through a single-node
   engine reaches the identical closure at the identical revision,
   which is exactly the equivalence the differential harness enforces.

Determinism: with the default ``workers=0`` shard engines, routing,
stream order, merge order, and forward rounds are all deterministic, so
reports, subscription events, read views — and the bytes of a snapshot
— are reproducible run to run.

Supported fragments are ρdf and RDFS (``rhodf``, ``rdfs``): every join
rule in both joins through the broadcast schema plane, which is what
makes per-shard closure + forwarding complete.  ``rdfs-full`` (per-shard
axiomatic preloads would multiply into the merge) and ``owl-horst``
(stateful transitivity registry outside the store) are rejected at
construction.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..dictionary.encoder import EncodedTriple, TermDictionary
from ..obs import TRACER, instruments as _obs
from ..persist.snapshot import encode_snapshot
from ..rdf.terms import Triple
from ..reasoner.delta import Delta, InferenceReport
from ..reasoner.engine import Slider
from ..reasoner.subscription import Subscription
from ..store.backends import DEFAULT_BACKEND, create_store
from ..store.graph import Graph
from .router import BROADCAST, Router, create_router

__all__ = [
    "ShardedReasoner",
    "ClusterRecoveryInfo",
    "ClusterError",
    "SUPPORTED_FRAGMENTS",
    "CLUSTER_META_FILENAME",
]

#: Fragments whose rule shape (instance patterns joined through schema
#: predicates only) makes sharded closure equivalent to single-node.
SUPPORTED_FRAGMENTS = frozenset(("rhodf", "rdfs"))

CLUSTER_META_FILENAME = "cluster.json"

#: Safety valve for the forward fixpoint; the supported fragments
#: converge in a handful of rounds (bounded by rule chain depth), so
#: hitting this indicates a routing/merge bug, not a big dataset.
MAX_FORWARD_ROUNDS = 100


class ClusterError(RuntimeError):
    """Invalid cluster configuration or a broken on-disk layout."""


class ClusterRecoveryInfo:
    """What reassembling the cluster from per-shard state found."""

    __slots__ = (
        "shards",
        "revision",
        "revision_vector",
        "saved_revision_vector",
        "torn",
        "per_shard",
    )

    def __init__(
        self,
        shards: int,
        revision: int,
        revision_vector: list[int],
        saved_revision_vector: list[int] | None,
        torn: bool,
        per_shard: list[dict | None],
    ):
        self.shards = shards
        self.revision = revision
        self.revision_vector = revision_vector
        self.saved_revision_vector = saved_revision_vector
        #: True when the shard WALs are ahead of (or missing from) the
        #: last recorded global commit — a crash between the shard
        #: commits and the cluster manifest write.  The reassembled
        #: state is the shards' durable truth; the next global commit
        #: re-records the vector.
        self.torn = torn
        self.per_shard = per_shard

    @property
    def recovered_revision(self) -> int:
        """Alias of :attr:`revision` (single-node ``RecoveryInfo`` parity)."""
        return self.revision

    def as_dict(self) -> dict:
        """JSON-ready summary for ``/stats``'s recovery block."""
        return {
            "shards": self.shards,
            "revision": self.revision,
            "revision_vector": list(self.revision_vector),
            "saved_revision_vector": (
                list(self.saved_revision_vector)
                if self.saved_revision_vector is not None
                else None
            ),
            "torn": self.torn,
            "per_shard": self.per_shard,
        }

    def __repr__(self):
        return (
            f"<ClusterRecoveryInfo revision={self.revision} "
            f"vector={self.revision_vector} torn={self.torn}>"
        )


class ShardedReasoner:
    """N partitioned leader engines behind one reasoner surface.

    Accepts the engine options that make sense cluster-wide and passes
    them through to every shard.  ``store`` must be a backend *spec*
    (each shard and the cluster-level read store need their own
    instance); columnar image specs are read-only and rejected.
    """

    def __init__(
        self,
        fragment: str = "rhodf",
        shards: int = 2,
        router: str | Router = "subject",
        store: str | None = None,
        workers: int = 0,
        buffer_size: int = 50,
        timeout: float | None = None,
        persist_dir=None,
        persist_fsync: bool = True,
        snapshot_format: str = "v1",
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if fragment not in SUPPORTED_FRAGMENTS:
            supported = ", ".join(sorted(SUPPORTED_FRAGMENTS))
            raise ClusterError(
                f"fragment {fragment!r} cannot be sharded (supported: {supported}); "
                "rdfs-full preloads per-engine axioms and owl-horst keeps "
                "transitivity state outside the store, both of which break "
                "the cross-shard closure equivalence"
            )
        if store is not None and not isinstance(store, str):
            raise ClusterError(
                "sharded clusters take a store *spec* string (each shard "
                f"builds its own instance), got {type(store).__name__}"
            )
        spec = store or DEFAULT_BACKEND
        if spec.startswith("columnar"):
            raise ClusterError("columnar image stores are read-only; shards need writable backends")

        self.shards = shards
        self.router = create_router(router, shards)
        self._spec = spec
        self._workers = workers
        self._snapshot_format = snapshot_format
        self._persist_fsync = persist_fsync
        self._root: Path | None = Path(persist_dir) if persist_dir is not None else None

        self.dictionary = TermDictionary()
        self.store = create_store(spec)
        #: cluster-encoded triple -> bitmask of shards holding it.
        self._holders: dict[EncodedTriple, int] = {}
        #: cluster-encoded triples currently asserted by the user.
        self._explicit: set[EncodedTriple] = set()
        self._revision = 0
        self._lock = threading.RLock()
        self._closed = False
        self._staged: list[Triple] = []
        self._subscriptions: list[Subscription] = []
        self._commit_listeners: list[Callable] = []
        self._forwards = {
            "assertions": 0,
            "retractions": 0,
            "broadcasts": 0,
            "rounds": 0,
        }
        self.recovery: ClusterRecoveryInfo | None = None

        meta: dict | None = None
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)
            # Read + validate the manifest *before* building shard
            # engines: a topology mismatch must be rejected without
            # taking (or mutating) any shard's journal lock.
            meta = self._read_manifest(fragment)
        engine_options = dict(
            fragment=fragment,
            workers=workers,
            buffer_size=buffer_size,
            timeout=timeout,
            store=spec,
        )
        self.engines: list[Slider] = []
        try:
            for index in range(shards):
                options = dict(engine_options)
                if self._root is not None:
                    options.update(
                        persist_dir=self._root / f"shard-{index:02d}",
                        persist_fsync=persist_fsync,
                        snapshot_format=snapshot_format,
                    )
                self.engines.append(Slider(**options))
        except BaseException:
            for engine in self.engines:
                engine.close()
            raise
        self._pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="slider-shard"
        )
        if self._root is not None:
            self._recover(meta)

    # --- recovery -----------------------------------------------------------
    def _read_manifest(self, fragment: str) -> dict | None:
        """Load + topology-check ``cluster.json`` (``None`` when absent)."""
        meta_path = self._root / CLUSTER_META_FILENAME
        if not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text("utf-8"))
        except (OSError, ValueError) as error:
            raise ClusterError(f"unreadable cluster manifest {meta_path}: {error}")
        self._validate_meta(meta, meta_path, fragment)
        return meta

    def _recover(self, meta: dict | None) -> None:
        """Reassemble global state from the per-shard durable layouts."""
        actual_vector = [engine.revision for engine in self.engines]
        if meta is None and not any(actual_vector):
            return  # fresh directory, nothing to reassemble

        # Rebuild holders + the cluster dictionary/store by scanning the
        # shard stores in index order (shard-local id order within each:
        # deterministic, because shard recovery itself is).
        for index, engine in enumerate(self.engines):
            bit = 1 << index
            decode = engine.dictionary.decode_triple
            encode = self.dictionary.encode_triple
            for local in sorted(engine.store):
                encoded = encode(decode(local))
                mask = self._holders.get(encoded, 0)
                if mask == 0:
                    self.store.add(encoded)
                self._holders[encoded] = mask | bit

        saved_vector = None
        torn = False
        if meta is not None:
            self._revision = int(meta["revision"])
            saved_vector = [int(r) for r in meta["revision_vector"]]
            torn = saved_vector != actual_vector
            from ..server.wire import parse_statements

            encode = self.dictionary.encode_triple
            self._explicit = {encode(t) for t in parse_statements(meta["explicit"])}
        else:
            # Shards carry state but the manifest never landed: a crash
            # inside the very first global commit.  The shards' durable
            # union is the truth; approximate the user-asserted registry
            # by per-shard explicitness.
            torn = True
            self._revision = max(actual_vector)
            encode = self.dictionary.encode_triple
            for engine in self.engines:
                decode = engine.dictionary.decode_triple
                for local in sorted(engine.input_manager.explicit):
                    self._explicit.add(encode(decode(local)))
            self._explicit &= set(self._holders)
        self.recovery = ClusterRecoveryInfo(
            shards=self.shards,
            revision=self._revision,
            revision_vector=actual_vector,
            saved_revision_vector=saved_vector,
            torn=torn,
            per_shard=[
                engine.recovery.as_dict() if engine.recovery is not None else None
                for engine in self.engines
            ],
        )

    def _validate_meta(self, meta: dict, path: Path, fragment: str) -> None:
        expect = {
            "shards": self.shards,
            "router": self.router.name,
            "fragment": fragment,
        }
        for key, wanted in expect.items():
            found = meta.get(key)
            if found != wanted:
                raise ClusterError(
                    f"cluster manifest {path} was written with {key}={found!r}, "
                    f"this cluster is configured with {key}={wanted!r} — "
                    "repartitioning on disk is not supported; start a fresh "
                    "directory and reload"
                )

    def _write_meta(self) -> None:
        if self._root is None:
            return
        decode = self.dictionary.decode_triple
        payload = {
            "format": 1,
            "shards": self.shards,
            "router": self.router.name,
            "fragment": self.fragment.name,
            "store": self._spec,
            "revision": self._revision,
            "revision_vector": [engine.revision for engine in self.engines],
            "explicit": [decode(t).n3() for t in sorted(self._explicit)],
        }
        path = self._root / CLUSTER_META_FILENAME
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            if self._persist_fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)

    # --- the commit pipeline ------------------------------------------------
    def apply(self, delta: Delta) -> InferenceReport:
        """Commit one delta as one global revision (see module docs)."""
        return self.apply_many([delta])

    def apply_many(self, deltas: Sequence[Delta]) -> InferenceReport:
        """Commit a batch of deltas as **one** global revision.

        The batch semantics are the write coalescer's: last-writer-wins
        netting in arrival order decides the user-level outcome, while
        each shard journals its sub-delta stream at full granularity —
        this is the entry point the partitioned coalescer drains into,
        and the pipeline whose per-shard WAL appends overlap.
        """
        self._check_open()
        for delta in deltas:
            if not isinstance(delta, Delta):
                raise TypeError(f"apply_many takes Deltas, got {type(delta).__name__}")
        with self._lock:
            started = time.perf_counter()
            if self._staged:
                deltas = [Delta(assertions=self._staged), *deltas]
                self._staged = []

            # User-level outcome: last-writer-wins netting in arrival
            # order (identical to WriteCoalescer._commit_batch).
            net_assert: dict[Triple, None] = {}
            net_retract: dict[Triple, None] = {}
            for delta in deltas:
                for triple in delta.retractions:
                    net_assert.pop(triple, None)
                    net_retract[triple] = None
                for triple in delta.assertions:
                    net_retract.pop(triple, None)
                    net_assert[triple] = None
            encode = self.dictionary.encode_triple
            asserted_ids = {encode(t) for t in net_assert}
            for triple in net_retract:
                self._explicit.discard(encode(triple))
            self._explicit.update(asserted_ids)

            # Split every delta into its per-shard sub-delta stream.
            streams: list[list[Delta]] = [[] for _ in range(self.shards)]
            route = self.router.route
            for delta in deltas:
                assertions: list[list[Triple]] = [[] for _ in range(self.shards)]
                for triple in delta.assertions:
                    owner = route(triple)
                    if owner == BROADCAST:
                        for dest in range(self.shards):
                            assertions[dest].append(triple)
                    else:
                        assertions[owner].append(triple)
                for shard in range(self.shards):
                    sub = Delta(assertions[shard], delta.retractions)
                    if sub:
                        streams[shard].append(sub)

            # Accumulators for the global report (netting across rounds).
            g_added: dict[EncodedTriple, None] = {}
            g_removed: dict[EncodedTriple, None] = {}
            timings: dict[str, float] = {}
            totals = {"dred_deleted": 0, "dred_rederived": 0}

            reports = self._run_streams(streams)
            rounds = 0
            while True:
                forwards = self._merge(reports, g_added, g_removed, timings, totals)
                if not any(forwards):
                    break
                rounds += 1
                if rounds > MAX_FORWARD_ROUNDS:
                    raise ClusterError(
                        f"forward fixpoint did not converge in {MAX_FORWARD_ROUNDS} "
                        "rounds — routing/merge invariant broken"
                    )
                self._forwards["rounds"] += 1
                reports = self._run_streams([[d] if d else [] for d in forwards])

            self._revision += 1
            explicit = tuple(t for t in g_added if t in asserted_ids)
            inferred = tuple(t for t in g_added if t not in asserted_ids)
            report = InferenceReport(
                revision=self._revision,
                seconds=time.perf_counter() - started,
                timings=timings,
                dictionary=self.dictionary,
                explicit_encoded=explicit,
                inferred_encoded=inferred,
                removed_encoded=tuple(g_removed),
                dred_deleted=totals["dred_deleted"],
                dred_rederived=totals["dred_rederived"],
            )
            if _obs.REGISTRY.enabled:
                _obs.SHARDING_COMMITS.inc()
                _obs.SHARDING_FIXPOINT_ROUNDS.observe(rounds)
                vector = [engine.revision for engine in self.engines]
                _obs.SHARDING_REVISION_SKEW.set(max(vector) - min(vector))
            self._write_meta()
            self._fire_commit(tuple(net_assert), tuple(net_retract))
            self._notify_subscribers(report)
            return report

    def _run_streams(self, streams: list[list[Delta]]) -> list[list[InferenceReport]]:
        """Apply per-shard delta streams concurrently; barrier on all.

        One future per shard with work; a shard's stream runs in order
        on one thread, so per-shard commit order (and its WAL) is the
        arrival order.  The single-busy-shard case runs inline — no
        thread hop for the common single-partition delta.
        """
        busy = [shard for shard, stream in enumerate(streams) if stream]
        if not busy:
            return [[] for _ in streams]

        # Capture the commit span context on *this* thread: the shard
        # futures run on pool threads, where the thread-local parent is
        # invisible, and every sub-commit span must carry the commit's
        # trace ids.
        parent_ctx = TRACER.current()

        def run(shard: int) -> list[InferenceReport]:
            engine = self.engines[shard]
            with TRACER.span(
                "shard.commit",
                parent=parent_ctx,
                shard=shard,
                sub_deltas=len(streams[shard]),
            ):
                return [engine.apply(sub) for sub in streams[shard]]

        results: list[list[InferenceReport]] = [[] for _ in streams]
        if len(busy) == 1:
            results[busy[0]] = run(busy[0])
            return results
        futures = {shard: self._pool.submit(run, shard) for shard in busy}
        for shard, future in futures.items():
            results[shard] = future.result()
        return results

    def _merge(
        self,
        reports: list[list[InferenceReport]],
        g_added: dict[EncodedTriple, None],
        g_removed: dict[EncodedTriple, None],
        timings: dict[str, float],
        totals: dict[str, int],
    ) -> list[Delta | None]:
        """Fold one round of shard reports into cluster state.

        Deterministic: shards in index order, each shard's reports in
        stream order, triples in report order.  Returns the next
        round's per-shard forward deltas (``None`` where idle).
        """
        fwd_assert: list[dict[Triple, None]] = [{} for _ in range(self.shards)]
        fwd_retract: list[dict[Triple, None]] = [{} for _ in range(self.shards)]
        encode = self.dictionary.encode_triple
        route = self.router.route
        holders = self._holders

        for shard, shard_reports in enumerate(reports):
            bit = 1 << shard
            decode = self.engines[shard].dictionary.decode_triple
            for report in shard_reports:
                for rule, seconds in report.timings.items():
                    timings[rule] = timings.get(rule, 0.0) + seconds
                totals["dred_deleted"] += report.dred_deleted
                totals["dred_rederived"] += report.dred_rederived

                for local in report.added_encoded:
                    triple = decode(local)
                    encoded = encode(triple)
                    mask = holders.get(encoded, 0)
                    if mask & bit:
                        continue
                    holders[encoded] = mask | bit
                    if mask == 0:
                        self.store.add(encoded)
                        if encoded in g_removed:
                            del g_removed[encoded]
                        else:
                            g_added[encoded] = None
                    owner = route(triple)
                    if owner == BROADCAST:
                        for dest in range(self.shards):
                            if not (holders[encoded] >> dest) & 1:
                                fwd_assert[dest][triple] = None
                    elif owner != shard and not (holders[encoded] >> owner) & 1:
                        fwd_assert[owner][triple] = None

                for local in report.removed_encoded:
                    triple = decode(local)
                    encoded = encode(triple)
                    mask = holders.get(encoded, 0)
                    if not mask & bit:
                        continue
                    mask &= ~bit
                    if mask:
                        holders[encoded] = mask
                    else:
                        del holders[encoded]
                        self.store.remove(encoded)
                        if encoded in g_added:
                            del g_added[encoded]
                        else:
                            g_removed[encoded] = None
                    if encoded not in self._explicit:
                        # The deriving shard lost this triple's support;
                        # every shard still holding a copy must DRed-check
                        # its own (and either re-derive or drop it).
                        for dest in range(self.shards):
                            if (mask >> dest) & 1:
                                fwd_retract[dest][triple] = None

        # A forward computed early in the merge can be satisfied — or its
        # source triple removed outright — by a later report in the same
        # round; filter against final holders.  An assertion forwards only
        # while the triple is still held *somewhere*: once every holder
        # dropped it, replaying the stale forward would resurrect a triple
        # the closure already retracted (and plant it as shard-explicit,
        # beyond DRed's reach).
        out: list[Delta | None] = []
        for dest in range(self.shards):
            assertions = []
            for t in fwd_assert[dest]:
                mask = holders.get(encode(t), 0)
                if mask and not (mask >> dest) & 1:
                    assertions.append(t)
            retractions = [
                t
                for t in fwd_retract[dest]
                if (holders.get(encode(t), 0) >> dest) & 1
            ]
            delta = Delta(assertions, retractions) if (assertions or retractions) else None
            if delta is not None and not delta:
                delta = None  # assert/retract of the same triple cancelled
            if delta is not None:
                self._forwards["assertions"] += len(delta.assertions)
                self._forwards["retractions"] += len(delta.retractions)
                self._forwards["broadcasts"] += sum(
                    1 for t in delta.assertions if route(t) == BROADCAST
                )
                if _obs.REGISTRY.enabled:
                    _obs.SHARDING_FORWARDS.inc_labels(
                        "assertions", amount=len(delta.assertions)
                    )
                    _obs.SHARDING_FORWARDS.inc_labels(
                        "retractions", amount=len(delta.retractions)
                    )
            out.append(delta)
        return out

    # --- single-node compatible surface -------------------------------------
    def flush(self) -> InferenceReport:
        """Commit staged shim adds — or an empty barrier revision.

        Parity with the single-node engine: ``flush()`` always commits,
        so the service's boot-time quiesce advances the global revision
        the same way on both topologies.
        """
        return self.apply_many([])

    def add(self, triples: Iterable[Triple] | Triple) -> int:
        """Stage explicit triples for the next commit (legacy shim)."""
        self._check_open()
        if isinstance(triples, Triple):
            triples = (triples,)
        with self._lock:
            staged = list(triples)
            self._staged.extend(staged)
            return len(staged)

    def load(self, path) -> int:
        """Stage an N-Triples (``.nt``) or Turtle (``.ttl``) file."""
        from ..rdf.ntriples import parse_ntriples_file
        from ..rdf.turtle import parse_turtle_file

        text_path = str(path)
        if text_path.endswith((".ttl", ".turtle")):
            return self.add(parse_turtle_file(path))
        return self.add(parse_ntriples_file(path))

    def settle(self) -> None:
        """Compatibility no-op: cluster commits are synchronous."""
        self._check_open()

    def subscribe(self, patterns, callback=None) -> Subscription:
        """Register a standing BGP over the *global* closure."""
        self._check_open()
        with self._lock:
            subscription = Subscription(patterns, callback)
            subscription._seed(self.graph)
            subscription.seeded_revision = self._revision
            self._subscriptions.append(subscription)
            return subscription

    def _notify_subscribers(self, report: InferenceReport) -> None:
        if not self._subscriptions:
            return
        with TRACER.span(
            "subscription.delivery",
            revision=report.revision,
            subscriptions=len(self._subscriptions),
        ):
            graph = self.graph
            alive = []
            for subscription in self._subscriptions:
                if not subscription.active:
                    continue
                alive.append(subscription)
                try:
                    subscription._deliver(report, graph)
                except Exception as error:  # parity with the engine: never poison
                    subscription.error = error
            self._subscriptions = alive

    def add_commit_listener(self, listener: Callable) -> None:
        """Register ``listener(revision, assertions, retractions)``.

        Fired once per *global* commit with the net user-level delta —
        the change feed ships exactly what a follower must replay.
        """
        with self._lock:
            self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener: Callable) -> None:
        """Detach a commit listener; unknown listeners are ignored."""
        with self._lock:
            try:
                self._commit_listeners.remove(listener)
            except ValueError:
                pass

    def _fire_commit(self, assertions, retractions) -> None:
        for listener in list(self._commit_listeners):
            listener(self._revision, assertions, retractions)

    # --- introspection -------------------------------------------------------
    @property
    def revision(self) -> int:
        """The merged monotonic global revision."""
        return self._revision

    @property
    def revision_vector(self) -> list[int]:
        """Per-shard engine revisions, index order."""
        return [engine.revision for engine in self.engines]

    @property
    def fragment(self):
        """The rule fragment (identical on every shard)."""
        return self.engines[0].fragment

    @property
    def rules(self):
        """The rule set (identical on every shard)."""
        return self.engines[0].rules

    @property
    def workers(self) -> int:
        """Worker threads configured per shard engine."""
        return self._workers

    @property
    def graph(self) -> Graph:
        """The global closure (cluster dictionary + cluster store)."""
        return Graph(self.dictionary, self.store)

    @property
    def input_count(self) -> int:
        """Explicit (user-asserted) triples across the cluster."""
        return len(self._explicit)

    @property
    def inferred_count(self) -> int:
        """Rule-derived triples across the cluster."""
        return len(self.store) - len(self._explicit)

    @property
    def persist_dir(self) -> Path | None:
        """The cluster's root state directory (``None`` when in-memory)."""
        return self._root

    @property
    def persistence(self):
        """No single WAL spans the cluster — the feed stays ring-only."""
        return None

    @property
    def snapshot_format(self) -> str:
        """The snapshot format shard engines seal (``v1`` or ``v2``)."""
        return self._snapshot_format

    def cluster_stats(self) -> dict:
        """Topology + per-shard counters for /stats and /healthz."""
        return {
            "shards": self.shards,
            "router": self.router.name,
            "revision": self._revision,
            "revision_vector": self.revision_vector,
            "forwards": dict(self._forwards),
            "per_shard": [
                {
                    "shard": index,
                    "revision": engine.revision,
                    "triples": len(engine.store),
                    "input": engine.input_count,
                    "inferred": engine.inferred_count,
                }
                for index, engine in enumerate(self.engines)
            ],
        }

    def snapshot_bytes(self, format: str | None = None) -> bytes:
        """The global closure as one self-verifying snapshot blob.

        Identical wire format to the single-node image, so follower
        bootstrap from a sharded leader is unchanged.
        """
        format = format or self._snapshot_format
        if format not in ("v1", "v2"):
            raise ValueError(f"unknown snapshot format {format!r}")
        self._check_open()
        with self._lock:
            explicit = sorted(self._explicit)
            inferred = sorted(t for t in self.store if t not in self._explicit)
            if format == "v2":
                from ..persist.columnar import encode_columnar_snapshot as encoder
            else:
                encoder = encode_snapshot
            return encoder(
                revision=self._revision,
                fragment=self.fragment.name,
                store_spec=self._spec,
                axiom_count=0,
                terms=self.dictionary.snapshot_terms(),
                explicit=explicit,
                inferred=inferred,
            )

    # --- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Flush staged deltas, stop the pool, close every shard engine."""
        with self._lock:
            if self._closed:
                return
            if self._staged:
                self.apply_many([])
            self._closed = True
        self._pool.shutdown(wait=True)
        for engine in self.engines:
            engine.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterError("cluster is closed")

    def __len__(self) -> int:
        return len(self.store)

    def __enter__(self) -> "ShardedReasoner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self):
        return (
            f"<ShardedReasoner shards={self.shards} router={self.router.name} "
            f"revision={self._revision} triples={len(self.store)}>"
        )
