"""The partition-aware write coalescer.

:class:`ShardedCoalescer` keeps the single-drainer queueing, pausing,
and netting semantics of the server's
:class:`~repro.server.coalescer.WriteCoalescer` — same submission API,
same last-writer-wins outcome, same ``CommitResult`` fan-out — but
hands each drained batch to the cluster as the *sequence* of submitted
deltas rather than one pre-netted delta.  The cluster's
:meth:`~repro.sharding.cluster.ShardedReasoner.apply_many` then splits
every submission by routing key and pipelines the per-shard sub-delta
streams through their own commit pipelines (WAL append + fsync per
sub-commit), so concurrent writers to different partitions overlap
where the single-node path would serialize.  The batch still lands as
exactly one global revision shared by every waiter, preserving the
coalescer contract.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..reasoner.delta import Delta, InferenceReport
from ..server.coalescer import PendingWrite, WriteCoalescer

__all__ = ["ShardedCoalescer"]


class ShardedCoalescer(WriteCoalescer):
    """A write coalescer draining into a sharded commit pipeline.

    ``apply_many_fn`` is called with the drained batch's deltas in
    arrival order and must commit them as one global revision, returning
    its report — the service passes a closure that also advances the
    read views before waiters resume.
    """

    def __init__(
        self,
        apply_many_fn: Callable[[Sequence[Delta]], InferenceReport],
        tick: float = 0.002,
    ):
        self._apply_many = apply_many_fn
        super().__init__(lambda delta: apply_many_fn([delta]), tick)

    def _apply_batch(self, batch: list[PendingWrite]) -> InferenceReport:
        """Commit the batch's deltas as one global sharded revision.

        The base class wraps this call in the shared commit span and
        the coalescer metrics, so per-shard sub-commit spans opened by
        ``apply_many`` nest under the same trace as single-node
        commits would.
        """
        return self._apply_many([pending.delta for pending in batch])
