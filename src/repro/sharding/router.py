"""Partition routing: which shard owns a triple.

The cluster partitions the *instance* triple space and replicates the
*schema* triple space.  That split is what makes per-shard closure
complete: every rule in the supported fragments (ρdf, RDFS) joins at
most one instance pattern with schema patterns drawn from the four RDFS
vocabulary predicates, so a shard holding an instance triple plus the
full (broadcast) schema can fire every rule the single-node engine
would fire for that triple.  Derived triples that *land* on another
shard's partition are forwarded by the coalescer afterwards — routing
only decides ownership, not reachability.

Two routers ship:

* :class:`SubjectHashRouter` (default) — instance triples are owned by
  ``crc32(subject) % shards``.  Subject locality keeps most rule output
  on the deriving shard (sc/sp/dom chains preserve the subject); only
  object-position derivations (``rng``: ``(x p y) ⇒ (y type c)``) hop
  shards.
* :class:`PredicateGroupRouter` — instance triples are owned by
  ``crc32(predicate) % shards``: all triples of one predicate co-locate,
  the natural split for predicate-skewed workloads (and the routing the
  in-process buffers already use).

Both hash with :func:`zlib.crc32` over the term's N-Triples rendering —
**never** Python's ``hash()``, whose per-process salt would make
ownership (and therefore every persisted shard layout) unstable across
runs.
"""

from __future__ import annotations

import zlib

from ..rdf import RDFS
from ..rdf.terms import Term, Triple

__all__ = [
    "BROADCAST",
    "SCHEMA_PREDICATES",
    "Router",
    "SubjectHashRouter",
    "PredicateGroupRouter",
    "create_router",
    "ROUTERS",
]

#: Routing verdict for schema triples: every shard holds a copy.
BROADCAST = -1

#: The predicates whose triples form the replicated schema plane.  They
#: are exactly the join predicates of the ρdf and RDFS rule fragments.
SCHEMA_PREDICATES = frozenset(
    (RDFS.subClassOf, RDFS.subPropertyOf, RDFS.domain, RDFS.range)
)


def _stable_bucket(term: Term, shards: int) -> int:
    """A process-independent hash bucket for one term."""
    return zlib.crc32(term.n3().encode("utf-8")) % shards


class Router:
    """Maps triples to owning shards (or :data:`BROADCAST`)."""

    #: Registry key; subclasses override.
    name = "base"

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def route(self, triple: Triple) -> int:
        """Owning shard index, or :data:`BROADCAST` for schema triples."""
        if triple.predicate in SCHEMA_PREDICATES:
            return BROADCAST
        return self._bucket(triple)

    def _bucket(self, triple: Triple) -> int:
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} shards={self.shards}>"


class SubjectHashRouter(Router):
    """Instance triples are owned by their subject's hash bucket."""

    name = "subject"

    def _bucket(self, triple: Triple) -> int:
        return _stable_bucket(triple.subject, self.shards)


class PredicateGroupRouter(Router):
    """Instance triples are owned by their predicate's hash bucket."""

    name = "predicate"

    def _bucket(self, triple: Triple) -> int:
        return _stable_bucket(triple.predicate, self.shards)


ROUTERS: dict[str, type[Router]] = {
    SubjectHashRouter.name: SubjectHashRouter,
    PredicateGroupRouter.name: PredicateGroupRouter,
}


def create_router(spec: str | Router, shards: int) -> Router:
    """Resolve a router name (or pass an instance through).

    Accepts ``"subject"`` / ``"predicate"`` or any :class:`Router`
    instance whose ``shards`` matches the cluster width.
    """
    if isinstance(spec, Router):
        if spec.shards != shards:
            raise ValueError(
                f"router is sized for {spec.shards} shards, cluster has {shards}"
            )
        return spec
    try:
        factory = ROUTERS[spec]
    except KeyError:
        known = ", ".join(sorted(ROUTERS))
        raise ValueError(f"unknown router {spec!r} (known: {known})") from None
    return factory(shards)
