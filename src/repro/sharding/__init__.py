"""Partitioned multi-leader commit pipeline.

Horizontal write scaling for the reasoner: the triple space is
partitioned across N in-process leader engines (each with its own
dictionary, store, and WAL/snapshot directory), deltas are routed by a
pluggable partition key, per-shard sub-commits run concurrently, and
cross-partition rule closure is reached by forwarding derived triples
between shards to a global fixpoint.  The merge is deterministic —
vector of per-shard revisions, one monotonic global revision, stable
tie-break by shard index — so reports, subscriptions, and read views
are identical to the single-node engine's (the differential harness
enforces exactly that, for N ∈ {2, 4}).

Entry points:

* :class:`~repro.sharding.cluster.ShardedReasoner` — the cluster facade
  (a drop-in for ``Slider`` wherever the service/feed/CLI duck-type it);
* :class:`~repro.sharding.coalescer.ShardedCoalescer` — the
  partition-aware write coalescer the service installs for ``shards>1``;
* :mod:`~repro.sharding.router` — subject-hash (default) and
  predicate-group routing.
"""

from .cluster import (
    CLUSTER_META_FILENAME,
    ClusterError,
    ClusterRecoveryInfo,
    SUPPORTED_FRAGMENTS,
    ShardedReasoner,
)
from .coalescer import ShardedCoalescer
from .router import (
    BROADCAST,
    ROUTERS,
    PredicateGroupRouter,
    Router,
    SCHEMA_PREDICATES,
    SubjectHashRouter,
    create_router,
)

__all__ = [
    "BROADCAST",
    "CLUSTER_META_FILENAME",
    "ClusterError",
    "ClusterRecoveryInfo",
    "PredicateGroupRouter",
    "ROUTERS",
    "Router",
    "SCHEMA_PREDICATES",
    "SUPPORTED_FRAGMENTS",
    "ShardedCoalescer",
    "ShardedReasoner",
    "SubjectHashRouter",
    "create_router",
]
