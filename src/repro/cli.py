"""Command-line interface: ``slider-reason`` / ``python -m repro.cli``.

Subcommands mirror the demo's three panels plus the benchmark harness:

* ``reason``     — load files (or a named dataset), infer, dump/report.
* ``explain``    — show the cost-based query plan for a BGP (join order,
  index permutation per step, estimated vs. actual rows).
* ``serve``      — run the concurrent reasoning service over HTTP
  (``--follow URL`` turns the node into a read replica of a leader).
* ``replicate``  — inspect a running node's replication status.
* ``metrics``    — scrape and print a running node's ``/metrics``
  (optionally filtered, optionally validated for exposition-format
  correctness and layer coverage).
* ``bench``      — regenerate Table 1 / Figure 3 at a chosen scale.
* ``demo``       — run a traced inference and write the HTML report.
* ``snapshot``   — compact a durable state directory (snapshot + truncate).
* ``recover``    — restore from a durable state directory and report/dump.
* ``fragments``  — list registered fragments.
* ``datasets``   — list named benchmark ontologies.
* ``depgraph``   — print a fragment's rules dependency graph (Figure 2).

Durability: pass ``--persist DIR`` to ``reason`` to journal every commit
into ``DIR`` and recover any state already there (see the README's
*Durability* section).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

from .bench.harness import run_table1
from .bench.tables import render_figure3, render_table1_half
from .datasets.loader import DEFAULT_SCALE, dataset_names, dataset_spec, load_dataset
from .demo.report import render_text, write_html_report
from .reasoner.dependency import DependencyGraph
from .reasoner.engine import Slider
from .reasoner.fragments import available_fragments, get_fragment
from .reasoner.trace import Trace, load_trace, save_trace
from .reasoner.vocabulary import Vocabulary
from .dictionary.encoder import TermDictionary

__all__ = ["main", "build_parser"]


_EPILOG = """\
examples:
  slider-reason reason data.nt --fragment rdfs --stats
  slider-reason explain data.nt --query '?x <http://ex/knows> ?y . ?y <http://ex/age> ?a'
  slider-reason reason --dataset BSBM_100k --scale 0.02 --report -
  slider-reason reason data.nt --persist state/        # durable run (WAL + recovery)
  slider-reason snapshot --persist state/              # compact: snapshot + truncate WAL
  slider-reason recover --persist state/ --output closure.nt
  slider-reason bench --experiment table1 --store sharded:8
  slider-reason serve data.nt --port 8080 --persist state/   # HTTP service (leader)
  slider-reason serve data.nt --shards 4 --persist state/    # partitioned leader (4 commit pipelines)
  slider-reason serve --follow http://leader:8080 --port 8081  # read replica
  slider-reason replicate --connect http://127.0.0.1:8081    # replication status
  slider-reason metrics --connect http://127.0.0.1:8080 --filter slider_http
  curl 'http://127.0.0.1:8080/select?query=%3Fx%20%3Chttp%3A//ex/p%3E%20%3Fy'
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slider-reason",
        description="Slider: an efficient incremental RDF reasoner (SIGMOD 2015 reproduction)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    reason = subparsers.add_parser("reason", help="run inference over RDF files")
    reason.add_argument("inputs", nargs="*", help=".nt / .ttl files to load")
    reason.add_argument("--dataset", help="a named benchmark ontology instead of files")
    reason.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="size multiplier for --dataset (default %(default)s)")
    _add_reasoner_options(reason)
    reason.add_argument("--output", help="write the materialized graph as N-Triples")
    reason.add_argument("--stats", action="store_true", help="print per-rule counters")
    reason.add_argument("--report", nargs="?", const="-", metavar="PATH",
                        help="write the commit's InferenceReport as JSON "
                             "(to PATH, or stdout when no path is given)")

    explain_parser = subparsers.add_parser(
        "explain",
        help="show the cost-based query plan for a BGP over loaded data",
    )
    explain_parser.add_argument("inputs", nargs="*", help=".nt / .ttl files to load")
    explain_parser.add_argument("--dataset",
                                help="a named benchmark ontology instead of files")
    explain_parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                                help="size multiplier for --dataset "
                                     "(default %(default)s)")
    _add_reasoner_options(explain_parser)
    explain_parser.add_argument("--query", required=True,
                                help="the BGP: '.'-separated triple patterns in "
                                     "N-Triples syntax with ?variables")
    explain_parser.add_argument("--json", action="store_true",
                                help="emit the raw explain payload as JSON")

    serve = subparsers.add_parser(
        "serve",
        help="serve the reasoner over HTTP (reads, coalesced writes, SSE)",
    )
    serve.add_argument("inputs", nargs="*", help=".nt / .ttl files to preload")
    serve.add_argument("--dataset", help="a named benchmark ontology to preload")
    serve.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                       help="size multiplier for --dataset (default %(default)s)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default %(default)s)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks an ephemeral one (default %(default)s)")
    _add_reasoner_options(serve)
    serve.add_argument("--coalesce-ms", type=float, default=2.0,
                       help="write-coalescing window in milliseconds "
                            "(default %(default)s)")
    serve.add_argument("--retain-views", type=int, default=8,
                       help="recent revisions pinnable via at= (default %(default)s)")
    serve.add_argument("--shards", type=int, default=1,
                       help="partition the triple space across N leader engines "
                            "(one commit pipeline each; 1 = single-node, "
                            "default %(default)s)")
    serve.add_argument("--router", choices=("subject", "predicate"),
                       default="subject",
                       help="partition key for --shards > 1: subject hash or "
                            "predicate group (default %(default)s)")
    serve.add_argument("--follow", metavar="URL", default=None,
                       help="run as a read replica of the leader at URL "
                            "(bootstraps from its snapshot, tails its feed; "
                            "the rule fragment is discovered from the leader)")
    serve.add_argument("--feed-retain", type=int, default=1024,
                       help="committed deltas the change feed keeps in memory "
                            "for resuming followers (default %(default)s)")
    serve.add_argument("--tenancy", action="store_true",
                       help="enable multi-tenant serving: ?tenant= routing, "
                            "/tenants management, per-tenant quotas and "
                            "fair-share write scheduling")
    serve.add_argument("--tenant-queue-limit", type=int, default=256,
                       help="bounded per-tenant write queue depth; a full "
                            "queue answers 429 + Retry-After "
                            "(default %(default)s)")
    serve.add_argument("--slow-query-ms", type=float, default=250.0,
                       help="log /select, /ask and /construct slower than this "
                            "many milliseconds with their timing breakdown and "
                            "query plan; 0 disables (default %(default)s)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    replicate = subparsers.add_parser(
        "replicate",
        help="inspect the replication status of a running node",
    )
    replicate.add_argument("--connect", required=True, metavar="URL",
                           help="base URL of the node to inspect")

    metrics = subparsers.add_parser(
        "metrics",
        help="scrape and print a running node's /metrics exposition",
    )
    metrics.add_argument("--connect", required=True, metavar="URL",
                         help="base URL of the node to scrape")
    metrics.add_argument("--filter", default=None, metavar="SUBSTR",
                         help="only print metric families whose name contains "
                              "SUBSTR (HELP/TYPE lines included)")
    metrics.add_argument("--check", action="store_true",
                         help="validate the exposition format and require one "
                              "metric family per instrumented layer "
                              "(exit 1 on violation)")

    bench = subparsers.add_parser("bench", help="regenerate the paper's experiments")
    bench.add_argument("--experiment", choices=("table1", "fig3"), default="table1")
    bench.add_argument("--fragment", default="both",
                       choices=("rhodf", "rdfs", "both"))
    bench.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    bench.add_argument("--workers", type=int, default=2)
    bench.add_argument("--store", default="hashdict", metavar="BACKEND",
                       help="storage backend spec, e.g. hashdict or sharded:8 "
                            "(default %(default)s)")
    bench.add_argument("--datasets", nargs="*", default=None,
                       help="restrict to these dataset names")

    snapshot = subparsers.add_parser(
        "snapshot",
        help="compact a durable state directory (write snapshot, truncate changelog)",
    )
    snapshot.add_argument("--persist", required=True, metavar="DIR",
                          help="the durable state directory to compact")
    snapshot.add_argument("--format", choices=("v1", "v2"), default="v2",
                          help="snapshot format to write: v1 (varint stream) or "
                               "v2 (columnar, mmap-able; default %(default)s). "
                               "Either format is always readable.")
    _add_persist_tuning(snapshot)

    recover = subparsers.add_parser(
        "recover",
        help="restore a durable state directory and report the recovered closure",
    )
    recover.add_argument("--persist", required=True, metavar="DIR",
                         help="the durable state directory to restore from")
    recover.add_argument("--output", help="write the recovered graph as N-Triples")
    recover.add_argument("--stats", action="store_true",
                         help="print store statistics after recovery")
    _add_persist_tuning(recover)

    demo = subparsers.add_parser("demo", help="traced inference + HTML report")
    demo.add_argument("--dataset", default="subClassOf100")
    demo.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    _add_reasoner_options(demo)
    demo.add_argument("--report", help="write the HTML report here")
    demo.add_argument("--save-trace", help="persist the trace as JSON for replay")
    demo.add_argument("--replay", help="replay a saved trace instead of running")

    subparsers.add_parser("fragments", help="list registered fragments")
    subparsers.add_parser("datasets", help="list named benchmark ontologies")

    depgraph = subparsers.add_parser("depgraph", help="print a rules dependency graph")
    depgraph.add_argument("--fragment", default="rhodf")
    depgraph.add_argument("--dot", action="store_true", help="GraphViz output")
    return parser


def _add_reasoner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fragment", default="rhodf",
                        help="rule fragment (default %(default)s)")
    parser.add_argument("--buffer-size", type=int, default=50,
                        help="triples per rule firing (default %(default)s)")
    parser.add_argument("--timeout", type=float, default=0.05,
                        help="buffer inactivity flush, seconds; 0 disables")
    parser.add_argument("--workers", type=int, default=4,
                        help="rule thread-pool size; 0 = inline (default %(default)s)")
    parser.add_argument("--store", default="hashdict", metavar="BACKEND",
                        help="storage backend spec: hashdict (single-lock) or "
                             "sharded[:N] (lock-striped, N shards; default %(default)s)")
    parser.add_argument("--persist", default=None, metavar="DIR",
                        help="durable state directory: journal every commit and "
                             "recover existing state on start-up")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip the fsync-per-commit (faster, page-cache "
                             "durability only)")


def _add_persist_tuning(parser: argparse.ArgumentParser) -> None:
    """The reasoner knobs the durable-state subcommands need."""
    parser.add_argument("--fragment", default="rhodf",
                        help="rule fragment the state was built with (default %(default)s)")
    parser.add_argument("--store", default="hashdict", metavar="BACKEND",
                        help="storage backend to restore into (default %(default)s)")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip the fsync-per-commit during this operation")


def _make_reasoner(args, trace: Trace | None = None) -> Slider:
    timeout = None if not args.timeout else args.timeout
    return Slider(
        fragment=args.fragment,
        buffer_size=args.buffer_size,
        timeout=timeout,
        workers=args.workers,
        store=args.store,
        trace=trace,
        persist_dir=args.persist,
        persist_fsync=not args.no_fsync,
    )


def _open_recovered(args) -> Slider:
    """A deterministic engine over a durable state directory."""
    return Slider(
        fragment=args.fragment,
        workers=0,
        timeout=None,
        store=args.store,
        persist_dir=args.persist,
        persist_fsync=not args.no_fsync,
        snapshot_format=getattr(args, "format", None) or "v1",
    )


def _print_recovery(reasoner: Slider) -> None:
    info = reasoner.recovery
    if info is None:
        return
    if hasattr(info, "revision_vector"):  # cluster recovery
        vector = ",".join(str(r) for r in info.revision_vector)
        torn = ", torn manifest reconciled" if info.torn else ""
        print(
            f"recovered global revision {info.recovered_revision} "
            f"across {info.shards} shards (revision vector [{vector}]{torn})"
        )
        return
    torn = f", dropped {info.torn_bytes_dropped} torn bytes" if info.torn_bytes_dropped else ""
    print(
        f"recovered revision {info.recovered_revision} "
        f"(snapshot rev {info.snapshot_revision}: {info.snapshot_triples} triples, "
        f"replayed {info.replayed_records} changelog records{torn})"
    )


def _cmd_reason(args) -> int:
    if bool(args.inputs) == bool(args.dataset):
        print("error: provide input files or --dataset (not both)", file=sys.stderr)
        return 2
    reasoner = _make_reasoner(args)
    _print_recovery(reasoner)
    start = time.perf_counter()
    if args.dataset:
        reasoner.add(load_dataset(args.dataset, args.scale))
    else:
        for path in args.inputs:
            reasoner.load(path)
    report = reasoner.flush()
    elapsed = time.perf_counter() - start
    print(
        f"{reasoner.input_count} explicit + {reasoner.inferred_count} inferred "
        f"= {len(reasoner)} triples in {elapsed:.3f}s "
        f"({reasoner.input_count / elapsed:,.0f} triples/s)"
    )
    if args.report:
        payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.report == "-":
            print(payload)
        else:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote inference report to {args.report}")
    if args.stats:
        for rule, counters in sorted(reasoner.counters().items()):
            print(
                f"  {rule:<12} runs={counters['executions']:<6} "
                f"derived={counters['derived']:<8} kept={counters['kept']:<8} "
                f"fires={counters['size_fires']}+{counters['timeout_fires']}t"
            )
    if args.output:
        written = reasoner.graph.dump_ntriples(args.output)
        print(f"wrote {written} triples to {args.output}")
    reasoner.close()
    return 0


def _cmd_explain(args) -> int:
    if bool(args.inputs) == bool(args.dataset):
        print("error: provide input files or --dataset (not both)", file=sys.stderr)
        return 2
    from .server.wire import PatternSyntaxError, parse_patterns
    from .store.query import explain

    try:
        patterns = parse_patterns(args.query)
    except PatternSyntaxError as error:
        print(f"error: bad query: {error}", file=sys.stderr)
        return 2
    with _make_reasoner(args) as reasoner:
        _print_recovery(reasoner)
        if args.dataset:
            reasoner.add(load_dataset(args.dataset, args.scale))
        else:
            for path in args.inputs:
                reasoner.load(path)
        reasoner.flush()
        payload = explain(reasoner.graph, patterns)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"plan for {payload['pattern_count']} pattern(s) over "
        f"{payload['backend']} ({payload['store_size']:,} triples), "
        f"join order {payload['plan_order']}"
    )
    print(f"  {'step':<5} {'pattern':<48} {'access':<24} "
          f"{'est rows':>10} {'actual':>8}")
    for row in payload["steps"]:
        print(
            f"  {row['step']:<5} {row['pattern']:<48} {row['access']:<24} "
            f"{row['estimated_rows']:>10,.1f} {row['actual_rows']:>8,}"
        )
    print(f"{payload['solutions']} solution(s)")
    return 0


def _cmd_serve(args) -> int:
    import signal

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.follow:
        if args.shards > 1:
            print("error: --shards applies to leaders only (a --follow "
                  "replica replays the leader's single feed)", file=sys.stderr)
            return 2
        if args.tenancy:
            print("error: --tenancy applies to leaders only (replicas are "
                  "read-only and hold no tenant engines)", file=sys.stderr)
            return 2
        return _cmd_serve_follower(args)

    from .replication.feed import ChangeFeed
    from .server import ReasoningService
    from .server.http import serve as start_server

    if args.shards > 1:
        from .sharding import ShardedReasoner

        reasoner = ShardedReasoner(
            fragment=args.fragment,
            shards=args.shards,
            router=args.router,
            buffer_size=args.buffer_size,
            timeout=None if not args.timeout else args.timeout,
            workers=args.workers,
            store=args.store,
            persist_dir=args.persist,
            persist_fsync=not args.no_fsync,
        )
    else:
        reasoner = _make_reasoner(args)
    _print_recovery(reasoner)
    if args.dataset:
        reasoner.add(load_dataset(args.dataset, args.scale))
    for path in args.inputs:
        reasoner.load(path)
    service = ReasoningService(
        reasoner=reasoner,
        coalesce_tick=args.coalesce_ms / 1000.0,
        retain_views=args.retain_views,
    )
    # Every leader exposes the change feed: replicas can attach at any
    # time (the feed itself costs one in-memory ring of recent deltas).
    ChangeFeed(service, retain=args.feed_retain)
    tenants = None
    if args.tenancy:
        from pathlib import Path

        from .tenancy import TenantManager, TenantQuota, TenantRegistry

        tenant_dir = Path(args.persist) / "tenants" if args.persist else None
        registry = None
        if tenant_dir is None or not (tenant_dir / "tenants.json").exists():
            # First boot: an open registry (unlimited default quota) so
            # tenants self-provision on first write; operators tighten
            # limits via POST /tenants (persisted thereafter).
            registry = TenantRegistry(default_quota=TenantQuota())
        tenants = TenantManager(
            registry=registry,
            persist_dir=tenant_dir,
            coalesce_tick=args.coalesce_ms / 1000.0,
            queue_limit=args.tenant_queue_limit,
            fragment=args.fragment,
            store=args.store,
            buffer_size=args.buffer_size,
            workers=args.workers,
            timeout=None if not args.timeout else args.timeout,
            persist_fsync=not args.no_fsync,
        )
    server, _thread = start_server(
        service, host=args.host, port=args.port, verbose=args.verbose,
        tenants=tenants, slow_query_seconds=args.slow_query_ms / 1000.0,
    )
    topology = f", {args.shards} shards" if args.shards > 1 else ""
    if tenants is not None:
        topology += f", tenancy ({len(tenants.registry)} tenants)"
    # Parseable by scripts (and tests) even on ephemeral --port 0.
    print(f"listening on {server.url} as leader "
          f"(revision {service.revision}, {len(service.view())} triples"
          f"{topology})",
          flush=True)

    stop = threading.Event()

    def request_stop(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    stop.wait()
    # Graceful drain: stop accepting connections, then commit + journal
    # everything queued — SIGTERM on a durable service must leave a
    # recoverable directory (see tests/server/test_shutdown.py).
    print("shutting down: draining writes ...", flush=True)
    server.shutdown()
    server.server_close()
    if tenants is not None:
        tenants.close()
    service.close()
    print(f"stopped cleanly at revision {reasoner.revision}", flush=True)
    return 0


def _cmd_serve_follower(args) -> int:
    import signal

    from .replication import Follower

    if args.inputs or args.dataset:
        print("error: a --follow replica takes no inputs/--dataset "
              "(its state comes from the leader)", file=sys.stderr)
        return 2
    from http.client import HTTPException

    from .replication.follower import ReplicationError

    try:
        follower = Follower(
            args.follow,
            store=args.store,
            workers=args.workers,
            timeout=None if not args.timeout else args.timeout,
            buffer_size=args.buffer_size,
            persist_dir=args.persist,
            persist_fsync=not args.no_fsync,
            retain_views=args.retain_views,
        )
        follower.start()  # discovers the fragment from the leader
    except (OSError, HTTPException, ReplicationError) as error:
        print(f"error: cannot follow {args.follow}: {error}", file=sys.stderr)
        return 1
    server, _thread = follower.serve_http(
        host=args.host, port=args.port, verbose=args.verbose,
        slow_query_seconds=args.slow_query_ms / 1000.0,
    )
    print(f"listening on {server.url} as follower of {follower.leader_url} "
          f"(revision {follower.status.applied_revision})", flush=True)
    if follower.wait_ready(timeout=60):
        print(f"caught up at revision {follower.revision} "
              f"(lag {follower.status.lag})", flush=True)
    else:
        print("warning: not caught up yet; /readyz stays 503 until the "
              "replica reaches the leader's revision", flush=True)

    stop = threading.Event()

    def request_stop(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    stop.wait()
    print("shutting down replica ...", flush=True)
    server.shutdown()
    server.server_close()
    follower.close()
    print(f"stopped cleanly at revision {follower.status.applied_revision}",
          flush=True)
    return 0


def _cmd_replicate(args) -> int:
    """Print a node's replication standing; exit 0 ready / 2 catching up."""
    import json as _json
    from http.client import HTTPConnection
    from urllib.parse import urlsplit

    from http.client import HTTPException

    parts = urlsplit(args.connect if "//" in args.connect else f"http://{args.connect}")
    try:
        conn = HTTPConnection(parts.hostname, parts.port or 80, timeout=10)
        conn.request("GET", "/stats")
        response = conn.getresponse()
        stats_code = response.status
        stats = _json.loads(response.read())
        conn.request("GET", "/readyz")
        response = conn.getresponse()
        ready_code = response.status
        response.read()
        conn.close()
    except (OSError, HTTPException, ValueError) as error:
        print(f"error: cannot reach {args.connect}: {error}", file=sys.stderr)
        return 1
    if stats_code != 200:
        # e.g. 503 during a durable replica's re-bootstrap handover.
        print(f"node is not serving stats ({stats_code}): "
              f"{stats.get('error', stats)}", file=sys.stderr)
        return 2
    role = stats.get("role", "leader")
    print(f"role      : {role}")
    print(f"revision  : {stats.get('revision')}")
    print(f"triples   : {stats.get('triples'):,}")
    print(f"ready     : {stats.get('ready')} (/readyz -> {ready_code})")
    sharding = stats.get("sharding")
    if sharding:
        forwards = sharding["forwards"]
        print(f"shards    : {sharding['shards']} ({sharding['router']} routing), "
              f"revision vector [{','.join(str(r) for r in sharding['revision_vector'])}], "
              f"{forwards['assertions']} assertion / {forwards['retractions']} "
              f"retraction forwards in {forwards['rounds']} closure rounds")
        for row in sharding["per_shard"]:
            print(f"  shard {row['shard']:<3} revision {row['revision']:<6} "
                  f"{row['triples']:>9,} triples "
                  f"({row['input']:,} explicit + {row['inferred']:,} inferred)")
    replication = stats.get("replication")
    if replication:
        print(f"leader    : {replication['leader']}")
        print(f"connected : {replication['connected']}")
        print(f"lag       : {replication['lag_revisions']} revisions "
              f"(applied {replication['applied_revision']}, "
              f"leader {replication['leader_revision']})")
        print(f"applied   : {replication['records_applied']} records, "
              f"{replication['bootstraps']} bootstrap(s), "
              f"{replication['reconnects']} reconnect(s)")
        if replication.get("last_error"):
            print(f"last error: {replication['last_error']}")
    feed = stats.get("feed")
    if feed:
        print(f"feed      : {feed['retained_records']} records retained, "
              f"latest revision {feed['latest_revision']}, "
              f"resumable from {feed['oldest_resumable']}"
              f"{' (WAL-backed)' if feed.get('wal_backed') else ''}")
    return 0 if ready_code == 200 else 2


def _cmd_metrics(args) -> int:
    """Scrape ``<url>/metrics``; print it, optionally filtered/validated."""
    import urllib.error
    import urllib.request

    from .obs import LAYER_PREFIXES, validate_exposition

    base = args.connect if "//" in args.connect else f"http://{args.connect}"
    try:
        with urllib.request.urlopen(f"{base.rstrip('/')}/metrics", timeout=10) as resp:
            text = resp.read().decode("utf-8")
    except (OSError, ValueError) as error:
        print(f"error: cannot scrape {base}/metrics: {error}", file=sys.stderr)
        return 1
    if args.check:
        try:
            families = validate_exposition(text, require_layers=LAYER_PREFIXES)
        except ValueError as error:
            print(f"error: invalid exposition: {error}", file=sys.stderr)
            return 1
        print(f"# exposition valid: {len(families)} families, "
              f"layers {', '.join(LAYER_PREFIXES)}", file=sys.stderr)
    for line in text.splitlines():
        if args.filter is not None:
            # Match on the metric name: token 3 of HELP/TYPE comments,
            # the text before '{' or ' ' of sample lines.
            if line.startswith("#"):
                parts = line.split(None, 3)
                name = parts[2] if len(parts) > 2 else ""
            else:
                name = line.split("{", 1)[0].split(" ", 1)[0]
            if args.filter not in name:
                continue
        print(line)
    return 0


def _cmd_bench(args) -> int:
    fragments = ("rhodf", "rdfs") if args.fragment == "both" else (args.fragment,)
    halves = {}
    for fragment in fragments:
        rows = run_table1(fragment, datasets=args.datasets, scale=args.scale,
                          workers=args.workers, store=args.store)
        halves[fragment] = rows
        print(render_table1_half(rows, "ρdf" if fragment == "rhodf" else fragment.upper()))
        print()
    if args.experiment == "fig3" and len(halves) == 2:
        print(render_figure3(halves["rhodf"], halves["rdfs"]))
    return 0


def _cmd_snapshot(args) -> int:
    with _open_recovered(args) as reasoner:
        _print_recovery(reasoner)
        path = reasoner.snapshot()
        print(
            f"snapshot of revision {reasoner.revision} "
            f"({len(reasoner)} triples) written to {path} "
            f"({path.stat().st_size:,} bytes); changelog truncated"
        )
    return 0


def _cmd_recover(args) -> int:
    with _open_recovered(args) as reasoner:
        if reasoner.recovery is None:
            print(f"nothing to recover in {args.persist} (cold directory)")
        else:
            _print_recovery(reasoner)
        print(
            f"{reasoner.input_count} explicit + {reasoner.inferred_count} inferred "
            f"= {len(reasoner)} triples at revision {reasoner.revision}"
        )
        if args.stats:
            for key, value in sorted(reasoner.store.stats().items()):
                print(f"  {key:<14} {value:,}")
        if args.output:
            written = reasoner.graph.dump_ntriples(args.output)
            print(f"wrote {written} triples to {args.output}")
    return 0


def _cmd_demo(args) -> int:
    if args.replay:
        trace, config = load_trace(args.replay)
        print(f"replaying {len(trace)} recorded events from {args.replay}")
    else:
        trace = Trace()
        reasoner = _make_reasoner(args, trace=trace)
        reasoner.add(load_dataset(args.dataset, args.scale))
        reasoner.flush()
        reasoner.close()
        config = {
            "dataset": args.dataset,
            "fragment": args.fragment,
            "buffer_size": args.buffer_size,
            "timeout": args.timeout,
            "workers": args.workers,
            "store": args.store,
        }
    print(render_text(trace, config))
    if args.save_trace and not args.replay:
        written = save_trace(trace, args.save_trace, config)
        print(f"\ntrace ({written} events) written to {args.save_trace}")
    if args.report:
        write_html_report(trace, args.report, config)
        print(f"\nHTML report written to {args.report}")
    return 0


def _cmd_fragments(_args) -> int:
    for name in available_fragments():
        fragment = get_fragment(name)
        rules = fragment.rules(Vocabulary(TermDictionary()))
        print(f"{name:<12} {len(rules):>3} rules  {fragment.description}")
    return 0


def _cmd_datasets(_args) -> int:
    for name in dataset_names():
        spec = dataset_spec(name)
        scaled = "" if spec.scalable else "  (fixed size)"
        print(f"{name:<16} paper size {spec.paper_size:>9,} triples{scaled}")
    return 0


def _cmd_depgraph(args) -> int:
    fragment = get_fragment(args.fragment)
    rules = fragment.rules(Vocabulary(TermDictionary()))
    graph = DependencyGraph(rules)
    if args.dot:
        print(graph.to_dot())
        return 0
    print(f"rules dependency graph for {fragment.name} "
          f"({len(rules)} rules, {len(graph.edges())} edges)")
    universal = set(graph.universal_rules())
    for name in graph.rule_names():
        marker = " [universal input]" if name in universal else ""
        successors = ", ".join(graph.successors(name)) or "-"
        print(f"  {name:<12}{marker} -> {successors}")
    return 0


_COMMANDS = {
    "reason": _cmd_reason,
    "explain": _cmd_explain,
    "serve": _cmd_serve,
    "replicate": _cmd_replicate,
    "metrics": _cmd_metrics,
    "bench": _cmd_bench,
    "demo": _cmd_demo,
    "snapshot": _cmd_snapshot,
    "recover": _cmd_recover,
    "fragments": _cmd_fragments,
    "datasets": _cmd_datasets,
    "depgraph": _cmd_depgraph,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
