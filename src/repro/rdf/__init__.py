"""RDF data model and I/O substrate.

Everything the reasoner consumes or produces is expressed with the types in
this package: :class:`~repro.rdf.terms.IRI`, :class:`~repro.rdf.terms.BNode`,
:class:`~repro.rdf.terms.Literal`, :class:`~repro.rdf.terms.Triple`, the
vocabulary helpers in :mod:`~repro.rdf.namespaces`, and the N-Triples /
Turtle parsers and serializers.
"""

from .namespaces import OWL, RDF, RDFS, XSD, Namespace, split_iri
from .nquads import (
    NQuadsError,
    iter_nquads,
    parse_nquads,
    parse_nquads_file,
    serialize_nquads,
    write_nquads,
    write_nquads_file,
)
from .ntriples import (
    NTriplesError,
    iter_ntriples,
    parse_ntriples,
    parse_ntriples_file,
    serialize_ntriples,
    write_ntriples,
    write_ntriples_file,
)
from .terms import BNode, IRI, Literal, Quad, Term, Triple, Variable, term_sort_key
from .turtle import TurtleError, parse_turtle, parse_turtle_file, serialize_turtle

__all__ = [
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Term",
    "Triple",
    "Quad",
    "term_sort_key",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "split_iri",
    "NQuadsError",
    "iter_nquads",
    "parse_nquads",
    "parse_nquads_file",
    "serialize_nquads",
    "write_nquads",
    "write_nquads_file",
    "NTriplesError",
    "iter_ntriples",
    "parse_ntriples",
    "parse_ntriples_file",
    "serialize_ntriples",
    "write_ntriples",
    "write_ntriples_file",
    "TurtleError",
    "parse_turtle",
    "parse_turtle_file",
    "serialize_turtle",
]
