"""RDF term and triple data model.

This module provides the core value types used throughout the library:

* :class:`IRI` — an absolute IRI reference (``<http://...>``).
* :class:`BNode` — a blank node with a local label.
* :class:`Literal` — a literal with optional language tag or datatype.
* :class:`Variable` — a query/pattern variable (``?x``); never stored.
* :class:`Triple` — an (subject, predicate, object) statement.
* :class:`Quad` — a triple plus an optional named graph (RDF dataset
  statement; ``graph=None`` means the default graph).

All term types are immutable, hashable, and totally ordered so they can be
used as dictionary keys, stored in sets, and sorted into deterministic
serializations.  Ordering between different term kinds follows SPARQL's
conventional order: blank nodes < IRIs < literals (variables sort first).

The paper's reasoner never manipulates these objects on the hot path — the
input manager maps every term to an integer through
:class:`repro.dictionary.TermDictionary` — but parsers, serializers,
dataset generators, and the public API all speak in terms.
"""

from __future__ import annotations

import re
from typing import Union

__all__ = [
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Term",
    "Triple",
    "Quad",
    "term_sort_key",
]

# Kind tags used for cross-type ordering (SPARQL order: bnode < IRI < literal).
_KIND_VARIABLE = 0
_KIND_BNODE = 1
_KIND_IRI = 2
_KIND_LITERAL = 3

_BNODE_LABEL_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")
_VARIABLE_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class IRI:
    """An absolute IRI reference.

    >>> IRI("http://example.org/a")
    IRI('http://example.org/a')
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("IRI value must be non-empty")
        if any(c in value for c in "<>\"{}|^`") or any(ord(c) <= 0x20 for c in value):
            raise ValueError(f"IRI contains characters forbidden by RFC 3987: {value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((_KIND_IRI, value)))

    def __setattr__(self, name, value):
        raise AttributeError("IRI is immutable")

    def __eq__(self, other):
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if isinstance(other, IRI):
            return self.value < other.value
        if isinstance(other, (BNode, Literal, Variable)):
            return _KIND_IRI < _kind_of(other)
        return NotImplemented

    def __repr__(self):
        return f"IRI({self.value!r})"

    def __str__(self):
        return self.value

    def n3(self) -> str:
        """Render in N-Triples syntax: ``<iri>``."""
        return f"<{self.value}>"


class BNode:
    """A blank node identified by a local label (``_:label``)."""

    __slots__ = ("label", "_hash")

    _counter = 0

    def __init__(self, label: str | None = None):
        if label is None:
            BNode._counter += 1
            label = f"b{BNode._counter}"
        if not isinstance(label, str):
            raise TypeError(f"BNode label must be str, got {type(label).__name__}")
        if not _BNODE_LABEL_RE.match(label):
            raise ValueError(f"invalid blank node label: {label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash((_KIND_BNODE, label)))

    def __setattr__(self, name, value):
        raise AttributeError("BNode is immutable")

    def __eq__(self, other):
        return isinstance(other, BNode) and other.label == self.label

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if isinstance(other, BNode):
            return self.label < other.label
        if isinstance(other, (IRI, Literal, Variable)):
            return _KIND_BNODE < _kind_of(other)
        return NotImplemented

    def __repr__(self):
        return f"BNode({self.label!r})"

    def __str__(self):
        return f"_:{self.label}"

    def n3(self) -> str:
        """Render in N-Triples syntax: ``_:label``."""
        return f"_:{self.label}"


class Literal:
    """An RDF literal: lexical form plus optional language tag or datatype.

    A literal has *either* a language tag (then its datatype is implicitly
    ``rdf:langString``) *or* an explicit datatype IRI, or neither (plain,
    implicitly ``xsd:string``).

    >>> Literal("42", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))
    Literal('42', datatype=IRI('http://www.w3.org/2001/XMLSchema#integer'))
    """

    __slots__ = ("lexical", "language", "datatype", "_hash")

    def __init__(
        self,
        lexical: str,
        language: str | None = None,
        datatype: IRI | None = None,
    ):
        if not isinstance(lexical, str):
            raise TypeError(f"Literal lexical form must be str, got {type(lexical).__name__}")
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot carry both a language tag and a datatype")
        if language is not None:
            if not re.match(r"^[A-Za-z]{1,8}(-[A-Za-z0-9]{1,8})*$", language):
                raise ValueError(f"invalid language tag: {language!r}")
            language = language.lower()
        if datatype is not None and not isinstance(datatype, IRI):
            raise TypeError("Literal datatype must be an IRI")
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "language", language)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "_hash", hash((_KIND_LITERAL, lexical, language, datatype)))

    def __setattr__(self, name, value):
        raise AttributeError("Literal is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.language == self.language
            and other.datatype == self.datatype
        )

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if isinstance(other, Literal):
            return self._sort_tuple() < other._sort_tuple()
        if isinstance(other, (IRI, BNode, Variable)):
            return _KIND_LITERAL < _kind_of(other)
        return NotImplemented

    def _sort_tuple(self):
        return (
            self.lexical,
            self.language or "",
            self.datatype.value if self.datatype else "",
        )

    def __repr__(self):
        parts = [repr(self.lexical)]
        if self.language:
            parts.append(f"language={self.language!r}")
        if self.datatype:
            parts.append(f"datatype={self.datatype!r}")
        return f"Literal({', '.join(parts)})"

    def __str__(self):
        return self.lexical

    def n3(self) -> str:
        """Render in N-Triples syntax, escaping per the N-Triples grammar."""
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def to_python(self) -> Union[str, int, float, bool]:
        """Best-effort conversion to a native Python value."""
        if self.datatype is None:
            return self.lexical
        dt = self.datatype.value
        if dt.endswith(("#integer", "#int", "#long", "#short", "#byte",
                        "#nonNegativeInteger", "#positiveInteger")):
            return int(self.lexical)
        if dt.endswith(("#decimal", "#double", "#float")):
            return float(self.lexical)
        if dt.endswith("#boolean"):
            return self.lexical in ("true", "1")
        return self.lexical


class Variable:
    """A query variable (``?name``).  Only valid inside triple *patterns*."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not isinstance(name, str):
            raise TypeError(f"Variable name must be str, got {type(name).__name__}")
        if name.startswith("?"):
            name = name[1:]
        if not _VARIABLE_NAME_RE.match(name):
            raise ValueError(f"invalid variable name: {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((_KIND_VARIABLE, name)))

    def __setattr__(self, name, value):
        raise AttributeError("Variable is immutable")

    def __eq__(self, other):
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if isinstance(other, Variable):
            return self.name < other.name
        if isinstance(other, (IRI, BNode, Literal)):
            return True
        return NotImplemented

    def __repr__(self):
        return f"Variable({self.name!r})"

    def __str__(self):
        return f"?{self.name}"

    def n3(self) -> str:
        return f"?{self.name}"


Term = Union[IRI, BNode, Literal]
"""A concrete RDF term (anything that may appear in a stored triple)."""


def _kind_of(term) -> int:
    if isinstance(term, Variable):
        return _KIND_VARIABLE
    if isinstance(term, BNode):
        return _KIND_BNODE
    if isinstance(term, IRI):
        return _KIND_IRI
    if isinstance(term, Literal):
        return _KIND_LITERAL
    raise TypeError(f"not an RDF term: {term!r}")


def term_sort_key(term) -> tuple:
    """Total-order sort key across mixed term types."""
    kind = _kind_of(term)
    if kind == _KIND_VARIABLE:
        return (kind, term.name)
    if kind == _KIND_BNODE:
        return (kind, term.label)
    if kind == _KIND_IRI:
        return (kind, term.value)
    return (kind, *term._sort_tuple())


class Triple:
    """An RDF statement ``(subject, predicate, object)``.

    Subjects must be :class:`IRI` or :class:`BNode`, predicates :class:`IRI`,
    objects any concrete term.  Triples are immutable and hashable.
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject, predicate, object):
        if not isinstance(subject, (IRI, BNode)):
            raise TypeError(f"triple subject must be IRI or BNode, got {type(subject).__name__}")
        if not isinstance(predicate, IRI):
            raise TypeError(f"triple predicate must be IRI, got {type(predicate).__name__}")
        if not isinstance(object, (IRI, BNode, Literal)):
            raise TypeError(f"triple object must be IRI, BNode or Literal, got {type(object).__name__}")
        __o = object  # keep the builtin name shadow local
        super(Triple, self).__setattr__("subject", subject)
        super(Triple, self).__setattr__("predicate", predicate)
        super(Triple, self).__setattr__("object", __o)
        super(Triple, self).__setattr__("_hash", hash((subject, predicate, __o)))

    def __setattr__(self, name, value):
        raise AttributeError("Triple is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Triple)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if not isinstance(other, Triple):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        return (
            term_sort_key(self.subject),
            term_sort_key(self.predicate),
            term_sort_key(self.object),
        )

    def __iter__(self):
        yield self.subject
        yield self.predicate
        yield self.object

    def __getitem__(self, index: int):
        return (self.subject, self.predicate, self.object)[index]

    def __repr__(self):
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def n3(self) -> str:
        """Render as one N-Triples statement (without trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."


class Quad:
    """An RDF dataset statement: a :class:`Triple` plus an optional graph.

    ``graph`` is the named graph the statement belongs to — an
    :class:`IRI` or :class:`BNode` label, or ``None`` for the default
    graph (making every triple a quad and vice versa).  Quads are
    immutable and hashable; a quad in the default graph is *not* equal
    to its bare triple (they are different types), but :meth:`triple`
    recovers the statement for triple-shaped consumers.
    """

    __slots__ = ("subject", "predicate", "object", "graph", "_hash")

    def __init__(self, subject, predicate, object, graph=None):
        if not isinstance(subject, (IRI, BNode)):
            raise TypeError(f"quad subject must be IRI or BNode, got {type(subject).__name__}")
        if not isinstance(predicate, IRI):
            raise TypeError(f"quad predicate must be IRI, got {type(predicate).__name__}")
        if not isinstance(object, (IRI, BNode, Literal)):
            raise TypeError(f"quad object must be IRI, BNode or Literal, got {type(object).__name__}")
        if graph is not None and not isinstance(graph, (IRI, BNode)):
            raise TypeError(f"quad graph must be IRI, BNode or None, got {type(graph).__name__}")
        __o = object  # keep the builtin name shadow local
        super(Quad, self).__setattr__("subject", subject)
        super(Quad, self).__setattr__("predicate", predicate)
        super(Quad, self).__setattr__("object", __o)
        super(Quad, self).__setattr__("graph", graph)
        super(Quad, self).__setattr__("_hash", hash((subject, predicate, __o, graph)))

    @classmethod
    def from_triple(cls, triple: Triple, graph=None) -> "Quad":
        """Lift a :class:`Triple` into ``graph`` (default graph when None)."""
        return cls(triple.subject, triple.predicate, triple.object, graph)

    def triple(self) -> Triple:
        """The statement without its graph dimension."""
        return Triple(self.subject, self.predicate, self.object)

    def __setattr__(self, name, value):
        raise AttributeError("Quad is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Quad)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
            and other.graph == self.graph
        )

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if not isinstance(other, Quad):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """Total-order key: default graph first, then named graphs."""
        graph_key = ((), ) if self.graph is None else ((1,) + term_sort_key(self.graph),)
        return (
            graph_key,
            term_sort_key(self.subject),
            term_sort_key(self.predicate),
            term_sort_key(self.object),
        )

    def __iter__(self):
        yield self.subject
        yield self.predicate
        yield self.object
        yield self.graph

    def __getitem__(self, index: int):
        return (self.subject, self.predicate, self.object, self.graph)[index]

    def __repr__(self):
        return (
            f"Quad({self.subject!r}, {self.predicate!r}, {self.object!r}, "
            f"{self.graph!r})"
        )

    def n3(self) -> str:
        """Render as one N-Quads statement (without trailing newline)."""
        if self.graph is None:
            return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."
        return (
            f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} "
            f"{self.graph.n3()} ."
        )
