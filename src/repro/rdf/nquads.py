"""N-Quads parser and serializer (W3C N-Quads, RDF 1.1).

N-Quads is N-Triples plus an optional fourth term — the named graph
label — before the terminating ``.``.  A statement without a graph
label belongs to the *default graph*, so every valid N-Triples document
is also a valid N-Quads document (and parses here to quads with
``graph=None``).

Entry points mirror :mod:`repro.rdf.ntriples`:

* :func:`parse_nquads` — parse a string into a list of quads.
* :func:`iter_nquads` — lazily parse an iterable of lines (streams).
* :func:`parse_nquads_file` / :func:`write_nquads_file`.
* :func:`serialize_nquads` — deterministic (sorted) serialization.

The grammar is enforced by reusing the N-Triples recursive-descent
parser (:class:`repro.rdf.ntriples._LineParser`) for the subject /
predicate / object positions, so escapes, literals, and error positions
behave identically across both syntaxes.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, TextIO

from .ntriples import NTriplesError, _LineParser
from .terms import BNode, IRI, Quad

__all__ = [
    "NQuadsError",
    "parse_nquads",
    "iter_nquads",
    "parse_nquads_file",
    "serialize_nquads",
    "write_nquads",
    "write_nquads_file",
]


class NQuadsError(NTriplesError):
    """Raised on malformed N-Quads input, with line/column context."""


class _QuadLineParser(_LineParser):
    """One N-Quads line: ``subject predicate object [graph] .``"""

    def error(self, message: str) -> NQuadsError:
        return NQuadsError(message, self.line_number, self.pos)

    def parse_quad(self) -> Quad | None:
        """Parse the line into a :class:`Quad`; ``None`` for blank/comment."""
        self.skip_whitespace()
        if self.at_end() or self.peek() == "#":
            return None
        subject = self.parse_subject()
        self.skip_whitespace()
        predicate = self.parse_iri("predicate")
        self.skip_whitespace()
        obj = self.parse_object()
        self.skip_whitespace()
        graph: IRI | BNode | None = None
        char = self.peek()
        if char == "<":
            graph = self.parse_iri("graph label")
            self.skip_whitespace()
        elif char == "_":
            graph = self.parse_bnode()
            self.skip_whitespace()
        self.expect(".")
        self.skip_whitespace()
        if not self.at_end() and self.peek() != "#":
            raise self.error("unexpected content after terminating '.'")
        return Quad(subject, predicate, obj, graph)


def iter_nquads(lines: Iterable[str]) -> Iterator[Quad]:
    """Lazily parse an iterable of N-Quads lines into quads.

    Blank lines and ``#`` comment lines are skipped.  Statements without
    a graph label yield quads in the default graph (``graph=None``).
    """
    for line_number, line in enumerate(lines, start=1):
        quad = _QuadLineParser(line.rstrip("\r\n"), line_number).parse_quad()
        if quad is not None:
            yield quad


def parse_nquads(text: str) -> list[Quad]:
    """Parse an entire N-Quads document into a list of quads."""
    return list(iter_nquads(io.StringIO(text)))


def parse_nquads_file(path) -> list[Quad]:
    """Parse an N-Quads file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_nquads(handle))


def write_nquads(quads: Iterable[Quad], handle: TextIO, sort: bool = False) -> int:
    """Write quads in N-Quads syntax to an open text handle.

    Returns the number of statements written.  With ``sort=True`` the
    output is deterministic (default graph first, then named graphs in
    term order), making serializations byte-comparable across runs.
    """
    if sort:
        quads = sorted(quads)
    count = 0
    for quad in quads:
        handle.write(quad.n3())
        handle.write("\n")
        count += 1
    return count


def serialize_nquads(quads: Iterable[Quad], sort: bool = True) -> str:
    """Serialize quads to an N-Quads string (sorted by default)."""
    buffer = io.StringIO()
    write_nquads(quads, buffer, sort=sort)
    return buffer.getvalue()


def write_nquads_file(quads: Iterable[Quad], path, sort: bool = False) -> int:
    """Write quads to a file in N-Quads syntax."""
    with open(path, "w", encoding="utf-8") as handle:
        return write_nquads(quads, handle, sort=sort)
