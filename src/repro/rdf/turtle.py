"""Turtle parser and serializer (pragmatic subset of W3C Turtle).

Supported syntax — everything the library's own serializer emits plus the
constructs found in the ontologies the paper evaluates on:

* ``@prefix`` / ``@base`` directives (and SPARQL-style ``PREFIX`` / ``BASE``),
* prefixed names and relative IRIs resolved against the base,
* the ``a`` keyword for ``rdf:type``,
* predicate lists (``;``) and object lists (``,``),
* anonymous blank nodes ``[ ... ]`` with nested predicate-object lists,
* RDF collections ``( ... )`` expanded to ``rdf:first``/``rdf:rest`` chains,
* numeric (integer / decimal / double), boolean, plain, language-tagged,
  typed, and long (``\"\"\"...\"\"\"``) literals.

Not supported (rejected with a clear error): ``@forAll``/``@forSome`` and
other Notation3 extensions.
"""

from __future__ import annotations

import re
from typing import Iterator

from .namespaces import RDF, XSD, WELL_KNOWN_PREFIXES
from .terms import BNode, IRI, Literal, Term, Triple

__all__ = ["TurtleError", "parse_turtle", "parse_turtle_file", "serialize_turtle"]


class TurtleError(ValueError):
    """Raised on malformed Turtle input."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"{message} at line {line_number}"
        super().__init__(message)
        self.line_number = line_number


# Token kinds
_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("LONG_STRING", r'"""(?:[^"\\]|\\.|"(?!""))*"""'),
    ("STRING", r'"(?:[^"\\\n]|\\.)*"'),
    ("IRIREF", r"<[^<>\"{}|^`\\\x00-\x20]*>"),
    ("PREFIX_DIRECTIVE", r"@prefix\b|PREFIX\b"),
    ("BASE_DIRECTIVE", r"@base\b|BASE\b"),
    ("LANGTAG", r"@[A-Za-z]+(?:-[A-Za-z0-9]+)*"),
    ("DOUBLE", r"[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+"),
    ("DECIMAL", r"[+-]?\d*\.\d+"),
    ("INTEGER", r"[+-]?\d+"),
    ("HATHAT", r"\^\^"),
    ("BNODE", r"_:[A-Za-z0-9_][A-Za-z0-9_.-]*"),
    # PNAME must come after directives so '@prefix' wins; allow empty prefix ":x"
    ("PNAME", r"[A-Za-z_][A-Za-z0-9_.-]*:[A-Za-z0-9_][A-Za-z0-9_.%-]*|:[A-Za-z0-9_][A-Za-z0-9_.%-]*|[A-Za-z_][A-Za-z0-9_.-]*:|:"),
    ("KEYWORD_A", r"a\b"),
    ("BOOLEAN", r"true\b|false\b"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("SEMICOLON", r";"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("WS", r"[ \t\r\n]+"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC), re.DOTALL)

_STRING_ESCAPES = {
    "t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"_Token({self.kind}, {self.text!r}, line {self.line})"


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    line = 1
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise TurtleError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup
        token_text = match.group()
        if kind not in ("WS", "COMMENT"):
            yield _Token(kind, token_text, line)
        line += token_text.count("\n")
        pos = match.end()
    yield _Token("EOF", "", line)


def _unescape_string(raw: str, line: int) -> str:
    result: list[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char != "\\":
            result.append(char)
            index += 1
            continue
        index += 1
        if index >= len(raw):
            raise TurtleError("dangling escape in string", line)
        escape_char = raw[index]
        index += 1
        if escape_char in _STRING_ESCAPES:
            result.append(_STRING_ESCAPES[escape_char])
        elif escape_char in ("u", "U"):
            width = 4 if escape_char == "u" else 8
            digits = raw[index : index + width]
            if len(digits) < width:
                raise TurtleError(f"invalid \\{escape_char} escape", line)
            try:
                result.append(chr(int(digits, 16)))
            except ValueError as exc:
                raise TurtleError(f"invalid \\{escape_char} escape", line) from exc
            index += width
        else:
            raise TurtleError(f"invalid escape \\{escape_char}", line)
    return "".join(result)


class _TurtleParser:
    def __init__(self, text: str, base: str | None = None):
        self.tokens = list(_tokenize(text))
        self.index = 0
        self.base = base or ""
        self.prefixes: dict[str, str] = {}
        self.triples: list[Triple] = []
        self._anon_counter = 0

    # --- token plumbing ---------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise TurtleError(f"expected {kind}, found {token.kind} ({token.text!r})", token.line)
        return token

    # --- grammar ----------------------------------------------------------
    def parse(self) -> list[Triple]:
        while self.peek().kind != "EOF":
            token = self.peek()
            if token.kind == "PREFIX_DIRECTIVE":
                self._parse_prefix()
            elif token.kind == "BASE_DIRECTIVE":
                self._parse_base()
            else:
                self._parse_statement()
        return self.triples

    def _parse_prefix(self) -> None:
        directive = self.next()
        pname = self.expect("PNAME")
        if not pname.text.endswith(":"):
            raise TurtleError(f"malformed prefix declaration {pname.text!r}", pname.line)
        iri_token = self.expect("IRIREF")
        self.prefixes[pname.text[:-1]] = self._resolve(iri_token.text[1:-1])
        if directive.text.startswith("@"):
            self.expect("DOT")

    def _parse_base(self) -> None:
        directive = self.next()
        iri_token = self.expect("IRIREF")
        self.base = self._resolve(iri_token.text[1:-1])
        if directive.text.startswith("@"):
            self.expect("DOT")

    def _parse_statement(self) -> None:
        subject = self._parse_subject()
        self._parse_predicate_object_list(subject)
        self.expect("DOT")

    def _parse_subject(self):
        token = self.peek()
        if token.kind == "IRIREF":
            return self._iri_from_token(self.next())
        if token.kind == "PNAME":
            return self._expand_pname(self.next())
        if token.kind == "BNODE":
            return BNode(self.next().text[2:])
        if token.kind == "LBRACKET":
            return self._parse_anon_bnode()
        if token.kind == "LPAREN":
            return self._parse_collection()
        raise TurtleError(f"cannot start a statement with {token.kind} ({token.text!r})", token.line)

    def _parse_predicate_object_list(self, subject) -> None:
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object()
                self.triples.append(Triple(subject, predicate, obj))
                if self.peek().kind == "COMMA":
                    self.next()
                    continue
                break
            if self.peek().kind == "SEMICOLON":
                while self.peek().kind == "SEMICOLON":
                    self.next()
                if self.peek().kind in ("DOT", "RBRACKET"):
                    return  # trailing semicolon
                continue
            return

    def _parse_predicate(self) -> IRI:
        token = self.next()
        if token.kind == "KEYWORD_A":
            return RDF.type
        if token.kind == "IRIREF":
            return self._iri_from_token(token)
        if token.kind == "PNAME":
            iri = self._expand_pname(token)
            if not isinstance(iri, IRI):
                raise TurtleError("predicate must be an IRI", token.line)
            return iri
        raise TurtleError(f"expected predicate, found {token.kind} ({token.text!r})", token.line)

    def _parse_object(self) -> Term:
        token = self.peek()
        if token.kind == "IRIREF":
            return self._iri_from_token(self.next())
        if token.kind == "PNAME":
            return self._expand_pname(self.next())
        if token.kind == "BNODE":
            return BNode(self.next().text[2:])
        if token.kind == "LBRACKET":
            return self._parse_anon_bnode()
        if token.kind == "LPAREN":
            return self._parse_collection()
        if token.kind in ("STRING", "LONG_STRING"):
            return self._parse_literal()
        if token.kind == "INTEGER":
            return Literal(self.next().text, datatype=XSD.integer)
        if token.kind == "DECIMAL":
            return Literal(self.next().text, datatype=XSD.decimal)
        if token.kind == "DOUBLE":
            return Literal(self.next().text, datatype=XSD.double)
        if token.kind == "BOOLEAN":
            return Literal(self.next().text, datatype=XSD.boolean)
        raise TurtleError(f"expected object, found {token.kind} ({token.text!r})", token.line)

    def _parse_literal(self) -> Literal:
        token = self.next()
        raw = token.text[3:-3] if token.kind == "LONG_STRING" else token.text[1:-1]
        lexical = _unescape_string(raw, token.line)
        follower = self.peek()
        if follower.kind == "LANGTAG":
            self.next()
            return Literal(lexical, language=follower.text[1:])
        if follower.kind == "HATHAT":
            self.next()
            datatype_token = self.next()
            if datatype_token.kind == "IRIREF":
                datatype = self._iri_from_token(datatype_token)
            elif datatype_token.kind == "PNAME":
                datatype = self._expand_pname(datatype_token)
            else:
                raise TurtleError("expected datatype IRI after ^^", datatype_token.line)
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def _parse_anon_bnode(self) -> BNode:
        self.expect("LBRACKET")
        self._anon_counter += 1
        node = BNode(f"anon{self._anon_counter}")
        if self.peek().kind != "RBRACKET":
            self._parse_predicate_object_list(node)
        self.expect("RBRACKET")
        return node

    def _parse_collection(self):
        open_token = self.expect("LPAREN")
        items: list[Term] = []
        while self.peek().kind != "RPAREN":
            if self.peek().kind == "EOF":
                raise TurtleError("unterminated collection", open_token.line)
            items.append(self._parse_object())
        self.expect("RPAREN")
        if not items:
            return RDF.nil
        head: Term = RDF.nil
        for item in reversed(items):
            self._anon_counter += 1
            cell = BNode(f"list{self._anon_counter}")
            self.triples.append(Triple(cell, RDF.first, item))
            self.triples.append(Triple(cell, RDF.rest, head))
            head = cell
        return head

    # --- term helpers -------------------------------------------------------
    def _resolve(self, iri_text: str) -> str:
        if re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri_text):
            return iri_text  # already absolute
        if not self.base:
            raise TurtleError(f"relative IRI {iri_text!r} with no @base in scope")
        if iri_text.startswith("#") or not iri_text:
            return self.base.split("#")[0] + iri_text
        return re.sub(r"[^/]*$", "", self.base) + iri_text

    def _iri_from_token(self, token: _Token) -> IRI:
        try:
            return IRI(self._resolve(token.text[1:-1]))
        except ValueError as exc:
            raise TurtleError(str(exc), token.line) from exc

    def _expand_pname(self, token: _Token) -> IRI:
        prefix, _, local = token.text.partition(":")
        namespace = self.prefixes.get(prefix)
        if namespace is None:
            namespace = WELL_KNOWN_PREFIXES.get(prefix)
        if namespace is None:
            raise TurtleError(f"undeclared prefix {prefix!r}", token.line)
        local = local.replace("%", "%25") if "%" in local and "%25" not in local else local
        return IRI(namespace + local)


def parse_turtle(text: str, base: str | None = None) -> list[Triple]:
    """Parse a Turtle document into a list of triples."""
    return _TurtleParser(text, base=base).parse()


def parse_turtle_file(path, base: str | None = None) -> list[Triple]:
    """Parse a Turtle file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_turtle(handle.read(), base=base)


def serialize_turtle(triples, prefixes: dict[str, str] | None = None) -> str:
    """Serialize triples to Turtle, grouping by subject and predicate.

    ``prefixes`` maps prefix label → namespace IRI; well-known prefixes are
    always available.  Terms outside all namespaces are written as full
    IRIs.
    """
    all_prefixes = dict(WELL_KNOWN_PREFIXES)
    if prefixes:
        all_prefixes.update(prefixes)
    # Longest namespace first so the most specific prefix wins.
    by_length = sorted(all_prefixes.items(), key=lambda item: -len(item[1]))

    def compact(term: Term) -> str:
        if isinstance(term, IRI):
            for label, namespace in by_length:
                if term.value.startswith(namespace):
                    local = term.value[len(namespace):]
                    if re.match(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$", local):
                        return f"{label}:{local}"
            return term.n3()
        return term.n3()

    used: set[str] = set()
    body_lines: list[str] = []
    by_subject: dict[Term, dict[IRI, list[Term]]] = {}
    for triple in sorted(triples):
        by_subject.setdefault(triple.subject, {}).setdefault(triple.predicate, []).append(triple.object)

    for subject, predicate_map in by_subject.items():
        parts: list[str] = []
        for predicate, objects in predicate_map.items():
            predicate_text = "a" if predicate == RDF.type else compact(predicate)
            object_text = ", ".join(compact(obj) for obj in objects)
            parts.append(f"{predicate_text} {object_text}")
        body_lines.append(f"{compact(subject)} " + " ;\n    ".join(parts) + " .")

    body = "\n".join(body_lines)
    for label, namespace in sorted(all_prefixes.items()):
        if f"{label}:" in body:
            used.add(label)
    header = "".join(
        f"@prefix {label}: <{all_prefixes[label]}> .\n" for label in sorted(used)
    )
    return header + ("\n" if header and body else "") + body + ("\n" if body else "")
