"""Standard vocabularies and the :class:`Namespace` helper.

A :class:`Namespace` makes building IRIs ergonomic::

    EX = Namespace("http://example.org/")
    EX.alice          # IRI('http://example.org/alice')
    EX["bob-1"]       # IRI('http://example.org/bob-1')

Pre-built vocabularies cover the terms used by the ρdf / RDFS / OWL-Horst
rule sets and the dataset generators: :data:`RDF`, :data:`RDFS`,
:data:`OWL`, :data:`XSD`, plus the BSBM-like namespaces used by
:mod:`repro.datasets.bsbm`.
"""

from __future__ import annotations

from .terms import IRI

__all__ = [
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "split_iri",
    "WELL_KNOWN_PREFIXES",
]


class Namespace:
    """A base IRI that mints terms via attribute or item access."""

    def __init__(self, base: str):
        if not isinstance(base, str) or not base:
            raise ValueError("namespace base must be a non-empty string")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local: str) -> IRI:
        return IRI(self._base + local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __contains__(self, iri) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __eq__(self, other):
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self):
        return hash(self._base)

    def __repr__(self):
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

WELL_KNOWN_PREFIXES: dict[str, str] = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "owl": OWL.base,
    "xsd": XSD.base,
}


def split_iri(iri: IRI) -> tuple[str, str]:
    """Split an IRI into (namespace, local name) at the last ``#`` or ``/``.

    >>> split_iri(IRI("http://example.org/ns#width"))
    ('http://example.org/ns#', 'width')
    """
    value = iri.value
    for separator in ("#", "/", ":"):
        index = value.rfind(separator)
        if index != -1 and index + 1 < len(value):
            return value[: index + 1], value[index + 1 :]
    return value, ""
