"""N-Triples parser and serializer (W3C N-Triples, RDF 1.1).

The paper measures "parsing and inferencing" together, so parsing is a
first-class substrate here rather than an external dependency.  This module
implements the full N-Triples grammar: IRIs, blank nodes, plain / language
-tagged / typed literals, ``\\uXXXX`` and ``\\UXXXXXXXX`` escapes, comments
and blank lines, with precise line-numbered errors.

Entry points:

* :func:`parse_ntriples` — parse a string into a list of triples.
* :func:`iter_ntriples` — lazily parse an iterable of lines (streams).
* :func:`parse_ntriples_file` / :func:`write_ntriples_file`.
* :func:`serialize_ntriples` — deterministic (sorted) serialization.
"""

from __future__ import annotations

import io
import re
from typing import Iterable, Iterator, TextIO

from .terms import BNode, IRI, Literal, Term, Triple

__all__ = [
    "NTriplesError",
    "parse_ntriples",
    "iter_ntriples",
    "parse_ntriples_file",
    "serialize_ntriples",
    "write_ntriples",
    "write_ntriples_file",
]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input, with line/column context."""

    def __init__(self, message: str, line_number: int | None = None, column: int | None = None):
        location = ""
        if line_number is not None:
            location = f" at line {line_number}"
            if column is not None:
                location += f", column {column + 1}"
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.column = column


_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


class _LineParser:
    """Recursive-descent parser over a single N-Triples line."""

    def __init__(self, line: str, line_number: int):
        self.line = line
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> NTriplesError:
        return NTriplesError(message, self.line_number, self.pos)

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def peek(self) -> str:
        return self.line[self.pos] if self.pos < len(self.line) else ""

    def skip_whitespace(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def parse_triple(self) -> Triple | None:
        self.skip_whitespace()
        if self.at_end() or self.peek() == "#":
            return None
        subject = self.parse_subject()
        self.skip_whitespace()
        predicate = self.parse_iri("predicate")
        self.skip_whitespace()
        obj = self.parse_object()
        self.skip_whitespace()
        self.expect(".")
        self.skip_whitespace()
        if not self.at_end() and self.peek() != "#":
            raise self.error("unexpected content after terminating '.'")
        return Triple(subject, predicate, obj)

    def parse_subject(self) -> IRI | BNode:
        char = self.peek()
        if char == "<":
            return self.parse_iri("subject")
        if char == "_":
            return self.parse_bnode()
        raise self.error(f"expected IRI or blank node as subject, found {char!r}")

    def parse_object(self) -> Term:
        char = self.peek()
        if char == "<":
            return self.parse_iri("object")
        if char == "_":
            return self.parse_bnode()
        if char == '"':
            return self.parse_literal()
        raise self.error(f"expected IRI, blank node or literal as object, found {char!r}")

    def parse_iri(self, role: str) -> IRI:
        if self.peek() != "<":
            raise self.error(f"expected IRI as {role}, found {self.peek()!r}")
        self.pos += 1
        chars: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated IRI")
            char = self.line[self.pos]
            if char == ">":
                self.pos += 1
                break
            if char == "\\":
                chars.append(self._parse_unicode_escape(allow_string_escapes=False))
            else:
                self.pos += 1
                chars.append(char)
        try:
            return IRI("".join(chars))
        except ValueError as exc:
            raise self.error(str(exc)) from exc

    def parse_bnode(self) -> BNode:
        if not self.line.startswith("_:", self.pos):
            raise self.error("expected blank node label to start with '_:'")
        self.pos += 2
        start = self.pos
        while self.pos < len(self.line) and self.line[self.pos] not in " \t<\"":
            self.pos += 1
        label = self.line[start : self.pos]
        # A trailing '.' glued to the label terminates the statement, not
        # the label (labels may contain internal dots).
        while label.endswith("."):
            label = label[:-1]
            self.pos -= 1
        if not label:
            raise self.error("empty blank node label")
        try:
            return BNode(label)
        except ValueError as exc:
            raise self.error(str(exc)) from exc

    def parse_literal(self) -> Literal:
        self.expect('"')
        chars: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal")
            char = self.line[self.pos]
            if char == '"':
                self.pos += 1
                break
            if char == "\\":
                chars.append(self._parse_unicode_escape(allow_string_escapes=True))
            else:
                self.pos += 1
                chars.append(char)
        lexical = "".join(chars)
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.line) and (self.line[self.pos].isalnum() or self.line[self.pos] == "-"):
                self.pos += 1
            language = self.line[start : self.pos]
            if not language:
                raise self.error("empty language tag")
            try:
                return Literal(lexical, language=language)
            except ValueError as exc:
                raise self.error(str(exc)) from exc
        if self.line.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.parse_iri("datatype")
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def _parse_unicode_escape(self, allow_string_escapes: bool) -> str:
        # self.line[self.pos] == '\\'
        self.pos += 1
        if self.at_end():
            raise self.error("dangling escape at end of line")
        escape_char = self.line[self.pos]
        self.pos += 1
        if escape_char == "u" or escape_char == "U":
            width = 4 if escape_char == "u" else 8
            digits = self.line[self.pos : self.pos + width]
            if len(digits) < width or not all(c in "0123456789abcdefABCDEF" for c in digits):
                raise self.error(f"invalid \\{escape_char} escape")
            self.pos += width
            code_point = int(digits, 16)
            if code_point > 0x10FFFF:
                raise self.error(f"\\U escape out of Unicode range: {digits}")
            return chr(code_point)
        if allow_string_escapes and escape_char in _ESCAPES:
            return _ESCAPES[escape_char]
        raise self.error(f"invalid escape sequence \\{escape_char}")


# Vectorized fast path: one compiled regex recognizes the overwhelmingly
# common statement shapes (no backslash escapes anywhere, ASCII language
# tags) in a single C-level scan instead of the per-character cursor of
# :class:`_LineParser`.  Anything the pattern does not match — escapes,
# unicode language tags, malformed lines — falls back to the strict
# parser, which either parses it or raises the precise positioned error.
# The fast path therefore accepts exactly the strict parser's language.
_IRI_BODY = r"[^>\\]*"
# Blank-node labels that do not end in '.' — a trailing dot belongs to the
# statement terminator in the strict grammar, and the ambiguous glued forms
# (`_:b1.`) must take the fallback so both parsers agree on every line.
_BNODE_BODY = r"[A-Za-z0-9_](?:[A-Za-z0-9_.-]*[A-Za-z0-9_-])?"
_FAST_LINE = re.compile(
    rf"[ \t]*(?:<({_IRI_BODY})>|_:({_BNODE_BODY}))"          # subject
    rf"[ \t]*<({_IRI_BODY})>"                                # predicate
    rf"[ \t]*(?:<({_IRI_BODY})>|_:({_BNODE_BODY})"           # object: IRI/bnode
    rf'|"([^"\\]*)"(?:@([A-Za-z0-9][A-Za-z0-9-]*)'           # ... or literal
    rf"|\^\^<({_IRI_BODY})>)?)"
    r"[ \t]+\.[ \t]*(?:#.*)?$"
).match


def _fast_triple(
    line: str, iris: dict, bnodes: dict
) -> "Triple | None | bool":
    """Parse one line via the fast path.

    Returns a :class:`Triple`, ``None`` for blank/comment lines, or
    ``False`` when the line needs the strict parser.  ``iris``/``bnodes``
    memoize token → term across lines (RDF data repeats terms heavily,
    so most lines construct no new term objects at all).
    """
    stripped = line.lstrip(" \t")
    if not stripped or stripped[0] == "#":
        return None
    found = _FAST_LINE(line)
    if found is None:
        return False
    s_iri, s_bnode, p_iri, o_iri, o_bnode, o_lex, o_lang, o_dt = found.groups()
    try:
        if s_iri is not None:
            subject = iris.get(s_iri)
            if subject is None:
                subject = iris[s_iri] = IRI(s_iri)
        else:
            subject = bnodes.get(s_bnode)
            if subject is None:
                subject = bnodes[s_bnode] = BNode(s_bnode)
        predicate = iris.get(p_iri)
        if predicate is None:
            predicate = iris[p_iri] = IRI(p_iri)
        if o_iri is not None:
            obj = iris.get(o_iri)
            if obj is None:
                obj = iris[o_iri] = IRI(o_iri)
        elif o_bnode is not None:
            obj = bnodes.get(o_bnode)
            if obj is None:
                obj = bnodes[o_bnode] = BNode(o_bnode)
        elif o_lang is not None:
            obj = Literal(o_lex, language=o_lang)
        elif o_dt is not None:
            datatype = iris.get(o_dt)
            if datatype is None:
                datatype = iris[o_dt] = IRI(o_dt)
            obj = Literal(o_lex, datatype=datatype)
        else:
            obj = Literal(o_lex)
        return Triple(subject, predicate, obj)
    except (ValueError, TypeError):
        # Term validation rejected it (e.g. an IRI with control chars):
        # re-parse strictly for the positioned error message.
        return False


def iter_ntriples(lines: Iterable[str]) -> Iterator[Triple]:
    """Lazily parse an iterable of N-Triples lines into triples.

    Blank lines and ``#`` comment lines are skipped.  This is the
    streaming entry point used by :class:`repro.reasoner.stream.FileStream`.
    """
    iris: dict = {}
    bnodes: dict = {}
    for line_number, line in enumerate(lines, start=1):
        line = line.rstrip("\r\n")
        triple = _fast_triple(line, iris, bnodes)
        if triple is None:
            continue
        if triple is False:
            triple = _LineParser(line, line_number).parse_triple()
            if triple is None:
                continue
        yield triple


def parse_ntriples(text: str) -> list[Triple]:
    """Parse an entire N-Triples document into a list of triples."""
    return list(iter_ntriples(io.StringIO(text)))


def parse_ntriples_file(path) -> list[Triple]:
    """Parse an N-Triples file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_ntriples(handle))


def write_ntriples(triples: Iterable[Triple], handle: TextIO, sort: bool = False) -> int:
    """Write triples in N-Triples syntax to an open text handle.

    Returns the number of statements written.  With ``sort=True`` the
    output is deterministic (term sort order), which makes serializations
    byte-comparable across runs.
    """
    if sort:
        triples = sorted(triples)
    count = 0
    for triple in triples:
        handle.write(triple.n3())
        handle.write("\n")
        count += 1
    return count


def serialize_ntriples(triples: Iterable[Triple], sort: bool = True) -> str:
    """Serialize triples to an N-Triples string (sorted by default)."""
    buffer = io.StringIO()
    write_ntriples(triples, buffer, sort=sort)
    return buffer.getvalue()


def write_ntriples_file(triples: Iterable[Triple], path, sort: bool = False) -> int:
    """Write triples to a file in N-Triples syntax."""
    with open(path, "w", encoding="utf-8") as handle:
        return write_ntriples(triples, handle, sort=sort)
