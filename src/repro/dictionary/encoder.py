"""Dictionary encoding of RDF terms to integers.

The paper's input manager "registers [triples] into a dictionary that maps
the expensive URIs ... to Longs" before anything touches the triple store.
Every component downstream of the input manager — buffers, rule modules,
distributors, the triple store — works exclusively on encoded triples,
which here are plain ``(int, int, int)`` tuples.  Tuples of small ints are
the cheapest hashable composite value in CPython, which is exactly the
role Longs play on the JVM.

:class:`TermDictionary` is append-only and thread-safe: ids are assigned
under a lock, decoding is lock-free (the id → term list only grows, and
list appends are atomic in CPython).
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

from ..rdf.terms import BNode, IRI, Literal, Term, Triple

__all__ = [
    "TermDictionary",
    "IdentityDictionary",
    "EncodedTriple",
    "encode_batch",
    "KIND_IRI",
    "KIND_BNODE",
    "KIND_LITERAL",
]

EncodedTriple = tuple[int, int, int]
"""An encoded statement: term ids for (subject, predicate, object)."""

KIND_IRI = 0
KIND_BNODE = 1
KIND_LITERAL = 2


class TermDictionary:
    """Bidirectional, thread-safe term ↔ integer-id mapping.

    Ids are dense, starting at 0, assigned in first-seen order.  The
    mapping is append-only: terms are never re-assigned or removed, so a
    decoded id is stable for the lifetime of the dictionary.

    >>> from repro.rdf import IRI
    >>> d = TermDictionary()
    >>> a = d.encode(IRI("http://example.org/a"))
    >>> d.decode(a)
    IRI('http://example.org/a')
    """

    __slots__ = ("_term_to_id", "_id_to_term", "_kinds", "_lock")

    def __init__(self, preregister: Iterable[Term] = ()):
        self._term_to_id: dict[Term, int] = {}
        self._id_to_term: list[Term] = []
        self._kinds: list[int] = []
        self._lock = threading.Lock()
        for term in preregister:
            self.encode(term)

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def encode(self, term: Term) -> int:
        """Return the id for ``term``, assigning a fresh one if unseen."""
        # Fast path without the lock: dict reads are safe under the GIL
        # and ids are never reassigned.
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        with self._lock:
            return self._encode_locked(term)

    def _encode_locked(self, term: Term) -> int:
        """Assign-or-return under the already-held lock (batch hot path)."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        term_id = len(self._id_to_term)
        self._id_to_term.append(term)
        if isinstance(term, Literal):
            self._kinds.append(KIND_LITERAL)
        elif isinstance(term, BNode):
            self._kinds.append(KIND_BNODE)
        elif isinstance(term, IRI):
            self._kinds.append(KIND_IRI)
        else:
            raise TypeError(f"not a concrete RDF term: {term!r}")
        self._term_to_id[term] = term_id
        return term_id

    def lookup(self, term: Term) -> int | None:
        """Return the id for ``term`` or ``None`` without assigning one."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term for an id.  Raises ``KeyError`` for unknown ids."""
        if 0 <= term_id < len(self._id_to_term):
            return self._id_to_term[term_id]
        raise KeyError(f"unknown term id {term_id}")

    def kind(self, term_id: int) -> int:
        """The kind tag (:data:`KIND_IRI` / :data:`KIND_BNODE` /
        :data:`KIND_LITERAL`) for an id.  Rules use this for the literal
        guards that keep e.g. rdfs4b from typing literals as resources."""
        if 0 <= term_id < len(self._kinds):
            return self._kinds[term_id]
        raise KeyError(f"unknown term id {term_id}")

    def is_literal(self, term_id: int) -> bool:
        """True iff the id denotes a literal."""
        return self.kind(term_id) == KIND_LITERAL

    def encode_triple(self, triple: Triple) -> EncodedTriple:
        """Encode a :class:`~repro.rdf.terms.Triple` to an id tuple."""
        return (
            self.encode(triple.subject),
            self.encode(triple.predicate),
            self.encode(triple.object),
        )

    def decode_triple(self, encoded: EncodedTriple) -> Triple:
        """Decode an id tuple back to a :class:`~repro.rdf.terms.Triple`."""
        subject_id, predicate_id, object_id = encoded
        return Triple(
            self.decode(subject_id),
            self.decode(predicate_id),
            self.decode(object_id),
        )

    def encode_triples(self, triples: Iterable[Triple]) -> Iterator[EncodedTriple]:
        """Encode many triples lazily."""
        encode = self.encode
        for triple in triples:
            yield (encode(triple.subject), encode(triple.predicate), encode(triple.object))

    def encode_many(self, triples: Iterable[Triple]) -> list[EncodedTriple]:
        """Encode a batch with at most one lock acquisition.

        The lock-free fast path resolves every already-known term (the
        steady state of a long-running stream, where the vocabulary has
        converged); the triples with unseen terms — if any — are then
        encoded together under a single lock, instead of paying one
        lock round-trip per fresh term as per-triple encoding does.
        """
        get = self._term_to_id.get
        out: list[EncodedTriple | None] = []
        misses: list[tuple[int, Triple]] = []
        for triple in triples:
            subject_id = get(triple.subject)
            predicate_id = get(triple.predicate)
            object_id = get(triple.object)
            if subject_id is None or predicate_id is None or object_id is None:
                misses.append((len(out), triple))
                out.append(None)
            else:
                out.append((subject_id, predicate_id, object_id))
        if misses:
            with self._lock:
                encode_locked = self._encode_locked
                for position, triple in misses:
                    out[position] = (
                        encode_locked(triple.subject),
                        encode_locked(triple.predicate),
                        encode_locked(triple.object),
                    )
        return out

    def decode_triples(self, encoded: Iterable[EncodedTriple]) -> Iterator[Triple]:
        """Decode many id tuples lazily."""
        for item in encoded:
            yield self.decode_triple(item)

    def snapshot_terms(self) -> list[Term]:
        """A copy of the id → term table (index == id)."""
        return list(self._id_to_term)


def encode_batch(dictionary, triples: Iterable[Triple]) -> list[EncodedTriple]:
    """Encode a batch through ``dictionary``'s fastest available path.

    Uses ``encode_many`` when the dictionary provides it; duck-typed
    dictionaries with only the per-triple API still work (every batch
    call site goes through here, so the fallback lives in one place).
    """
    encode_many = getattr(dictionary, "encode_many", None)
    if encode_many is not None:
        return encode_many(triples)
    return [dictionary.encode_triple(triple) for triple in triples]


class IdentityDictionary:
    """A no-op dictionary: terms *are* their own ids.

    The ablation counterpart of :class:`TermDictionary` — it measures
    what the paper's dictionary encoding buys.  Every component that
    takes a dictionary accepts this one (terms are hashable and
    comparable, so stores and rules work unchanged); only the cost
    profile differs: triple keys hash three term objects instead of
    three small ints.
    """

    __slots__ = ()

    def __len__(self) -> int:
        return 0  # nothing is stored

    def __contains__(self, term: Term) -> bool:
        return True

    def encode(self, term: Term):
        if not isinstance(term, (IRI, BNode, Literal)):
            raise TypeError(f"not a concrete RDF term: {term!r}")
        return term

    def lookup(self, term: Term):
        return term

    def decode(self, term_id) -> Term:
        return term_id

    def kind(self, term_id) -> int:
        if isinstance(term_id, Literal):
            return KIND_LITERAL
        if isinstance(term_id, BNode):
            return KIND_BNODE
        return KIND_IRI

    def is_literal(self, term_id) -> bool:
        return isinstance(term_id, Literal)

    def encode_triple(self, triple: Triple):
        return (triple.subject, triple.predicate, triple.object)

    def decode_triple(self, encoded) -> Triple:
        return Triple(*encoded)

    def encode_triples(self, triples: Iterable[Triple]) -> Iterator:
        for triple in triples:
            yield (triple.subject, triple.predicate, triple.object)

    def encode_many(self, triples: Iterable[Triple]) -> list:
        return [(t.subject, t.predicate, t.object) for t in triples]

    def decode_triples(self, encoded: Iterable) -> Iterator[Triple]:
        for item in encoded:
            yield Triple(*item)

    def snapshot_terms(self) -> list[Term]:
        return []
