"""Term ↔ integer dictionary encoding (the input manager's dictionary)."""

from .encoder import (
    KIND_BNODE,
    KIND_IRI,
    KIND_LITERAL,
    EncodedTriple,
    IdentityDictionary,
    TermDictionary,
)

__all__ = [
    "TermDictionary",
    "IdentityDictionary",
    "EncodedTriple",
    "KIND_IRI",
    "KIND_BNODE",
    "KIND_LITERAL",
]
