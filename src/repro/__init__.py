"""Slider: an efficient incremental RDF reasoner — full reproduction.

Reproduction of Chevalier, Subercaze, Gravier & Laforest, *Slider: an
Efficient Incremental Reasoner*, ACM SIGMOD 2015.

Quickstart::

    from repro import Slider
    from repro.rdf import IRI, RDF, RDFS, Triple

    with Slider(fragment="rdfs") as reasoner:
        reasoner.add([
            Triple(IRI("http://ex/Cat"), RDFS.subClassOf, IRI("http://ex/Animal")),
            Triple(IRI("http://ex/tom"), RDF.type, IRI("http://ex/Cat")),
        ])
        reasoner.flush()
        assert Triple(IRI("http://ex/tom"), RDF.type, IRI("http://ex/Animal")) \
            in reasoner.graph
"""

from .dictionary import EncodedTriple, TermDictionary
from .rdf import OWL, RDF, RDFS, XSD, BNode, IRI, Literal, Namespace, Triple, Variable
from .reasoner import (
    Fragment,
    JoinRule,
    Pattern,
    Rule,
    SingleRule,
    Slider,
    SliderError,
    Trace,
    Var,
    available_fragments,
    get_fragment,
    register_fragment,
)
from .store import (
    Graph,
    HashDictStore,
    ShardedTripleStore,
    TripleStore,
    available_backends,
    create_store,
    register_backend,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Slider",
    "SliderError",
    "Graph",
    "TripleStore",
    "HashDictStore",
    "ShardedTripleStore",
    "create_store",
    "register_backend",
    "available_backends",
    "TermDictionary",
    "EncodedTriple",
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Triple",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "Fragment",
    "get_fragment",
    "register_fragment",
    "available_fragments",
    "Rule",
    "SingleRule",
    "JoinRule",
    "Pattern",
    "Var",
    "Trace",
]
