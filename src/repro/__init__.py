"""Slider: an efficient incremental RDF reasoner — full reproduction.

Reproduction of Chevalier, Subercaze, Gravier & Laforest, *Slider: an
Efficient Incremental Reasoner*, ACM SIGMOD 2015.

Quickstart (the delta-centric API)::

    from repro import Slider
    from repro.rdf import IRI, RDF, RDFS, Triple

    with Slider(fragment="rdfs") as reasoner:
        with reasoner.transaction() as tx:
            tx.add([
                Triple(IRI("http://ex/Cat"), RDFS.subClassOf, IRI("http://ex/Animal")),
                Triple(IRI("http://ex/tom"), RDF.type, IRI("http://ex/Cat")),
            ])
        assert Triple(IRI("http://ex/tom"), RDF.type, IRI("http://ex/Animal")) \
            in tx.report.inferred_added

Every mutation commits through :meth:`Slider.apply` as a numbered
revision whose :class:`InferenceReport` is the exact store diff;
:meth:`Slider.subscribe` turns standing BGP queries into push-based
binding deltas.  The one-shot ``add``/``retract`` shims remain for
migration (see the README's API section).
"""

from .dictionary import EncodedTriple, TermDictionary
from .rdf import OWL, RDF, RDFS, XSD, BNode, IRI, Literal, Namespace, Triple, Variable
from .persist import PersistenceManager
from .reasoner import (
    CountWindow,
    Delta,
    Fragment,
    InferenceReport,
    JoinRule,
    Pattern,
    RecoveryInfo,
    Rule,
    SingleRule,
    Slider,
    SliderError,
    StreamPump,
    Subscription,
    SubscriptionEvent,
    Ticket,
    TimeWindow,
    Trace,
    Transaction,
    Var,
    WindowedReasoner,
    available_fragments,
    get_fragment,
    register_fragment,
)
from .replication import ChangeFeed, Follower
from .server import ReadView, ReasoningService
from .store import (
    Binding,
    Graph,
    HashDictStore,
    ShardedTripleStore,
    TriplePattern,
    TripleStore,
    ask,
    available_backends,
    construct,
    create_store,
    register_backend,
    select,
    solve,
    unify,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Slider",
    "SliderError",
    "RecoveryInfo",
    "Delta",
    "Transaction",
    "InferenceReport",
    "Ticket",
    "Subscription",
    "SubscriptionEvent",
    "WindowedReasoner",
    "CountWindow",
    "TimeWindow",
    "StreamPump",
    "ReasoningService",
    "ReadView",
    "ChangeFeed",
    "Follower",
    "TriplePattern",
    "Binding",
    "solve",
    "select",
    "ask",
    "construct",
    "unify",
    "Graph",
    "TripleStore",
    "HashDictStore",
    "ShardedTripleStore",
    "create_store",
    "register_backend",
    "available_backends",
    "TermDictionary",
    "EncodedTriple",
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Triple",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "Fragment",
    "get_fragment",
    "register_fragment",
    "available_fragments",
    "Rule",
    "SingleRule",
    "JoinRule",
    "Pattern",
    "Var",
    "Trace",
    "PersistenceManager",
]
