"""Term-level convenience wrapper around the encoded triple store.

:class:`Graph` binds a :class:`~repro.dictionary.TermDictionary` to a
storage backend (any :class:`~repro.store.backends.base.TripleStore`;
pass a spec string like ``"sharded:8"`` to choose one) so callers can
speak in RDF terms while storage and matching stay in integer space.  It
is the type most public APIs accept and return; the reasoner uses the
same two components internally but addresses them separately for
performance.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..dictionary.encoder import EncodedTriple, TermDictionary, encode_batch
from ..rdf.ntriples import iter_ntriples, write_ntriples
from ..rdf.terms import Term, Triple
from ..rdf.turtle import parse_turtle
from .backends import TripleStore, create_store

__all__ = ["Graph"]


class Graph:
    """A mutable set of triples with pattern matching and file I/O.

    >>> from repro.rdf import IRI, RDF
    >>> g = Graph()
    >>> _ = g.add(Triple(IRI("http://ex/a"), RDF.type, IRI("http://ex/C")))
    >>> len(g)
    1
    """

    def __init__(
        self,
        dictionary: TermDictionary | None = None,
        store: TripleStore | str | None = None,
    ):
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self.store = create_store(store)

    # --- mutation ----------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Add one triple; returns True iff it was new."""
        return self.store.add(self.dictionary.encode_triple(triple))

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns how many were new."""
        encoded = encode_batch(self.dictionary, triples)
        return len(self.store.add_all(encoded))

    # --- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, triple: Triple) -> bool:
        subject = self.dictionary.lookup(triple.subject)
        predicate = self.dictionary.lookup(triple.predicate)
        obj = self.dictionary.lookup(triple.object)
        if subject is None or predicate is None or obj is None:
            return False
        return (subject, predicate, obj) in self.store

    def __iter__(self) -> Iterator[Triple]:
        decode = self.dictionary.decode_triple
        for encoded in self.store:
            yield decode(encoded)

    def triples(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the pattern (``None`` = wildcard)."""
        pattern: list[int | None] = []
        for term in (subject, predicate, obj):
            if term is None:
                pattern.append(None)
            else:
                term_id = self.dictionary.lookup(term)
                if term_id is None:
                    return  # term unseen => no matches
                pattern.append(term_id)
        decode = self.dictionary.decode_triple
        for encoded in self.store.match(*pattern):
            yield decode(encoded)

    def count(self, subject=None, predicate=None, obj=None) -> int:
        """Count matching triples."""
        return sum(1 for _ in self.triples(subject, predicate, obj))

    def subjects(self, predicate: Term, obj: Term) -> Iterator[Term]:
        """Yield subjects s with (s, predicate, obj) present."""
        for triple in self.triples(None, predicate, obj):
            yield triple.subject

    def objects(self, subject: Term, predicate: Term) -> Iterator[Term]:
        """Yield objects o with (subject, predicate, o) present."""
        for triple in self.triples(subject, predicate, None):
            yield triple.object

    # --- BGP queries ---------------------------------------------------------
    # Conveniences over repro.store.query (imported lazily: query.py
    # imports Graph for its signatures, so a module-level import here
    # would be circular).
    def solve(self, patterns):
        """All solutions of a conjunctive pattern (see :func:`repro.store.query.solve`)."""
        from .query import solve as _solve

        return _solve(self, patterns)

    def select(self, variables, patterns, distinct: bool = True):
        """SPARQL-SELECT-like projection (see :func:`repro.store.query.select`)."""
        from .query import select as _select

        return _select(self, variables, patterns, distinct=distinct)

    def ask(self, patterns) -> bool:
        """Does at least one solution exist?"""
        from .query import ask as _ask

        return _ask(self, patterns)

    def construct(self, template, patterns):
        """Instantiate ``template`` for every solution."""
        from .query import construct as _construct

        return _construct(self, template, patterns)

    # --- encoded access (for the reasoner / baselines) -----------------------
    def encoded(self) -> Iterator[EncodedTriple]:
        """Iterate raw encoded triples (no decoding cost)."""
        return iter(self.store)

    # --- I/O -----------------------------------------------------------------
    def load_ntriples(self, path) -> int:
        """Load an N-Triples file; returns number of *new* triples."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.add_all(iter_ntriples(handle))

    def load_turtle(self, path) -> int:
        """Load a Turtle file; returns number of *new* triples."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.add_all(parse_turtle(handle.read()))

    def dump_ntriples(self, path, sort: bool = True) -> int:
        """Write all triples to an N-Triples file."""
        with open(path, "w", encoding="utf-8") as handle:
            return write_ntriples(iter(self), handle, sort=sort)

    def copy(self) -> "Graph":
        """An independent copy sharing no mutable state."""
        clone = Graph()
        clone.add_all(iter(self))
        return clone

    def __repr__(self):
        return f"<Graph with {len(self)} triples>"
