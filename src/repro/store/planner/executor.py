"""Plan execution in encoded integer space.

The executor runs a :class:`~repro.store.planner.plan.QueryPlan` against
a :class:`~repro.store.graph.Graph`'s *encoded* store: every join step
probes the permutation index the plan chose, working solutions map
variables to integer ids, and terms are decoded exactly once — for the
final bindings.  This is where the planner's speed comes from as much
as from join ordering: the naive evaluator decodes every candidate
triple and compares term objects at every step.

Backends without the optional permutation-index surface (see
:mod:`repro.store.backends.base`) degrade to :meth:`match` scans for the
subject-/object-first access paths; the predicate-first paths only need
the core protocol.
"""

from __future__ import annotations

from typing import Sequence

from ...rdf.terms import Variable
from ..graph import Graph
from ..query import Binding, TriplePattern
from .plan import BOUND, CONST, FREE, QueryPlan, plan_bgp

__all__ = ["solve_planned", "execute_plan", "execute_encoded"]

#: Reserved working-solution key carrying seed variables whose terms are
#: unseen by the dictionary (they cannot be encoded, but a seed variable
#: that occurs in no pattern is unconstrained and must survive to the
#: output, matching the naive evaluator).
_CARRY = object()


def solve_planned(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    bindings: Sequence[Binding] | None = None,
) -> list[Binding]:
    """Drop-in planner-backed equivalent of :func:`repro.store.query.solve`."""
    if not patterns:
        return [dict(b) for b in bindings] if bindings else [{}]
    if not bindings:
        return execute_plan(graph, plan_bgp(graph, patterns))
    # Plans assume a uniform bound-variable set; heterogeneous seeds
    # (different key sets) are grouped and planned per shape.
    groups: dict[frozenset, list[Binding]] = {}
    for seed in bindings:
        groups.setdefault(frozenset(seed), []).append(seed)
    solutions: list[Binding] = []
    for keys, seeds in groups.items():
        plan = plan_bgp(graph, patterns, bound=keys)
        solutions.extend(execute_plan(graph, plan, bindings=seeds))
    return solutions


def execute_plan(
    graph: Graph,
    plan: QueryPlan,
    bindings: Sequence[Binding] | None = None,
    step_counters: list[int] | None = None,
) -> list[Binding]:
    """Execute a plan over term-level seeds; return term-level bindings."""
    lookup = graph.dictionary.lookup
    seeds: list[dict] = []
    if bindings:
        for seed in bindings:
            encoded: dict = {}
            carry: dict = {}
            dead = False
            for variable, term in seed.items():
                if variable in plan.variables:
                    term_id = lookup(term)
                    if term_id is None:
                        dead = True  # constrained to a term no triple holds
                        break
                    encoded[variable] = term_id
                else:
                    carry[variable] = term
            if dead:
                continue
            if carry:
                encoded[_CARRY] = carry
            seeds.append(encoded)
        if not seeds:
            if step_counters is not None:
                step_counters.extend(0 for _ in plan.steps)
            return []
    else:
        seeds = [{}]
    solutions = execute_encoded(graph, plan, seeds, step_counters=step_counters)
    decode = graph.dictionary.decode
    results: list[Binding] = []
    for solution in solutions:
        binding: Binding = {}
        for variable, value in solution.items():
            if variable is _CARRY:
                binding.update(value)
            else:
                binding[variable] = decode(value)
        results.append(binding)
    return results


def execute_encoded(
    graph: Graph,
    plan: QueryPlan,
    seeds: list[dict],
    step_counters: list[int] | None = None,
) -> list[dict]:
    """Run the join pipeline over encoded seed bindings (var -> id)."""
    store = graph.store
    lookup = graph.dictionary.lookup
    solutions = seeds
    for step in plan.steps:
        if not solutions:
            if step_counters is not None:
                step_counters.append(0)
            continue
        states, failed = _resolve_states(step.states, lookup)
        solutions = [] if failed else _apply_step(store, states, solutions)
        if step_counters is not None:
            step_counters.append(len(solutions))
    return solutions


def _resolve_states(states, lookup):
    """Resolve constant terms to ids; report failure on unseen constants."""
    resolved = []
    for tag, payload in states:
        if tag == CONST:
            term_id = lookup(payload)
            if term_id is None:
                return (), True
            resolved.append((CONST, term_id))
        else:
            resolved.append((tag, payload))
    return tuple(resolved), False


def _apply_step(store, states, solutions: list[dict]) -> list[dict]:
    (s_tag, s_val), (p_tag, p_val), (o_tag, o_val) = states
    out: list[dict] = []

    if p_tag != FREE:
        if s_tag != FREE and o_tag != FREE:
            for solution in solutions:
                s = s_val if s_tag == CONST else solution[s_val]
                p = p_val if p_tag == CONST else solution[p_val]
                o = o_val if o_tag == CONST else solution[o_val]
                if (s, p, o) in store:
                    out.append(solution)
            return out
        if s_tag != FREE:  # bind the object from the PSO permutation
            objects = store.objects
            for solution in solutions:
                s = s_val if s_tag == CONST else solution[s_val]
                p = p_val if p_tag == CONST else solution[p_val]
                for o in objects(p, s):
                    extended = dict(solution)
                    extended[o_val] = o
                    out.append(extended)
            return out
        if o_tag != FREE:  # bind the subject from the POS permutation
            subjects = store.subjects
            for solution in solutions:
                p = p_val if p_tag == CONST else solution[p_val]
                o = o_val if o_tag == CONST else solution[o_val]
                for s in subjects(p, o):
                    extended = dict(solution)
                    extended[s_val] = s
                    out.append(extended)
            return out
        # Predicate known, both ends free: walk the predicate partition.
        pairs = store.pairs_for_predicate
        same_variable = s_val == o_val
        for solution in solutions:
            p = p_val if p_tag == CONST else solution[p_val]
            for s, o in pairs(p):
                if same_variable:
                    if s != o:
                        continue
                    extended = dict(solution)
                    extended[s_val] = s
                else:
                    extended = dict(solution)
                    extended[s_val] = s
                    extended[o_val] = o
                out.append(extended)
        return out

    # Free predicate variable: use the SPO / OSP permutations when the
    # backend has them, else fall back to match() scans.
    if s_tag != FREE and o_tag != FREE:
        between = getattr(store, "predicates_between", None)
        for solution in solutions:
            s = s_val if s_tag == CONST else solution[s_val]
            o = o_val if o_tag == CONST else solution[o_val]
            predicates = (
                between(s, o)
                if between is not None
                else [t[1] for t in store.match(s, None, o)]
            )
            for p in predicates:
                extended = dict(solution)
                extended[p_val] = p
                out.append(extended)
        return out
    if s_tag != FREE:
        by_subject = getattr(store, "triples_for_subject", None)
        for solution in solutions:
            s = s_val if s_tag == CONST else solution[s_val]
            triples = (
                by_subject(s) if by_subject is not None else store.match(s, None, None)
            )
            _extend_free(solutions=out, base=solution, triples=triples, states=states)
        return out
    if o_tag != FREE:
        by_object = getattr(store, "triples_for_object", None)
        for solution in solutions:
            o = o_val if o_tag == CONST else solution[o_val]
            triples = (
                by_object(o) if by_object is not None else store.match(None, None, o)
            )
            _extend_free(solutions=out, base=solution, triples=triples, states=states)
        return out
    # Nothing known: full scan.
    all_triples = store.match()
    for solution in solutions:
        _extend_free(solutions=out, base=solution, triples=all_triples, states=states)
    return out


def _extend_free(solutions: list[dict], base: dict, triples, states) -> None:
    """Generic extension: bind every FREE position, honouring repeats."""
    for triple in triples:
        extended = dict(base)
        consistent = True
        for (tag, payload), value in zip(states, triple):
            if tag != FREE:
                continue
            previous = extended.get(payload)
            if previous is None:
                extended[payload] = value
            elif previous != value:
                consistent = False
                break
        if consistent:
            solutions.append(extended)


def _pattern_variables(pattern: TriplePattern) -> set:
    return {term for term in pattern if isinstance(term, Variable)}
