"""Cost-based BGP query planning over the permutation-indexed backends.

The naive evaluator in :mod:`repro.store.query` re-sorts patterns with a
crude per-pattern guess and matches term-level triples.  This package is
the relational treatment of the same problem:

* :mod:`~repro.store.planner.plan` — compile a BGP into a
  :class:`QueryPlan`: greedy selectivity ordering driven by the
  backends' O(1) per-predicate statistics (``predicate_stats``), each
  join step bound to the cheapest index permutation (PSO / POS / SPO /
  OSP / membership / scan) for its bound-position shape;
* :mod:`~repro.store.planner.executor` — run a plan entirely in encoded
  integer space, decoding only the final bindings, with optional
  per-step actual-row counters for ``explain``;
* :mod:`~repro.store.planner.incremental` — compile a *standing* BGP
  into per-delta join plans (one per pattern position a delta triple can
  enter through), the O(delta) maintenance path the subscription layer
  uses instead of re-running seeded ``solve`` every revision.

``solve`` in :mod:`repro.store.query` delegates here; the written-order
reference evaluator (``solve_naive``) stays behind as the differential
oracle's ground truth.
"""

from .executor import execute_plan, solve_planned
from .incremental import IncrementalBGPPlan
from .plan import PlanStep, QueryPlan, explain_plan, plan_bgp

__all__ = [
    "QueryPlan",
    "PlanStep",
    "plan_bgp",
    "explain_plan",
    "execute_plan",
    "solve_planned",
    "IncrementalBGPPlan",
]
