"""Incremental join plans for standing BGPs.

Following the "queries under updates" treatment, a standing BGP is
compiled *once* into k+1 plans (k = pattern count):

* the **full plan** — used to materialize the initial solution set at
  registration time;
* one **rest plan per pattern** — the join of the other k-1 patterns,
  ordered assuming that pattern's variables are already bound.  When a
  committed delta adds triples, each added triple is unified against
  each pattern *in encoded space*; every hit seeds the matching rest
  plan, so maintenance work is O(delta × plan), never O(data).

Removals need no plan at all: a maintained solution dies iff one of its
fully-instantiated supporting triples is net-removed (the subscription
layer keeps that logic).

Plans age as the graph grows — statistics collected over an empty graph
at subscribe time would order joins arbitrarily forever — so the plan
recompiles itself when the store size drifts past 2× (either way) of
the size it was planned at.
"""

from __future__ import annotations

from typing import Sequence

from ...rdf.terms import Variable
from ..graph import Graph
from ..query import Binding, TriplePattern
from .executor import execute_encoded, execute_plan
from .plan import plan_bgp

__all__ = ["IncrementalBGPPlan"]

#: Recompile when the store size drifts past this factor of the planned
#: size (with a small absolute floor so tiny graphs don't thrash).
_REPLAN_FACTOR = 2
_REPLAN_FLOOR = 64


class IncrementalBGPPlan:
    """Compiled maintenance plans for one standing BGP."""

    __slots__ = (
        "patterns",
        "_slots",
        "_rest_patterns",
        "_full_plan",
        "_rest_plans",
        "_planned_size",
    )

    def __init__(self, patterns: Sequence[TriplePattern]):
        self.patterns: tuple[TriplePattern, ...] = tuple(tuple(p) for p in patterns)
        # Per pattern: ('v', Variable) / ('c', term) slot tags, plus the
        # written-order rest of the BGP it seeds.
        self._slots = tuple(
            tuple(
                ("v", term) if isinstance(term, Variable) else ("c", term)
                for term in pattern
            )
            for pattern in self.patterns
        )
        self._rest_patterns = tuple(
            self.patterns[:index] + self.patterns[index + 1 :]
            for index in range(len(self.patterns))
        )
        self._full_plan = None
        self._rest_plans: tuple | None = None
        self._planned_size = -1

    # --- compilation -------------------------------------------------------
    def compile(self, graph: Graph) -> None:
        """(Re)build all plans against the graph's current statistics."""
        self._full_plan = plan_bgp(graph, self.patterns)
        self._rest_plans = tuple(
            plan_bgp(
                graph,
                rest,
                bound=frozenset(
                    term for term in self.patterns[index] if isinstance(term, Variable)
                ),
            )
            for index, rest in enumerate(self._rest_patterns)
        )
        self._planned_size = len(graph.store)

    def _ensure_fresh(self, graph: Graph) -> None:
        if self._full_plan is None:
            self.compile(graph)
            return
        size = len(graph.store)
        planned = self._planned_size
        if (
            size > planned * _REPLAN_FACTOR + _REPLAN_FLOOR
            or planned > size * _REPLAN_FACTOR + _REPLAN_FLOOR
        ):
            self.compile(graph)

    # --- evaluation --------------------------------------------------------
    def solutions(self, graph: Graph) -> list[Binding]:
        """Full materialization (registration / reseeding)."""
        self._ensure_fresh(graph)
        return execute_plan(graph, self._full_plan)

    def additions(
        self, graph: Graph, added_encoded: Sequence[tuple[int, int, int]]
    ) -> list[Binding]:
        """Candidate new solutions introduced by a delta's added triples.

        Returns term-level bindings, possibly with duplicates across
        entry patterns — the caller dedupes against its maintained set.
        """
        if not added_encoded:
            return []
        self._ensure_fresh(graph)
        lookup = graph.dictionary.lookup
        decode = graph.dictionary.decode
        results: list[Binding] = []
        for index, slots in enumerate(self._slots):
            const_ids = self._resolve_constants(slots, lookup)
            if const_ids is None:
                continue  # a constant this pattern needs is unseen: no match
            seeds = []
            for triple in added_encoded:
                binding = self._unify_ids(slots, const_ids, triple)
                if binding is not None:
                    seeds.append(binding)
            if not seeds:
                continue
            rest_plan = self._rest_plans[index]
            if rest_plan.patterns:
                matched = execute_encoded(graph, rest_plan, seeds)
            else:
                matched = seeds
            for solution in matched:
                results.append(
                    {variable: decode(value) for variable, value in solution.items()}
                )
        return results

    # --- encoded-space helpers --------------------------------------------
    @staticmethod
    def _resolve_constants(slots, lookup):
        const_ids = []
        for tag, term in slots:
            if tag == "c":
                term_id = lookup(term)
                if term_id is None:
                    return None
                const_ids.append(term_id)
            else:
                const_ids.append(None)
        return const_ids

    @staticmethod
    def _unify_ids(slots, const_ids, triple):
        binding: dict = {}
        for (tag, term), const_id, value in zip(slots, const_ids, triple):
            if tag == "c":
                if const_id != value:
                    return None
            else:
                previous = binding.get(term)
                if previous is None:
                    binding[term] = value
                elif previous != value:
                    return None
        return binding

    def __repr__(self):
        return (
            f"<IncrementalBGPPlan patterns={len(self.patterns)} "
            f"planned_size={self._planned_size}>"
        )
