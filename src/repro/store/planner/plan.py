"""BGP compilation: statistics-driven join ordering and index selection.

A plan is built per query (planning is O(k²) pattern comparisons with
O(1) statistics lookups per comparison, negligible next to execution)
or once per standing subscription.  The cost model estimates the row
count each candidate pattern would produce given the variables already
bound, then greedily appends the cheapest *connected* pattern —
disconnected patterns (sharing no bound variable) are deferred until
nothing connected remains, avoiding accidental cartesian products.

Estimates come from the backends' permutation-index statistics:

========================  =============================================
bound positions           estimate
========================  =============================================
s, p, o                   1 (membership probe)
s, p                      count(p) / distinct_subjects(p)
p, o                      count(p) / distinct_objects(p)
p                         count(p)
s, o (p free)             2 (OSP probe of one (s, o) pair)
s or o alone (p free)     count_subject / count_object when the term is
                          a constant, else sqrt(|store|)
none                      |store| (full scan)
========================  =============================================

A *join-bound* predicate variable (bound by an earlier step, value
unknown at plan time) is priced at the mean partition size.  Ties break
on the written pattern index, so plans are deterministic.
"""

from __future__ import annotations

from typing import Sequence

from ...rdf.terms import Variable
from ..graph import Graph
from ..query import Binding, TriplePattern

__all__ = ["PlanStep", "QueryPlan", "plan_bgp", "explain_plan", "pattern_text"]

#: Position-state tags used in :attr:`PlanStep.states`.
CONST = "c"  #: constant term (id resolved at execution start)
BOUND = "b"  #: variable bound by a seed or an earlier step
FREE = "f"  #: variable this step binds

#: Access-path names, keyed by (predicate known, subject known, object known).
_ACCESS = {
    (True, True, True): "membership",
    (True, True, False): "pso.objects",
    (True, False, True): "pos.subjects",
    (True, False, False): "p.pairs",
    (False, True, True): "osp.predicates_between",
    (False, True, False): "spo.subject",
    (False, False, True): "osp.object",
    (False, False, False): "scan",
}


class PlanStep:
    """One join step: a pattern, its access path, and its cost estimate."""

    __slots__ = ("index", "pattern", "states", "access", "estimated_rows")

    def __init__(
        self,
        index: int,
        pattern: TriplePattern,
        states: tuple[tuple[str, object], ...],
        access: str,
        estimated_rows: float,
    ):
        self.index = index
        self.pattern = pattern
        self.states = states
        self.access = access
        self.estimated_rows = estimated_rows

    def __repr__(self):
        return (
            f"<PlanStep #{self.index} {self.access} "
            f"est={self.estimated_rows:.1f}>"
        )


class QueryPlan:
    """An ordered sequence of :class:`PlanStep` for one BGP."""

    __slots__ = ("patterns", "steps", "variables", "planned_size")

    def __init__(
        self,
        patterns: tuple[TriplePattern, ...],
        steps: tuple[PlanStep, ...],
        variables: frozenset,
        planned_size: int,
    ):
        self.patterns = patterns
        self.steps = steps
        self.variables = variables
        self.planned_size = planned_size

    def describe(self) -> list[dict]:
        """The explain rows (estimated side; actuals come from execution)."""
        return [
            {
                "step": position,
                "pattern": pattern_text(step.pattern),
                "written_index": step.index,
                "access": step.access,
                "estimated_rows": round(step.estimated_rows, 2),
            }
            for position, step in enumerate(self.steps)
        ]

    def __repr__(self):
        order = ",".join(str(step.index) for step in self.steps)
        return f"<QueryPlan order=[{order}] patterns={len(self.patterns)}>"


def pattern_text(pattern: TriplePattern) -> str:
    """Human-readable pattern rendering for explain output."""
    return " ".join(_term_text(term) for term in pattern)


def _term_text(term) -> str:
    if isinstance(term, Variable):
        return f"?{term.name}"
    value = getattr(term, "value", None)
    if value is not None and type(term).__name__ == "IRI":
        return f"<{value}>"
    return repr(term)


def _variables(pattern: TriplePattern) -> set:
    return {term for term in pattern if isinstance(term, Variable)}


def _predicate_stats(store, predicate_id: int) -> tuple[int, int, int]:
    stats = getattr(store, "predicate_stats", None)
    if stats is not None:
        return stats(predicate_id)
    count = store.count_predicate(predicate_id)
    # No distinct counters on this backend: assume square fan-out.
    side = max(1, int(count**0.5))
    return (count, side, side)


def _estimate(
    graph: Graph,
    pattern: TriplePattern,
    bound: set,
    size: int,
    mean_partition: float,
) -> float:
    subject, predicate, obj = pattern
    s_known = not isinstance(subject, Variable) or subject in bound
    o_known = not isinstance(obj, Variable) or obj in bound
    store = graph.store

    if not isinstance(predicate, Variable):
        predicate_id = graph.dictionary.lookup(predicate)
        if predicate_id is None:
            return 0.0
        count, distinct_s, distinct_o = _predicate_stats(store, predicate_id)
        if not count:
            return 0.0
        if s_known and o_known:
            return 1.0
        if s_known:
            return count / max(1, distinct_s)
        if o_known:
            return count / max(1, distinct_o)
        return float(count)

    if predicate in bound:
        # Join-bound predicate: value unknown at plan time, price the
        # mean partition and sharpen when the ends are known too.
        if s_known and o_known:
            return 1.0
        if s_known or o_known:
            return max(1.0, mean_partition**0.5)
        return max(1.0, mean_partition)

    # Free predicate variable.
    if s_known and o_known:
        return 2.0
    if s_known:
        if not isinstance(subject, Variable):
            counter = getattr(store, "count_subject", None)
            if counter is not None:
                subject_id = graph.dictionary.lookup(subject)
                return 0.0 if subject_id is None else float(counter(subject_id))
        return max(1.0, float(size) ** 0.5)
    if o_known:
        if not isinstance(obj, Variable):
            counter = getattr(store, "count_object", None)
            if counter is not None:
                object_id = graph.dictionary.lookup(obj)
                return 0.0 if object_id is None else float(counter(object_id))
        return max(1.0, float(size) ** 0.5)
    return float(size)


def plan_bgp(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    bound: frozenset | set | None = None,
) -> QueryPlan:
    """Compile a BGP into an ordered, index-annotated :class:`QueryPlan`.

    ``bound`` names variables a seed binding supplies (the subscription
    layer plans the *rest* of a BGP with the delta pattern's variables
    pre-bound).
    """
    patterns = tuple(tuple(p) for p in patterns)
    bound_now: set = set(bound) if bound else set()
    size = len(graph.store)
    predicate_count = len(graph.store.predicates())
    mean_partition = size / predicate_count if predicate_count else 1.0

    remaining = list(range(len(patterns)))
    steps: list[PlanStep] = []
    all_variables: set = set()
    for pattern in patterns:
        all_variables |= _variables(pattern)

    cumulative = 1.0  # estimated intermediate solutions alive so far
    while remaining:
        connected = [
            index
            for index in remaining
            if not _variables(patterns[index])
            or (_variables(patterns[index]) & bound_now)
        ]
        candidates = connected if (bound_now and connected) else remaining
        best_index = min(
            candidates,
            key=lambda index: (
                _estimate(graph, patterns[index], bound_now, size, mean_partition),
                index,
            ),
        )
        remaining.remove(best_index)
        pattern = patterns[best_index]
        estimate = _estimate(graph, pattern, bound_now, size, mean_partition)
        states = tuple(
            (CONST, term)
            if not isinstance(term, Variable)
            else ((BOUND, term) if term in bound_now else (FREE, term))
            for term in pattern
        )
        known = tuple(state[0] != FREE for state in states)
        access = _ACCESS[(known[1], known[0], known[2])]
        # Record the *cumulative* estimate — intermediate solutions alive
        # after this join — so explain's estimated and actual columns are
        # directly comparable.
        cumulative *= estimate
        steps.append(PlanStep(best_index, pattern, states, access, cumulative))
        bound_now |= _variables(pattern)

    return QueryPlan(patterns, tuple(steps), frozenset(all_variables), size)


def explain_plan(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    bindings: Sequence[Binding] | None = None,
) -> dict:
    """Plan and execute a BGP, reporting estimated vs. actual rows per step.

    The ``actual_rows`` of a step is the number of intermediate
    solutions alive after that join — the quantity the estimate tries to
    predict.
    """
    from .executor import execute_plan

    seed_variables: set = set()
    if bindings:
        for seed in bindings:
            seed_variables |= set(seed)
    plan = plan_bgp(graph, patterns, bound=seed_variables)
    counters: list[int] = []
    solutions = execute_plan(graph, plan, bindings=bindings, step_counters=counters)
    rows = plan.describe()
    for row, actual in zip(rows, counters):
        row["actual_rows"] = actual
    return {
        "backend": type(graph.store).__name__,
        "store_size": plan.planned_size,
        "pattern_count": len(plan.patterns),
        "plan_order": [step.index for step in plan.steps],
        "steps": rows,
        "solutions": len(solutions),
    }
