"""The ``TripleStore`` protocol: the contract every storage backend honours.

The reasoner, the baselines and the :class:`~repro.store.graph.Graph`
wrapper address storage exclusively through this surface, so a backend
is swappable as long as it provides:

* **batch-native writes** — :meth:`add_all` / :meth:`remove_all` insert
  or delete a whole batch under bounded lock acquisitions and return the
  sub-list that actually changed, preserving input order.  The returned
  "new" list is the deduplication contract the distributors depend on.
* **predicate-first reads** — every lookup the rule modules perform is
  predicate-first (:meth:`pairs_for_predicate`, :meth:`objects`,
  :meth:`subjects`, :meth:`match`), mirroring the paper's vertical
  partitioning.
* **snapshot iteration** — :meth:`__iter__` and the list-returning reads
  hand back copies, so callers never iterate live index structures while
  writers run.

All triples are *encoded* ``(int, int, int)`` tuples (see
:mod:`repro.dictionary`); a backend never sees a term object.

**Optional permutation-index extension** (the planner protocol).  The
cost-based planner (:mod:`repro.store.planner`) probes for these by
``getattr`` and degrades to :meth:`match` scans when absent, so they are
deliberately *not* part of the runtime-checkable protocol below (adding
required methods would silently flip ``isinstance`` for existing
duck-typed backends):

* ``triples_for_subject(s)`` / ``triples_for_object(o)`` — subject- and
  object-first lookups (the SPO / OSP permutations);
* ``count_subject(s)`` / ``count_object(o)`` — their cardinalities;
* ``predicates_between(s, o)`` — predicates linking a bound pair;
* ``predicate_stats(p) -> (count, distinct subjects, distinct objects)``
  — the planner's O(1) per-join-step cost inputs, maintained
  incrementally on the write path;
* ``stats_vector() -> ((p, count, ds, do), ...)`` sorted by predicate —
  the deterministic snapshot durability tests compare across recovery.

**Optional named-graph extension** (the quad protocol).  The engine
tags the explicit triples of graph-scoped deltas
(:class:`~repro.reasoner.delta.Delta` with ``graph=``) in a sparse
side column; like the planner protocol, consumers probe by ``getattr``
and treat an absent column as "everything is in the default graph":

* ``set_graphs(triples, graph_id)`` — tag stored triples with a graph
  term id (``None`` clears the tag; missing triples are ignored);
* ``graph_of(triple) -> int | None`` — the tag (None = default graph);
* ``graph_counts() -> {graph_id: count}`` — per-named-graph sizes;
* ``triples_in_graph(graph_id)`` — one graph's triples (``None`` lists
  the untagged default graph);
* ``graph_assignments() -> {triple: graph_id}`` — the sparse column as
  a copy, for snapshot writers.

Graph ids are ordinary term-dictionary ids of the graph's IRI/BNode
label, so the column journals and snapshots like any other id data.
Removing a triple always clears its tag.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, runtime_checkable

from ...dictionary.encoder import EncodedTriple

__all__ = ["TripleStore"]


@runtime_checkable
class TripleStore(Protocol):
    """Structural interface of a triple-store backend.

    ``@runtime_checkable`` so ``isinstance(obj, TripleStore)`` works for
    duck-typed third-party backends (method presence only — signatures
    are the backend author's responsibility).
    """

    # --- write path -------------------------------------------------------
    def add(self, triple: EncodedTriple) -> bool:
        """Insert one triple; True iff it was not already present."""
        ...

    def add_all(self, triples: Iterable[EncodedTriple]) -> list[EncodedTriple]:
        """Insert a batch; return the newly-added sub-list in input order."""
        ...

    def remove(self, triple: EncodedTriple) -> bool:
        """Delete one triple; True iff it was present."""
        ...

    def remove_all(self, triples: Iterable[EncodedTriple]) -> list[EncodedTriple]:
        """Delete a batch; return the sub-list that was actually removed."""
        ...

    def clear(self) -> None:
        """Remove all triples."""
        ...

    # --- read path --------------------------------------------------------
    def __len__(self) -> int: ...

    def __contains__(self, triple: EncodedTriple) -> bool: ...

    def __iter__(self) -> Iterator[EncodedTriple]:
        """Iterate a consistent snapshot of all triples."""
        ...

    def has_predicate(self, predicate: int) -> bool:
        """Is at least one triple stored under ``predicate``?"""
        ...

    def predicates(self) -> list[int]:
        """All predicate ids present in the store."""
        ...

    def count_predicate(self, predicate: int) -> int:
        """Number of triples stored under ``predicate``."""
        ...

    def pairs_for_predicate(self, predicate: int) -> list[tuple[int, int]]:
        """All (subject, object) pairs stored under ``predicate``."""
        ...

    def objects(self, predicate: int, subject: int) -> list[int]:
        """All o with (subject, predicate, o) in the store."""
        ...

    def subjects(self, predicate: int, obj: int) -> list[int]:
        """All s with (s, predicate, obj) in the store."""
        ...

    def match(
        self,
        subject: int | None = None,
        predicate: int | None = None,
        obj: int | None = None,
    ) -> list[EncodedTriple]:
        """All triples matching a pattern; ``None`` is a wildcard."""
        ...

    # --- statistics -------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Cheap structural statistics (used by the demo report)."""
        ...
