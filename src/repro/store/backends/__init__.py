"""Pluggable storage backends and their registry.

Every component that stores triples — the :class:`~repro.reasoner.engine.Slider`
engine, the batch baselines, :class:`~repro.store.graph.Graph` — resolves
its backend through :func:`create_store`, so a backend choice is a
string that travels through configuration untouched:

``"hashdict"``
    The default: one vertically-partitioned index pair behind a single
    reentrant read/write lock (the seed implementation, now in
    :mod:`~repro.store.backends.hashdict`).

``"sharded"`` / ``"sharded:N"``
    Predicate-hash partitioning over N lock-striped shards
    (:mod:`~repro.store.backends.sharded`); writers of different
    predicates proceed in parallel.

``"columnar:<path>"``
    A read-only store served straight off a mapped columnar (v2)
    snapshot file (:mod:`~repro.store.backends.columnar`); zero-copy,
    writes raise.

Third-party backends register with :func:`register_backend`; anything
satisfying the :class:`~repro.store.backends.base.TripleStore` protocol
plugs into the whole stack (engine, baselines, CLI, benchmarks).
"""

from __future__ import annotations

from typing import Callable

from .base import TripleStore
from .columnar import ColumnarReadStore
from .hashdict import HashDictStore
from .sharded import DEFAULT_SHARDS, ShardedTripleStore

__all__ = [
    "TripleStore",
    "HashDictStore",
    "ShardedTripleStore",
    "ColumnarReadStore",
    "DEFAULT_SHARDS",
    "UnknownBackendError",
    "register_backend",
    "available_backends",
    "create_store",
]

#: The spec used when a component is given no backend choice at all.
DEFAULT_BACKEND = "hashdict"

BackendFactory = Callable[["str | None"], TripleStore]

_REGISTRY: dict[str, BackendFactory] = {}


class UnknownBackendError(ValueError):
    """A store spec named a backend that is not registered."""


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend under ``name``.

    ``factory`` receives the spec's parameter string (the part after the
    colon in ``"name:param"``), or ``None`` when the spec is bare, and
    returns a fresh store.  Re-registering a name replaces the factory,
    so tests can stub backends.
    """
    if not name or ":" in name:
        raise ValueError(f"backend name must be non-empty and colon-free: {name!r}")
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def create_store(spec: "TripleStore | str | None" = None) -> TripleStore:
    """Resolve a store spec to a backend instance.

    Accepts ``None`` (the default backend), a spec string like
    ``"hashdict"`` / ``"sharded"`` / ``"sharded:16"``, or an existing
    store instance (returned as-is, so callers can share substrate).
    """
    if spec is None:
        spec = DEFAULT_BACKEND
    if not isinstance(spec, str):
        return spec
    name, _, parameter = spec.partition(":")
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(available_backends())
        raise UnknownBackendError(f"unknown store backend {name!r} (registered: {known})")
    return factory(parameter or None)


def _hashdict_factory(parameter: str | None) -> HashDictStore:
    if parameter:
        raise ValueError(f"the hashdict backend takes no parameter, got {parameter!r}")
    return HashDictStore()


def _sharded_factory(parameter: str | None) -> ShardedTripleStore:
    if parameter is None:
        return ShardedTripleStore()
    try:
        shards = int(parameter)
    except ValueError:
        raise ValueError(f"sharded backend parameter must be an int, got {parameter!r}") from None
    return ShardedTripleStore(shards)


def _columnar_factory(parameter: str | None) -> ColumnarReadStore:
    if not parameter:
        raise ValueError(
            "the columnar backend needs a snapshot path: 'columnar:<path>'"
        )
    return ColumnarReadStore.open(parameter)


register_backend("hashdict", _hashdict_factory)
register_backend("sharded", _sharded_factory)
register_backend("columnar", _columnar_factory)
