"""The hash-dict backend: one vertically-partitioned index pair, one lock.

The paper stores triples "indexed by predicates, later by subjects and
finally by objects" (the vertical partitioning of Abadi et al., PVLDB'07),
because every rule in the ρdf/RDFS/OWL rule tables either scans all triples
or accesses them by predicate first.  Concurrency is handled by a reentrant
read/write lock; the hash-based indexes give free duplicate elimination,
which the distributors rely on to avoid re-dispatching known triples.

This implementation mirrors that design exactly:

* ``_pso[p][s] -> set of o``  (predicate partition, subject index)
* ``_pos[p][o] -> set of s``  (predicate partition, object index)

and extends it with the two permutations the cost-based query planner
binds to when a pattern leaves the predicate free:

* ``_spo[s][p] -> set of o``  (subject-first, for ``(s, ?p, ?o)``)
* ``_osp[o][s] -> set of p``  (object-first, for ``(?s, ?p, o)`` and
  the fully predicate-free ``(s, ?p, o)`` probe)

Per-predicate cardinality counters are maintained incrementally on the
write path, so :meth:`count_predicate` and :meth:`predicate_stats` are
O(1) — the planner consults them per join step and must not pay a scan.

All triples are *encoded* ``(int, int, int)`` tuples (see
:mod:`repro.dictionary`).  The store never sees a term object.

This is the default backend (``store="hashdict"``).  Its single
read/write lock serializes all writers; the lock-striped
:class:`~repro.store.backends.sharded.ShardedTripleStore` removes that
bottleneck for concurrent workloads.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ...dictionary.encoder import EncodedTriple
from ..locks import ReentrantReadWriteLock

__all__ = ["HashDictStore"]


class HashDictStore:
    """Thread-safe vertically-partitioned store of encoded triples.

    Writes (:meth:`add`, :meth:`add_all`) take the write lock; reads take
    the read lock.  ``add_all`` returns only the triples that were *new*,
    which is the deduplication contract the distributors depend on
    ("after adding inferred triples in the triple store only distinct
    triples are sent to the buffers").
    """

    def __init__(self):
        self._pso: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._predicate_counts: dict[int, int] = {}
        # Sparse named-graph column: triple -> graph term id.  Absence
        # means the default graph, so triple-only workloads pay nothing.
        self._graphs: dict[EncodedTriple, int] = {}
        self._graph_counts: dict[int, int] = {}
        self._size = 0
        self.lock = ReentrantReadWriteLock()

    # --- write path ---------------------------------------------------------
    def add(self, triple: EncodedTriple) -> bool:
        """Insert one triple.  Returns True iff it was not already present."""
        with self.lock.write():
            return self._add_unlocked(triple)

    def add_all(self, triples: Iterable[EncodedTriple]) -> list[EncodedTriple]:
        """Insert many triples under a single write-lock acquisition.

        Returns the sub-list that was actually new, preserving input order.
        """
        new_triples: list[EncodedTriple] = []
        with self.lock.write():
            for triple in triples:
                if self._add_unlocked(triple):
                    new_triples.append(triple)
        return new_triples

    def _add_unlocked(self, triple: EncodedTriple) -> bool:
        subject, predicate, obj = triple
        subject_index = self._pso.get(predicate)
        if subject_index is None:
            subject_index = {}
            self._pso[predicate] = subject_index
            self._pos[predicate] = {}
        objects = subject_index.get(subject)
        if objects is None:
            subject_index[subject] = {obj}
        elif obj in objects:
            return False
        else:
            objects.add(obj)
        object_index = self._pos[predicate]
        subjects = object_index.get(obj)
        if subjects is None:
            object_index[obj] = {subject}
        else:
            subjects.add(subject)
        self._spo.setdefault(subject, {}).setdefault(predicate, set()).add(obj)
        self._osp.setdefault(obj, {}).setdefault(subject, set()).add(predicate)
        self._predicate_counts[predicate] = self._predicate_counts.get(predicate, 0) + 1
        self._size += 1
        return True

    def remove(self, triple: EncodedTriple) -> bool:
        """Delete one triple.  Returns True iff it was present."""
        with self.lock.write():
            return self._remove_unlocked(triple)

    def remove_all(self, triples: Iterable[EncodedTriple]) -> list[EncodedTriple]:
        """Delete many triples under one write lock; returns those removed."""
        removed: list[EncodedTriple] = []
        with self.lock.write():
            for triple in triples:
                if self._remove_unlocked(triple):
                    removed.append(triple)
        return removed

    def _remove_unlocked(self, triple: EncodedTriple) -> bool:
        subject, predicate, obj = triple
        subject_index = self._pso.get(predicate)
        if subject_index is None:
            return False
        objects = subject_index.get(subject)
        if objects is None or obj not in objects:
            return False
        objects.remove(obj)
        if not objects:
            del subject_index[subject]
        object_index = self._pos[predicate]
        subjects = object_index[obj]
        subjects.remove(subject)
        if not subjects:
            del object_index[obj]
        if not subject_index:
            del self._pso[predicate]
            del self._pos[predicate]
        spo_predicates = self._spo[subject]
        spo_objects = spo_predicates[predicate]
        spo_objects.remove(obj)
        if not spo_objects:
            del spo_predicates[predicate]
            if not spo_predicates:
                del self._spo[subject]
        osp_subjects = self._osp[obj]
        osp_predicates = osp_subjects[subject]
        osp_predicates.remove(predicate)
        if not osp_predicates:
            del osp_subjects[subject]
            if not osp_subjects:
                del self._osp[obj]
        remaining = self._predicate_counts[predicate] - 1
        if remaining:
            self._predicate_counts[predicate] = remaining
        else:
            del self._predicate_counts[predicate]
        graph_id = self._graphs.pop(triple, None)
        if graph_id is not None:
            graph_remaining = self._graph_counts[graph_id] - 1
            if graph_remaining:
                self._graph_counts[graph_id] = graph_remaining
            else:
                del self._graph_counts[graph_id]
        self._size -= 1
        return True

    # --- named-graph column (optional protocol extension) -------------------
    def set_graphs(self, triples: Iterable[EncodedTriple], graph_id: int | None) -> None:
        """Tag stored triples with a named-graph term id.

        ``graph_id=None`` clears the tag (moves the triples back to the
        default graph).  Triples not present in the store are ignored —
        the engine tags exactly the explicit triples it just inserted.
        """
        with self.lock.write():
            graphs, counts = self._graphs, self._graph_counts
            for triple in triples:
                subject_index = self._pso.get(triple[1])
                if subject_index is None:
                    continue
                objects = subject_index.get(triple[0])
                if objects is None or triple[2] not in objects:
                    continue
                previous = graphs.pop(triple, None)
                if previous is not None:
                    remaining = counts[previous] - 1
                    if remaining:
                        counts[previous] = remaining
                    else:
                        del counts[previous]
                if graph_id is not None:
                    graphs[triple] = graph_id
                    counts[graph_id] = counts.get(graph_id, 0) + 1

    def graph_of(self, triple: EncodedTriple) -> int | None:
        """The graph term id tagged on ``triple`` (None = default graph)."""
        with self.lock.read():
            return self._graphs.get(triple)

    def graph_counts(self) -> dict[int, int]:
        """``{graph term id: triple count}`` over the named graphs (copy)."""
        with self.lock.read():
            return dict(self._graph_counts)

    def triples_in_graph(self, graph_id: int | None) -> list[EncodedTriple]:
        """All triples tagged into one named graph (None = default graph).

        The default graph is everything *not* tagged, so listing it costs
        a full scan; named graphs cost one pass over the sparse column.
        """
        with self.lock.read():
            if graph_id is None:
                tagged = self._graphs
                return [t for t in self._iter_unlocked() if t not in tagged]
            return [t for t, g in self._graphs.items() if g == graph_id]

    def graph_assignments(self) -> dict[EncodedTriple, int]:
        """A copy of the sparse graph column (snapshot writers)."""
        with self.lock.read():
            return dict(self._graphs)

    # --- read path -----------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: EncodedTriple) -> bool:
        subject, predicate, obj = triple
        with self.lock.read():
            subject_index = self._pso.get(predicate)
            if subject_index is None:
                return False
            objects = subject_index.get(subject)
            return objects is not None and obj in objects

    def has_predicate(self, predicate: int) -> bool:
        """O(1): is at least one triple stored under ``predicate``?

        Rule modules use this to skip a whole half-join when the stored
        side of the body cannot match (e.g. no ``rdfs:domain`` triples
        exist at all — the common case for schema-light streams).
        """
        with self.lock.read():
            return predicate in self._pso

    def predicates(self) -> list[int]:
        """All predicate ids present in the store."""
        with self.lock.read():
            return list(self._pso.keys())

    def count_predicate(self, predicate: int) -> int:
        """Number of triples stored under ``predicate`` (O(1))."""
        with self.lock.read():
            return self._predicate_counts.get(predicate, 0)

    def pairs_for_predicate(self, predicate: int) -> list[tuple[int, int]]:
        """All (subject, object) pairs stored under ``predicate``.

        Returns a list copy so rule modules can iterate without holding
        the read lock (the paper's modules snapshot relevant triples, then
        compute outside the critical section).
        """
        with self.lock.read():
            subject_index = self._pso.get(predicate)
            if subject_index is None:
                return []
            return [
                (subject, obj)
                for subject, objects in subject_index.items()
                for obj in objects
            ]

    def objects(self, predicate: int, subject: int) -> list[int]:
        """All objects o with (subject, predicate, o) in the store."""
        with self.lock.read():
            subject_index = self._pso.get(predicate)
            if subject_index is None:
                return []
            return list(subject_index.get(subject, ()))

    def subjects(self, predicate: int, obj: int) -> list[int]:
        """All subjects s with (s, predicate, obj) in the store."""
        with self.lock.read():
            object_index = self._pos.get(predicate)
            if object_index is None:
                return []
            return list(object_index.get(obj, ()))

    # --- permutation-index read surface (planner protocol) ----------------
    def triples_for_subject(self, subject: int) -> list[EncodedTriple]:
        """All triples with the given subject, via the SPO permutation."""
        with self.lock.read():
            predicate_index = self._spo.get(subject)
            if predicate_index is None:
                return []
            return [
                (subject, predicate, obj)
                for predicate, objects in predicate_index.items()
                for obj in objects
            ]

    def triples_for_object(self, obj: int) -> list[EncodedTriple]:
        """All triples with the given object, via the OSP permutation."""
        with self.lock.read():
            subject_index = self._osp.get(obj)
            if subject_index is None:
                return []
            return [
                (subject, predicate, obj)
                for subject, predicates in subject_index.items()
                for predicate in predicates
            ]

    def count_subject(self, subject: int) -> int:
        """Number of triples with the given subject."""
        with self.lock.read():
            predicate_index = self._spo.get(subject)
            if predicate_index is None:
                return 0
            return sum(len(objects) for objects in predicate_index.values())

    def count_object(self, obj: int) -> int:
        """Number of triples with the given object."""
        with self.lock.read():
            subject_index = self._osp.get(obj)
            if subject_index is None:
                return 0
            return sum(len(predicates) for predicates in subject_index.values())

    def predicates_between(self, subject: int, obj: int) -> list[int]:
        """All predicates p with (subject, p, obj) in the store (OSP probe)."""
        with self.lock.read():
            subject_index = self._osp.get(obj)
            if subject_index is None:
                return []
            return list(subject_index.get(subject, ()))

    def predicate_stats(self, predicate: int) -> tuple[int, int, int]:
        """``(cardinality, distinct subjects, distinct objects)`` for one
        predicate, all O(1) — the planner's per-join-step cost inputs."""
        with self.lock.read():
            count = self._predicate_counts.get(predicate, 0)
            if not count:
                return (0, 0, 0)
            return (
                count,
                len(self._pso[predicate]),
                len(self._pos[predicate]),
            )

    def stats_vector(self) -> tuple[tuple[int, int, int, int], ...]:
        """Deterministic per-predicate stats snapshot, sorted by predicate id.

        Each row is ``(predicate, cardinality, distinct subjects, distinct
        objects)``.  Durability tests compare this bit-identically across
        snapshot restore, WAL recovery, and follower replay.
        """
        with self.lock.read():
            return tuple(
                (
                    predicate,
                    self._predicate_counts[predicate],
                    len(self._pso[predicate]),
                    len(self._pos[predicate]),
                )
                for predicate in sorted(self._predicate_counts)
            )

    def match(
        self,
        subject: int | None = None,
        predicate: int | None = None,
        obj: int | None = None,
    ) -> list[EncodedTriple]:
        """All triples matching a pattern; ``None`` is a wildcard.

        Dispatches to the cheapest index for the bound positions, in the
        spirit of the paper's "near-optimal indexing for nearly all rules".
        """
        with self.lock.read():
            if predicate is not None:
                return self._match_with_predicate(subject, predicate, obj)
            if subject is not None and obj is not None:
                subject_index = self._osp.get(obj)
                if subject_index is None:
                    return []
                return [
                    (subject, p, obj) for p in subject_index.get(subject, ())
                ]
            if subject is not None:
                predicate_index = self._spo.get(subject)
                if predicate_index is None:
                    return []
                return [
                    (subject, p, o)
                    for p, objects in predicate_index.items()
                    for o in objects
                ]
            if obj is not None:
                subject_index = self._osp.get(obj)
                if subject_index is None:
                    return []
                return [
                    (s, p, obj)
                    for s, predicates in subject_index.items()
                    for p in predicates
                ]
            results: list[EncodedTriple] = []
            for known_predicate in self._pso:
                results.extend(self._match_with_predicate(None, known_predicate, None))
            return results

    def _match_with_predicate(
        self, subject: int | None, predicate: int, obj: int | None
    ) -> list[EncodedTriple]:
        subject_index = self._pso.get(predicate)
        if subject_index is None:
            return []
        if subject is not None:
            objects = subject_index.get(subject)
            if objects is None:
                return []
            if obj is not None:
                return [(subject, predicate, obj)] if obj in objects else []
            return [(subject, predicate, o) for o in objects]
        if obj is not None:
            subjects = self._pos[predicate].get(obj)
            if subjects is None:
                return []
            return [(s, predicate, obj) for s in subjects]
        return [
            (s, predicate, o)
            for s, objects in subject_index.items()
            for o in objects
        ]

    def _iter_unlocked(self) -> Iterator[EncodedTriple]:
        return (
            (subject, predicate, obj)
            for predicate, subject_index in self._pso.items()
            for subject, objects in subject_index.items()
            for obj in objects
        )

    def __iter__(self) -> Iterator[EncodedTriple]:
        """Iterate a consistent snapshot of all triples."""
        with self.lock.read():
            snapshot = list(self._iter_unlocked())
        return iter(snapshot)

    def clear(self) -> None:
        """Remove all triples."""
        with self.lock.write():
            self._pso.clear()
            self._pos.clear()
            self._spo.clear()
            self._osp.clear()
            self._predicate_counts.clear()
            self._graphs.clear()
            self._graph_counts.clear()
            self._size = 0

    # --- statistics -------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Cheap structural statistics (used by the demo report)."""
        with self.lock.read():
            return {
                "triples": self._size,
                "predicates": len(self._pso),
                "subject_keys": sum(len(index) for index in self._pso.values()),
                "object_keys": sum(len(index) for index in self._pos.values()),
            }
