"""A read-only triple store over a mapped columnar (v2) snapshot.

:class:`ColumnarReadStore` serves the read half of the
:class:`~repro.store.backends.base.TripleStore` protocol directly off
the sorted id columns of a :class:`~repro.persist.columnar.ColumnarSnapshot`
— no hydration, no heap-resident copy.  Every lookup is a pair of
binary searches over ``memoryview`` windows into the mapped file:

* ``(s, ·, ·)``-shaped patterns bisect the SPO ordering (sorted by
  subject, then predicate, then object);
* ``(·, p, ·)``-shaped patterns bisect the POS ordering (sorted by
  predicate, then object, then subject) — the vertical-partitioning
  access path every rule module uses.

This is the substrate of lazy follower bootstrap: the replica maps the
downloaded image and serves queries *immediately* while the mutable
store hydrates in the background (see
:mod:`repro.replication.follower`), and of the zero-copy load path in
:func:`repro.persist.snapshot.load_snapshot`.

The write half raises :class:`TypeError`, exactly like
:class:`~repro.server.views.ReadView`: mutations belong to the engine.
The registry spec ``columnar:<path>`` opens a store over a v2 snapshot
file, so the backend also plugs into the CLI / bench ``--store`` flag.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from ...dictionary.encoder import EncodedTriple

__all__ = ["ColumnarReadStore"]


class ColumnarReadStore:
    """Read-only ``TripleStore`` over the sorted columns of a v2 image."""

    __slots__ = ("snapshot", "_spo", "_pos", "_size", "_pred_spans", "_pred_stats")

    def __init__(self, snapshot):
        self.snapshot = snapshot
        self._spo = snapshot.spo
        self._pos = snapshot.pos
        self._size = snapshot.triple_count
        #: predicate id -> (lo, hi) row span in the POS ordering,
        #: built lazily on the first predicate-shaped lookup.
        self._pred_spans: dict[int, tuple[int, int]] | None = None
        #: predicate id -> (count, distinct s, distinct o), lazily cached
        #: per predicate — the planner's cost inputs over a mapped image.
        self._pred_stats: dict[int, tuple[int, int, int]] = {}

    @classmethod
    def open(cls, path) -> "ColumnarReadStore":
        """Map a v2 snapshot file and serve reads over it."""
        from ...persist.columnar import load_columnar_snapshot

        return cls(load_columnar_snapshot(path))

    # --- sorted-column primitives ----------------------------------------
    @staticmethod
    def _span(column, value: int, lo: int, hi: int) -> tuple[int, int]:
        """The half-open row range where ``column == value`` within [lo, hi)."""
        first = bisect_left(column, value, lo, hi)
        if first == hi or column[first] != value:
            return first, first
        return first, bisect_right(column, value, first, hi)

    def _predicate_spans(self) -> dict[int, tuple[int, int]]:
        spans = self._pred_spans
        if spans is None:
            spans = {}
            p_col = self._pos[0]
            lo, size = 0, self._size
            while lo < size:
                predicate = p_col[lo]
                hi = bisect_right(p_col, predicate, lo, size)
                spans[predicate] = (lo, hi)
                lo = hi
            self._pred_spans = spans
        return spans

    # --- TripleStore read protocol ----------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: EncodedTriple) -> bool:
        s, p, o = triple
        s_col, p_col, o_col = self._spo
        lo, hi = self._span(s_col, s, 0, self._size)
        if lo == hi:
            return False
        lo, hi = self._span(p_col, p, lo, hi)
        if lo == hi:
            return False
        lo, hi = self._span(o_col, o, lo, hi)
        return lo != hi

    def __iter__(self) -> Iterator[EncodedTriple]:
        s_col, p_col, o_col = self._spo
        for i in range(self._size):
            yield (s_col[i], p_col[i], o_col[i])

    def has_predicate(self, predicate: int) -> bool:
        return predicate in self._predicate_spans()

    def predicates(self) -> list[int]:
        return list(self._predicate_spans())

    def count_predicate(self, predicate: int) -> int:
        lo, hi = self._predicate_spans().get(predicate, (0, 0))
        return hi - lo

    def pairs_for_predicate(self, predicate: int) -> list[tuple[int, int]]:
        lo, hi = self._predicate_spans().get(predicate, (0, 0))
        _, o_col, s_col = self._pos
        return [(s_col[i], o_col[i]) for i in range(lo, hi)]

    def pos_partition(self, predicate: int):
        """Zero-copy ``(o_col, s_col, lo, hi)`` span of one predicate.

        The object and subject columns of the POS ordering with the
        predicate's half-open row range — sorted by object, then
        subject — served as ``memoryview`` windows for the galloping
        merge-join kernels (:mod:`repro.reasoner.kernels`).
        """
        lo, hi = self._predicate_spans().get(predicate, (0, 0))
        _, o_col, s_col = self._pos
        return o_col, s_col, lo, hi

    def objects(self, predicate: int, subject: int) -> list[int]:
        s_col, p_col, o_col = self._spo
        lo, hi = self._span(s_col, subject, 0, self._size)
        lo, hi = self._span(p_col, predicate, lo, hi)
        return list(o_col[lo:hi])

    def subjects(self, predicate: int, obj: int) -> list[int]:
        lo, hi = self._predicate_spans().get(predicate, (0, 0))
        p_col, o_col, s_col = self._pos
        lo, hi = self._span(o_col, obj, lo, hi)
        return list(s_col[lo:hi])

    # --- permutation-index read surface (planner protocol) ----------------
    def triples_for_subject(self, subject: int) -> list[EncodedTriple]:
        """All triples with the given subject: one bisect on SPO."""
        s_col, p_col, o_col = self._spo
        lo, hi = self._span(s_col, subject, 0, self._size)
        return [(subject, p_col[i], o_col[i]) for i in range(lo, hi)]

    def triples_for_object(self, obj: int) -> list[EncodedTriple]:
        """All triples with the given object: one bisect per POS partition."""
        return self.match(obj=obj)

    def count_subject(self, subject: int) -> int:
        s_col, _, _ = self._spo
        lo, hi = self._span(s_col, subject, 0, self._size)
        return hi - lo

    def count_object(self, obj: int) -> int:
        _, o_col, _ = self._pos
        total = 0
        for lo, hi in self._predicate_spans().values():
            first, last = self._span(o_col, obj, lo, hi)
            total += last - first
        return total

    def predicates_between(self, subject: int, obj: int) -> list[int]:
        s_col, p_col, o_col = self._spo
        lo, hi = self._span(s_col, subject, 0, self._size)
        return [p_col[i] for i in range(lo, hi) if o_col[i] == obj]

    def predicate_stats(self, predicate: int) -> tuple[int, int, int]:
        """``(cardinality, distinct subjects, distinct objects)``, cached.

        The POS span is sorted by object, so distinct objects fall out of
        a run-length walk; distinct subjects need one set pass.  Both are
        computed once per predicate per image (the image never mutates).
        """
        cached = self._pred_stats.get(predicate)
        if cached is not None:
            return cached
        lo, hi = self._predicate_spans().get(predicate, (0, 0))
        count = hi - lo
        if not count:
            stats = (0, 0, 0)
        else:
            _, o_col, s_col = self._pos
            distinct_objects = 1
            previous = o_col[lo]
            for i in range(lo + 1, hi):
                value = o_col[i]
                if value != previous:
                    distinct_objects += 1
                    previous = value
            distinct_subjects = len({s_col[i] for i in range(lo, hi)})
            stats = (count, distinct_subjects, distinct_objects)
        self._pred_stats[predicate] = stats
        return stats

    def stats_vector(self) -> tuple[tuple[int, int, int, int], ...]:
        """Deterministic per-predicate stats rows, sorted by predicate id."""
        return tuple(
            (predicate,) + self.predicate_stats(predicate)
            for predicate in sorted(self._predicate_spans())
        )

    def match(
        self,
        subject: int | None = None,
        predicate: int | None = None,
        obj: int | None = None,
    ) -> list[EncodedTriple]:
        if subject is not None:
            s_col, p_col, o_col = self._spo
            lo, hi = self._span(s_col, subject, 0, self._size)
            if predicate is not None:
                lo, hi = self._span(p_col, predicate, lo, hi)
                if obj is not None:
                    lo, hi = self._span(o_col, obj, lo, hi)
                return [(subject, predicate, o_col[i]) for i in range(lo, hi)]
            if obj is None:
                return [(subject, p_col[i], o_col[i]) for i in range(lo, hi)]
            return [
                (subject, p_col[i], o_col[i])
                for i in range(lo, hi)
                if o_col[i] == obj
            ]
        if predicate is not None:
            lo, hi = self._predicate_spans().get(predicate, (0, 0))
            p_col, o_col, s_col = self._pos
            if obj is not None:
                lo, hi = self._span(o_col, obj, lo, hi)
            return [(s_col[i], predicate, o_col[i]) for i in range(lo, hi)]
        if obj is not None:
            # (·, ·, o): one bisect per predicate partition of POS.
            p_col, o_col, s_col = self._pos
            matches: list[EncodedTriple] = []
            for p, (lo, hi) in self._predicate_spans().items():
                first, last = self._span(o_col, obj, lo, hi)
                matches.extend((s_col[i], p, obj) for i in range(first, last))
            return matches
        return list(self)

    def stats(self) -> dict[str, int]:
        return {
            "triples": self._size,
            "predicates": len(self._predicate_spans()),
            "revision": self.snapshot.revision,
        }

    # --- TripleStore write protocol: the image is immutable ----------------
    def _immutable(self, *_args, **_kwargs):
        raise TypeError(
            "ColumnarReadStore serves a mapped snapshot image "
            f"(revision {self.snapshot.revision}); it is read-only — "
            "hydrate into a mutable backend to apply deltas"
        )

    add = add_all = remove = remove_all = clear = _immutable

    def close(self) -> None:
        """Release the underlying snapshot map.

        The store's own column views must go first: an ``mmap`` cannot
        close while exported ``memoryview`` pointers are alive.
        """
        self._spo = self._pos = None
        self._pred_spans = None
        self._pred_stats = {}
        self._size = 0
        self.snapshot.close()

    def __repr__(self):
        return (
            f"<ColumnarReadStore revision={self.snapshot.revision} "
            f"triples={self._size}>"
        )
