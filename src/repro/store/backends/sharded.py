"""The sharded backend: predicate-hash partitioning with lock striping.

:class:`ShardedTripleStore` splits the vertical partitions across N
independent :class:`~repro.store.backends.hashdict.HashDictStore`
shards, routed by ``hash(predicate) % N``.  Each shard keeps its own
:class:`~repro.store.locks.ReentrantReadWriteLock`, so concurrent rule
modules and input managers writing triples of *different* predicates no
longer contend on one global write lock — the lock striping pattern of
Java's ``ConcurrentHashMap``, applied at the predicate-partition level
where the paper's workload naturally splits.

Because sharding is by predicate, every predicate-first operation
(:meth:`has_predicate`, :meth:`count_predicate`,
:meth:`pairs_for_predicate`, :meth:`objects`, :meth:`subjects`, and
:meth:`match` with a bound predicate) touches exactly one shard and is
as cheap as on the single-lock store.  Only the whole-store sweeps
(unbound-predicate :meth:`match`, :meth:`__iter__`, :meth:`stats`)
visit every shard; they take the shard locks one at a time, so the
snapshot is per-shard-consistent — the same guarantee the pipeline
needs, since a triple's partition never spans shards.

Batch writes are batch-native: :meth:`add_all` groups the input by
shard, takes each touched shard's write lock exactly once, and
reassembles the newly-added sub-list in input order (the distributors'
deduplication contract).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ...dictionary.encoder import EncodedTriple
from .hashdict import HashDictStore

__all__ = ["ShardedTripleStore", "DEFAULT_SHARDS"]

#: Default stripe count: comfortably more than the thread-pool sizes the
#: engine runs (diminishing returns beyond ~2× writers), still cheap to scan.
DEFAULT_SHARDS = 8


class ShardedTripleStore:
    """Lock-striped triple store: N vertical partitions, N RW locks."""

    def __init__(self, shards: int = DEFAULT_SHARDS):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self._shards: tuple[HashDictStore, ...] = tuple(
            HashDictStore() for _ in range(shards)
        )

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_for(self, predicate: int) -> HashDictStore:
        """The shard owning ``predicate``'s partition (stable routing)."""
        # hash(), not %, so the ablation's term-object "ids" also route.
        return self._shards[hash(predicate) % len(self._shards)]

    # --- write path -------------------------------------------------------
    def add(self, triple: EncodedTriple) -> bool:
        return self.shard_for(triple[1]).add(triple)

    def add_all(self, triples: Iterable[EncodedTriple]) -> list[EncodedTriple]:
        """Insert a batch, one write-lock acquisition per touched shard.

        Returns the newly-added sub-list in input order; the first
        occurrence of an intra-batch duplicate is the one reported new,
        matching the single-lock store exactly (duplicates share a
        predicate, so they always land on the same shard, in order).
        """
        return self._write_batch(triples, "_add_unlocked")

    def remove(self, triple: EncodedTriple) -> bool:
        return self.shard_for(triple[1]).remove(triple)

    def remove_all(self, triples: Iterable[EncodedTriple]) -> list[EncodedTriple]:
        """Delete a batch, one write-lock acquisition per touched shard.

        Returns the actually-removed sub-list in input order.
        """
        return self._write_batch(triples, "_remove_unlocked")

    def _write_batch(
        self, triples: Iterable[EncodedTriple], unlocked_op: str
    ) -> list[EncodedTriple]:
        """Group a batch by shard, apply ``unlocked_op`` under each touched
        shard's write lock once, and reassemble the changed sub-list in
        input order (the contract both write paths share)."""
        batch = triples if isinstance(triples, list) else list(triples)
        if not batch:
            return []
        shard_count = len(self._shards)
        per_shard: dict[int, list[tuple[int, EncodedTriple]]] = {}
        for position, triple in enumerate(batch):
            per_shard.setdefault(hash(triple[1]) % shard_count, []).append(
                (position, triple)
            )
        changed_positions: list[int] = []
        for shard_index, items in per_shard.items():
            shard = self._shards[shard_index]
            with shard.lock.write():
                operation = getattr(shard, unlocked_op)
                for position, triple in items:
                    if operation(triple):
                        changed_positions.append(position)
        changed_positions.sort()
        return [batch[position] for position in changed_positions]

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    # --- named-graph column (optional protocol extension) -------------------
    # A triple's graph tag lives on the shard that owns its predicate
    # partition, so tagging groups by shard exactly like the write batches.
    def set_graphs(self, triples: Iterable[EncodedTriple], graph_id: int | None) -> None:
        """Tag stored triples with a named-graph term id (see HashDictStore)."""
        per_shard: dict[int, list[EncodedTriple]] = {}
        shard_count = len(self._shards)
        for triple in triples:
            per_shard.setdefault(hash(triple[1]) % shard_count, []).append(triple)
        for shard_index, items in per_shard.items():
            self._shards[shard_index].set_graphs(items, graph_id)

    def graph_of(self, triple: EncodedTriple) -> int | None:
        """The graph term id tagged on ``triple`` (None = default graph)."""
        return self.shard_for(triple[1]).graph_of(triple)

    def graph_counts(self) -> dict[int, int]:
        """``{graph term id: triple count}`` merged across all shards."""
        merged: dict[int, int] = {}
        for shard in self._shards:
            for graph_id, count in shard.graph_counts().items():
                merged[graph_id] = merged.get(graph_id, 0) + count
        return merged

    def triples_in_graph(self, graph_id: int | None) -> list[EncodedTriple]:
        """All triples tagged into one graph, per-shard-consistent."""
        results: list[EncodedTriple] = []
        for shard in self._shards:
            results.extend(shard.triples_in_graph(graph_id))
        return results

    def graph_assignments(self) -> dict[EncodedTriple, int]:
        """The merged sparse graph column (snapshot writers)."""
        merged: dict[EncodedTriple, int] = {}
        for shard in self._shards:
            merged.update(shard.graph_assignments())
        return merged

    # --- read path --------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, triple: EncodedTriple) -> bool:
        return triple in self.shard_for(triple[1])

    def __iter__(self) -> Iterator[EncodedTriple]:
        """Iterate a per-shard-consistent snapshot of all triples."""
        snapshot: list[EncodedTriple] = []
        for shard in self._shards:
            snapshot.extend(shard)
        return iter(snapshot)

    def has_predicate(self, predicate: int) -> bool:
        return self.shard_for(predicate).has_predicate(predicate)

    def predicates(self) -> list[int]:
        result: list[int] = []
        for shard in self._shards:
            result.extend(shard.predicates())
        return result

    def count_predicate(self, predicate: int) -> int:
        return self.shard_for(predicate).count_predicate(predicate)

    def pairs_for_predicate(self, predicate: int) -> list[tuple[int, int]]:
        return self.shard_for(predicate).pairs_for_predicate(predicate)

    def objects(self, predicate: int, subject: int) -> list[int]:
        return self.shard_for(predicate).objects(predicate, subject)

    def subjects(self, predicate: int, obj: int) -> list[int]:
        return self.shard_for(predicate).subjects(predicate, obj)

    # --- permutation-index read surface (planner protocol) ----------------
    # Sharding is by predicate, so subject-/object-first lookups have no
    # single home shard: concatenate across shards (per-shard-consistent,
    # same guarantee as the whole-store sweeps above).
    def triples_for_subject(self, subject: int) -> list[EncodedTriple]:
        results: list[EncodedTriple] = []
        for shard in self._shards:
            results.extend(shard.triples_for_subject(subject))
        return results

    def triples_for_object(self, obj: int) -> list[EncodedTriple]:
        results: list[EncodedTriple] = []
        for shard in self._shards:
            results.extend(shard.triples_for_object(obj))
        return results

    def count_subject(self, subject: int) -> int:
        return sum(shard.count_subject(subject) for shard in self._shards)

    def count_object(self, obj: int) -> int:
        return sum(shard.count_object(obj) for shard in self._shards)

    def predicates_between(self, subject: int, obj: int) -> list[int]:
        results: list[int] = []
        for shard in self._shards:
            results.extend(shard.predicates_between(subject, obj))
        return results

    def predicate_stats(self, predicate: int) -> tuple[int, int, int]:
        return self.shard_for(predicate).predicate_stats(predicate)

    def stats_vector(self) -> tuple[tuple[int, int, int, int], ...]:
        rows: list[tuple[int, int, int, int]] = []
        for shard in self._shards:
            rows.extend(shard.stats_vector())
        rows.sort()
        return tuple(rows)

    def match(
        self,
        subject: int | None = None,
        predicate: int | None = None,
        obj: int | None = None,
    ) -> list[EncodedTriple]:
        if predicate is not None:
            return self.shard_for(predicate).match(subject, predicate, obj)
        results: list[EncodedTriple] = []
        for shard in self._shards:
            results.extend(shard.match(subject, None, obj))
        return results

    # --- statistics -------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Aggregate structural statistics across all shards.

        Predicate partitions never span shards, so the sums are exact.
        """
        merged = {"triples": 0, "predicates": 0, "subject_keys": 0, "object_keys": 0}
        per_shard_triples: list[int] = []
        for shard in self._shards:
            stats = shard.stats()
            per_shard_triples.append(stats["triples"])
            for key in merged:
                merged[key] += stats[key]
        merged["shards"] = len(self._shards)
        merged["largest_shard"] = max(per_shard_triples)
        return merged

    def __repr__(self):
        return f"<ShardedTripleStore shards={len(self._shards)} triples={len(self)}>"
