"""Basic graph pattern (BGP) query evaluation over a :class:`Graph`.

The demo lets users "retrieve the original ontology" and inspect inferred
data; this module provides the query layer for that: conjunctive triple
patterns with :class:`~repro.rdf.terms.Variable` terms, evaluated with a
selectivity-ordered nested-index-loop join (the classic strategy for
vertically-partitioned stores — each pattern probes the predicate
partition directly).

>>> from repro.rdf import IRI, Variable
>>> x = Variable("x")
>>> # solve(graph, [(x, RDF.type, EX.Product)]) -> [{x: ...}, ...]
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

from ..rdf.terms import Term, Triple, Variable
from .graph import Graph

__all__ = ["TriplePattern", "Binding", "solve", "select", "ask", "construct", "unify"]

PatternTerm = Union[Term, Variable]
TriplePattern = tuple[PatternTerm, PatternTerm, PatternTerm]
Binding = dict[Variable, Term]


def unify(
    pattern: TriplePattern, triple: Triple, binding: Binding | None = None
) -> Binding | None:
    """Match one concrete triple against a pattern.

    Returns the (extended copy of the) binding on success, ``None`` on
    mismatch.  Repeated variables must agree, both within the pattern
    and with any pre-existing binding.  This is the primitive the
    subscription layer seeds its delta evaluation with.
    """
    result: Binding = dict(binding) if binding else {}
    for pattern_term, value in zip(pattern, triple):
        if isinstance(pattern_term, Variable):
            previous = result.get(pattern_term)
            if previous is None:
                result[pattern_term] = value
            elif previous != value:
                return None
        elif pattern_term != value:
            return None
    return result


def _pattern_variables(pattern: TriplePattern) -> set[Variable]:
    return {term for term in pattern if isinstance(term, Variable)}


def _estimate_cost(graph: Graph, pattern: TriplePattern, bound: set[Variable]) -> tuple[int, int]:
    """Join-ordering key: fewer free variables first, then more selective.

    Returns (number of unbound variables, crude cardinality estimate).
    """
    free = [term for term in pattern if isinstance(term, Variable) and term not in bound]
    predicate = pattern[1]
    if isinstance(predicate, Variable):
        # Variable predicate (even when join-bound, the value is unknown
        # at planning time): assume the worst case, a full scan.
        cardinality = len(graph)
    else:
        predicate_id = graph.dictionary.lookup(predicate)
        cardinality = 0 if predicate_id is None else graph.store.count_predicate(predicate_id)
    return (len(free), cardinality)


def _substitute(pattern: TriplePattern, binding: Binding) -> TriplePattern:
    return tuple(
        binding.get(term, term) if isinstance(term, Variable) else term
        for term in pattern
    )  # type: ignore[return-value]


def _match_pattern(graph: Graph, pattern: TriplePattern) -> Iterator[tuple[Triple, Binding]]:
    """Match one (possibly variable-containing) pattern against the graph."""
    subject, predicate, obj = pattern
    lookup = (
        None if isinstance(subject, Variable) else subject,
        None if isinstance(predicate, Variable) else predicate,
        None if isinstance(obj, Variable) else obj,
    )
    for triple in graph.triples(*lookup):
        binding: Binding = {}
        consistent = True
        for pattern_term, value in zip(pattern, triple):
            if isinstance(pattern_term, Variable):
                previous = binding.get(pattern_term)
                if previous is None:
                    binding[pattern_term] = value
                elif previous != value:
                    consistent = False
                    break
        if consistent:
            yield triple, binding


def solve(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    bindings: Sequence[Binding] | None = None,
) -> list[Binding]:
    """Evaluate a conjunction of triple patterns; return all solutions.

    Each solution maps every variable in the BGP to a concrete term.
    Patterns are greedily reordered by selectivity at each join step.
    ``bindings`` optionally seeds the evaluation with partial solutions
    (the subscription layer passes the bindings a delta triple produced,
    so only the affected slice of the solution space is re-joined).
    """
    seeds: list[Binding] = [dict(b) for b in bindings] if bindings else [{}]
    if not patterns:
        return seeds
    remaining = list(patterns)
    solutions: list[Binding] = seeds
    bound: set[Variable] = set()
    for seed in seeds:
        bound |= seed.keys()
    while remaining:
        remaining.sort(key=lambda p: _estimate_cost(graph, p, bound))
        pattern = remaining.pop(0)
        next_solutions: list[Binding] = []
        for solution in solutions:
            concrete = _substitute(pattern, solution)
            for _, binding in _match_pattern(graph, concrete):
                merged = dict(solution)
                merged.update(binding)
                next_solutions.append(merged)
        solutions = next_solutions
        if not solutions:
            return []
        bound |= _pattern_variables(pattern)
    return solutions


def select(
    graph: Graph,
    variables: Sequence[Variable],
    patterns: Sequence[TriplePattern],
    distinct: bool = True,
) -> list[tuple[Term, ...]]:
    """SPARQL-SELECT-like projection of BGP solutions onto ``variables``."""
    rows = [
        tuple(solution[variable] for variable in variables)
        for solution in solve(graph, patterns)
    ]
    if distinct:
        seen: set[tuple[Term, ...]] = set()
        unique_rows = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique_rows.append(row)
        return unique_rows
    return rows


def ask(graph: Graph, patterns: Sequence[TriplePattern]) -> bool:
    """SPARQL-ASK: does at least one solution exist?"""
    return bool(solve(graph, patterns))


def construct(
    graph: Graph,
    template: Sequence[TriplePattern],
    patterns: Sequence[TriplePattern],
) -> list[Triple]:
    """SPARQL-CONSTRUCT: instantiate ``template`` for every solution."""
    results: list[Triple] = []
    seen: set[Triple] = set()
    for solution in solve(graph, patterns):
        for pattern in template:
            subject, predicate, obj = _substitute(pattern, solution)
            if isinstance(subject, Variable) or isinstance(predicate, Variable) or isinstance(obj, Variable):
                continue  # unbound template variable: skip (per SPARQL)
            triple = Triple(subject, predicate, obj)
            if triple not in seen:
                seen.add(triple)
                results.append(triple)
    return results
