"""Basic graph pattern (BGP) query evaluation over a :class:`Graph`.

The demo lets users "retrieve the original ontology" and inspect inferred
data; this module provides the query layer for that: conjunctive triple
patterns with :class:`~repro.rdf.terms.Variable` terms.

:func:`solve` delegates to the cost-based planner
(:mod:`repro.store.planner`): statistics-driven join ordering, each step
bound to the cheapest index permutation, executed in encoded integer
space.  :func:`solve_naive` keeps the original written-order term-level
nested-loop evaluation — it is the ground truth the differential query
oracle (``tests/query/``) checks the planner against, and deliberately
shares no code with it.  :func:`explain` exposes the chosen plan with
estimated vs. actual rows per join step.

>>> from repro.rdf import IRI, Variable
>>> x = Variable("x")
>>> # solve(graph, [(x, RDF.type, EX.Product)]) -> [{x: ...}, ...]
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

from ..rdf.terms import Term, Triple, Variable
from .graph import Graph

__all__ = [
    "TriplePattern",
    "Binding",
    "solve",
    "solve_naive",
    "explain",
    "select",
    "ask",
    "construct",
    "unify",
]

PatternTerm = Union[Term, Variable]
TriplePattern = tuple[PatternTerm, PatternTerm, PatternTerm]
Binding = dict[Variable, Term]


def unify(
    pattern: TriplePattern, triple: Triple, binding: Binding | None = None
) -> Binding | None:
    """Match one concrete triple against a pattern.

    Returns the (extended copy of the) binding on success, ``None`` on
    mismatch.  Repeated variables must agree, both within the pattern
    and with any pre-existing binding.  This is the primitive the
    subscription layer seeds its delta evaluation with.
    """
    result: Binding = dict(binding) if binding else {}
    for pattern_term, value in zip(pattern, triple):
        if isinstance(pattern_term, Variable):
            previous = result.get(pattern_term)
            if previous is None:
                result[pattern_term] = value
            elif previous != value:
                return None
        elif pattern_term != value:
            return None
    return result


def _pattern_variables(pattern: TriplePattern) -> set[Variable]:
    return {term for term in pattern if isinstance(term, Variable)}


def _substitute(pattern: TriplePattern, binding: Binding) -> TriplePattern:
    return tuple(
        binding.get(term, term) if isinstance(term, Variable) else term
        for term in pattern
    )  # type: ignore[return-value]


def _match_pattern(graph: Graph, pattern: TriplePattern) -> Iterator[tuple[Triple, Binding]]:
    """Match one (possibly variable-containing) pattern against the graph."""
    subject, predicate, obj = pattern
    lookup = (
        None if isinstance(subject, Variable) else subject,
        None if isinstance(predicate, Variable) else predicate,
        None if isinstance(obj, Variable) else obj,
    )
    for triple in graph.triples(*lookup):
        binding: Binding = {}
        consistent = True
        for pattern_term, value in zip(pattern, triple):
            if isinstance(pattern_term, Variable):
                previous = binding.get(pattern_term)
                if previous is None:
                    binding[pattern_term] = value
                elif previous != value:
                    consistent = False
                    break
        if consistent:
            yield triple, binding


def solve(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    bindings: Sequence[Binding] | None = None,
) -> list[Binding]:
    """Evaluate a conjunction of triple patterns; return all solutions.

    Each solution maps every variable in the BGP to a concrete term.
    Evaluation goes through the cost-based planner
    (:mod:`repro.store.planner`): statistics-driven join order, cheapest
    index permutation per step, encoded-space execution.  ``bindings``
    optionally seeds the evaluation with partial solutions (the
    subscription layer passes the bindings a delta triple produced, so
    only the affected slice of the solution space is re-joined).
    """
    from .planner import solve_planned  # lazy: planner imports this module

    return solve_planned(graph, patterns, bindings)


def solve_naive(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    bindings: Sequence[Binding] | None = None,
) -> list[Binding]:
    """Written-order, term-level reference evaluation of a BGP.

    Nested-loop join over the patterns exactly as written, matching
    decoded triples — obviously correct and deliberately independent of
    the planner's statistics, ordering, and encoded execution.  The
    differential query oracle asserts ``solve`` ≡ ``solve_naive`` as
    multisets of bindings.
    """
    solutions: list[Binding] = [dict(b) for b in bindings] if bindings else [{}]
    for pattern in patterns:
        next_solutions: list[Binding] = []
        for solution in solutions:
            concrete = _substitute(pattern, solution)
            for _, binding in _match_pattern(graph, concrete):
                merged = dict(solution)
                merged.update(binding)
                next_solutions.append(merged)
        solutions = next_solutions
        if not solutions:
            return []
    return solutions


def explain(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    bindings: Sequence[Binding] | None = None,
) -> dict:
    """Plan and run a BGP, returning the chosen plan with per-step
    estimated vs. actual row counts (see
    :func:`repro.store.planner.plan.explain_plan`)."""
    from .planner import explain_plan  # lazy: planner imports this module

    return explain_plan(graph, patterns, bindings)


def select(
    graph: Graph,
    variables: Sequence[Variable],
    patterns: Sequence[TriplePattern],
    distinct: bool = True,
) -> list[tuple[Term, ...]]:
    """SPARQL-SELECT-like projection of BGP solutions onto ``variables``.

    Every projected variable must occur in ``patterns`` (a variable no
    pattern can bind would otherwise KeyError on the first solution).
    An empty BGP has exactly one (empty) solution, so
    ``select(graph, [], [])`` returns ``[()]``.
    """
    pattern_variables: set[Variable] = set()
    for pattern in patterns:
        pattern_variables |= _pattern_variables(pattern)
    unbound = [v for v in variables if v not in pattern_variables]
    if unbound:
        names = ", ".join(f"?{v.name}" for v in unbound)
        raise ValueError(f"projected variables not bound by any pattern: {names}")
    rows = [
        tuple(solution[variable] for variable in variables)
        for solution in solve(graph, patterns)
    ]
    if distinct:
        seen: set[tuple[Term, ...]] = set()
        unique_rows = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique_rows.append(row)
        return unique_rows
    return rows


def ask(graph: Graph, patterns: Sequence[TriplePattern]) -> bool:
    """SPARQL-ASK: does at least one solution exist?"""
    return bool(solve(graph, patterns))


def construct(
    graph: Graph,
    template: Sequence[TriplePattern],
    patterns: Sequence[TriplePattern],
) -> list[Triple]:
    """SPARQL-CONSTRUCT: instantiate ``template`` for every solution.

    Every template variable must be bound by the body ``patterns``; a
    variable the body can never bind would silently drop template
    triples (or worse, emit malformed ones), so it raises instead.
    """
    body_variables: set[Variable] = set()
    for pattern in patterns:
        body_variables |= _pattern_variables(pattern)
    unbound = [
        term
        for pattern in template
        for term in pattern
        if isinstance(term, Variable) and term not in body_variables
    ]
    if unbound:
        names = ", ".join(sorted({f"?{v.name}" for v in unbound}))
        raise ValueError(f"template variables never bound by the body: {names}")
    results: list[Triple] = []
    seen: set[Triple] = set()
    for solution in solve(graph, patterns):
        for pattern in template:
            subject, predicate, obj = _substitute(pattern, solution)
            triple = Triple(subject, predicate, obj)
            if triple not in seen:
                seen.add(triple)
                results.append(triple)
    return results
