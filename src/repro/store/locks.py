"""A reentrant reader–writer lock.

The paper guards its triple store with Java's ``ReentrantReadWriteLock``:
many concurrent readers, one writer, and a thread holding the write lock
may recursively take either lock.  Python's standard library has no
reader-writer lock, so this module provides one with the same semantics:

* any number of threads may hold the read lock concurrently;
* the write lock is exclusive against both readers and other writers;
* both locks are reentrant per-thread;
* a thread holding the write lock may acquire the read lock (downgrade-
  style access) without deadlocking;
* writers take priority over *new* readers to avoid writer starvation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReentrantReadWriteLock"]


class ReentrantReadWriteLock:
    """Reentrant many-readers / single-writer lock.

    Use the :meth:`read` and :meth:`write` context managers::

        lock = ReentrantReadWriteLock()
        with lock.read():
            ...  # shared access
        with lock.write():
            ...  # exclusive access
    """

    def __init__(self):
        self._condition = threading.Condition()
        self._readers: dict[int, int] = {}  # thread ident -> re-entrance count
        self._writer: int | None = None  # ident of the writing thread
        self._writer_count = 0  # write re-entrance depth
        self._waiting_writers = 0

    # --- read side ---------------------------------------------------------
    def acquire_read(self) -> None:
        ident = threading.get_ident()
        with self._condition:
            while True:
                if self._writer == ident:
                    break  # the writer may always read
                if ident in self._readers:
                    break  # reentrant read
                if self._writer is None and self._waiting_writers == 0:
                    break
                self._condition.wait()
            self._readers[ident] = self._readers.get(ident, 0) + 1

    def release_read(self) -> None:
        ident = threading.get_ident()
        with self._condition:
            count = self._readers.get(ident)
            if count is None:
                raise RuntimeError("release_read() without matching acquire_read()")
            if count == 1:
                del self._readers[ident]
            else:
                self._readers[ident] = count - 1
            if not self._readers:
                self._condition.notify_all()

    # --- write side ----------------------------------------------------------
    def acquire_write(self) -> None:
        ident = threading.get_ident()
        with self._condition:
            if self._writer == ident:
                self._writer_count += 1
                return
            if ident in self._readers:
                # Upgrading read -> write deadlocks by construction; refuse
                # loudly instead of hanging.
                raise RuntimeError("cannot upgrade a read lock to a write lock")
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._condition.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = ident
            self._writer_count = 1

    def release_write(self) -> None:
        ident = threading.get_ident()
        with self._condition:
            if self._writer != ident:
                raise RuntimeError("release_write() by a thread that does not hold the write lock")
            self._writer_count -= 1
            if self._writer_count == 0:
                self._writer = None
                self._condition.notify_all()

    # --- context managers ----------------------------------------------------
    @contextmanager
    def read(self):
        """Context manager for shared (read) access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Context manager for exclusive (write) access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # --- introspection (used by tests) ---------------------------------------
    @property
    def active_readers(self) -> int:
        with self._condition:
            return len(self._readers)

    @property
    def write_held(self) -> bool:
        with self._condition:
            return self._writer is not None
