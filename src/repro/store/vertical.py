"""Backward-compatible home of the original vertical store.

The implementation moved to :mod:`repro.store.backends.hashdict` when
storage became pluggable; ``VerticalTripleStore`` remains the historical
name for the default hash-dict backend.  New code should resolve
backends through :func:`repro.store.backends.create_store` (or pass a
``store="hashdict"|"sharded[:N]"`` spec to the components that accept
one) instead of constructing this class directly.
"""

from __future__ import annotations

from .backends.hashdict import HashDictStore

__all__ = ["VerticalTripleStore"]

VerticalTripleStore = HashDictStore
