"""Triple store substrate: pluggable backends, RW locking, BGP queries."""

from .backends import (
    HashDictStore,
    ShardedTripleStore,
    TripleStore,
    UnknownBackendError,
    available_backends,
    create_store,
    register_backend,
)
from .graph import Graph
from .locks import ReentrantReadWriteLock
from .query import (
    Binding,
    TriplePattern,
    ask,
    construct,
    explain,
    select,
    solve,
    solve_naive,
    unify,
)
from .vertical import VerticalTripleStore

__all__ = [
    "Graph",
    "ReentrantReadWriteLock",
    "TripleStore",
    "HashDictStore",
    "ShardedTripleStore",
    "VerticalTripleStore",
    "UnknownBackendError",
    "create_store",
    "register_backend",
    "available_backends",
    "TriplePattern",
    "Binding",
    "solve",
    "solve_naive",
    "explain",
    "select",
    "ask",
    "construct",
    "unify",
]
