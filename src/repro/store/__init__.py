"""Triple store substrate: vertical partitioning, RW locking, BGP queries."""

from .graph import Graph
from .locks import ReentrantReadWriteLock
from .query import TriplePattern, ask, construct, select, solve
from .vertical import VerticalTripleStore

__all__ = [
    "Graph",
    "ReentrantReadWriteLock",
    "VerticalTripleStore",
    "TriplePattern",
    "solve",
    "select",
    "ask",
    "construct",
]
