"""The process-global registry, tracer, and every metric family.

Eight instrumented layers, one prefix each — the conformance test and
the CI ``/metrics`` scrape key off :data:`LAYER_PREFIXES`:

==============  =====================================================
prefix          what it covers
==============  =====================================================
``http``        per-endpoint/status request latency, in-flight, slow
                queries
``coalescer``   write-queue depth, drain batch size, waiters
``engine``      apply latency, per-rule-module time, DRed counters
``persist``     WAL append + fsync latency, snapshot/compaction
``replication`` follower lag, bootstraps, feed truncations
``sharding``    cross-shard forwards, fixpoint rounds, revision skew
``tenancy``     admission outcomes, per-tenant queue depth
``process``     uptime, RSS, start time
==============  =====================================================

Importing this module is what registers everything, so a fresh
process scrapes all eight layers (unlabeled families expose an eager
zero sample; labeled ones expose their HELP/TYPE header).
"""

from __future__ import annotations

import os
import time

from .metrics import MetricsRegistry
from .tracing import SpanRing, Tracer

__all__ = [
    "LAYER_PREFIXES",
    "REGISTRY",
    "TRACER",
    "process_rss_bytes",
    "set_enabled",
]

#: One prefix per instrumented layer; metric names are
#: ``slider_<prefix>_...``.
LAYER_PREFIXES = (
    "http",
    "coalescer",
    "engine",
    "persist",
    "replication",
    "sharding",
    "tenancy",
    "process",
)

#: The process-global registry every layer records into.
REGISTRY = MetricsRegistry()

#: The process-global tracer feeding the ``/debug/traces`` ring.
TRACER = Tracer(SpanRing())


def set_enabled(enabled: bool) -> None:
    """Flip metrics + tracing together (the overhead bench's switch)."""
    REGISTRY.enabled = enabled
    TRACER.enabled = enabled


# -- http ---------------------------------------------------------------
HTTP_REQUESTS = REGISTRY.counter(
    "slider_http_requests_total",
    "HTTP requests served, by endpoint, method and status code.",
    ("endpoint", "method", "status"),
)
HTTP_REQUEST_SECONDS = REGISTRY.histogram(
    "slider_http_request_seconds",
    "HTTP request latency by endpoint.",
    ("endpoint",),
)
HTTP_IN_FLIGHT = REGISTRY.gauge(
    "slider_http_in_flight",
    "Requests currently being handled.",
)
HTTP_SLOW_QUERIES = REGISTRY.counter(
    "slider_http_slow_queries_total",
    "Read queries that crossed the slow-query threshold.",
    ("endpoint",),
)

# -- coalescer ----------------------------------------------------------
COALESCER_QUEUE_DEPTH = REGISTRY.gauge(
    "slider_coalescer_queue_depth",
    "Writes waiting in the coalescer queue.",
)
COALESCER_WAITERS = REGISTRY.gauge(
    "slider_coalescer_waiters",
    "Writer threads blocked on a pending coalesced commit.",
)
COALESCER_BATCH_SIZE = REGISTRY.histogram(
    "slider_coalescer_batch_size",
    "Writes netted into one drained commit batch.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
)
COALESCER_SUBMITTED = REGISTRY.counter(
    "slider_coalescer_submitted_total",
    "Writes submitted to the coalescer.",
)
COALESCER_COMMITS = REGISTRY.counter(
    "slider_coalescer_commits_total",
    "Coalesced commit batches drained.",
)
COALESCER_FAILED = REGISTRY.counter(
    "slider_coalescer_failed_total",
    "Coalesced commit batches that raised.",
)

# -- engine -------------------------------------------------------------
ENGINE_APPLY_SECONDS = REGISTRY.histogram(
    "slider_engine_apply_seconds",
    "End-to-end apply()/apply_at() commit latency.",
)
ENGINE_COMMITS = REGISTRY.counter(
    "slider_engine_commits_total",
    "Committed revisions (all engines in the process).",
)
ENGINE_RULE_SECONDS = REGISTRY.counter(
    "slider_engine_rule_seconds_total",
    "Cumulative time in each rule module (from InferenceReport.timings).",
    ("module",),
)
ENGINE_DRED_DELETED = REGISTRY.counter(
    "slider_engine_dred_deleted_total",
    "Derived triples deleted during DRed over-deletion.",
)
ENGINE_DRED_REDERIVED = REGISTRY.counter(
    "slider_engine_dred_rederived_total",
    "Derived triples re-derived during DRed rederivation.",
)

# -- persist ------------------------------------------------------------
PERSIST_WAL_APPEND_SECONDS = REGISTRY.histogram(
    "slider_persist_wal_append_seconds",
    "WAL record append latency (serialise + write + flush).",
)
PERSIST_FSYNC_SECONDS = REGISTRY.histogram(
    "slider_persist_fsync_seconds",
    "fsync latency on WAL commit.",
)
PERSIST_WAL_BYTES = REGISTRY.counter(
    "slider_persist_wal_bytes_total",
    "Bytes appended to the WAL.",
)
PERSIST_SNAPSHOT_SECONDS = REGISTRY.histogram(
    "slider_persist_snapshot_seconds",
    "Snapshot write (compaction) duration.",
)
PERSIST_SNAPSHOT_BYTES = REGISTRY.counter(
    "slider_persist_snapshot_bytes_total",
    "Bytes written into snapshots.",
)
PERSIST_COMPACTIONS = REGISTRY.counter(
    "slider_persist_compactions_total",
    "Snapshot compactions performed.",
)

# -- replication --------------------------------------------------------
REPLICATION_LAG = REGISTRY.gauge(
    "slider_replication_lag_revisions",
    "Revisions this follower trails its leader by.",
)
REPLICATION_BOOTSTRAPS = REGISTRY.counter(
    "slider_replication_bootstraps_total",
    "Snapshot bootstraps performed by this follower.",
)
REPLICATION_TRUNCATIONS = REGISTRY.counter(
    "slider_replication_feed_truncations_total",
    "Feed resumes refused because the requested revision was truncated.",
)
REPLICATION_APPLIED = REGISTRY.counter(
    "slider_replication_applied_total",
    "Replicated revisions applied via apply_at().",
)

# -- sharding -----------------------------------------------------------
SHARDING_FORWARDS = REGISTRY.counter(
    "slider_sharding_forwards_total",
    "Cross-shard forwarded delta triples, by kind.",
    ("kind",),
)
SHARDING_FIXPOINT_ROUNDS = REGISTRY.histogram(
    "slider_sharding_fixpoint_rounds",
    "Forward rounds needed to reach the global fixpoint per commit.",
    buckets=(0, 1, 2, 3, 4, 6, 8, 16, 32),
)
SHARDING_REVISION_SKEW = REGISTRY.gauge(
    "slider_sharding_revision_skew",
    "Max minus min of the per-shard revision vector.",
)
SHARDING_COMMITS = REGISTRY.counter(
    "slider_sharding_commits_total",
    "Global sharded commits merged.",
)

# -- tenancy ------------------------------------------------------------
TENANCY_ADMITTED = REGISTRY.counter(
    "slider_tenancy_admitted_total",
    "Tenant writes admitted past the token bucket.",
)
TENANCY_REJECTED = REGISTRY.counter(
    "slider_tenancy_rejected_total",
    "Tenant writes rejected, by status code (429 rate / 413 quota).",
    ("code",),
)
TENANCY_QUEUE_DEPTH = REGISTRY.gauge(
    "slider_tenancy_queue_depth",
    "Queued writes per tenant (cardinality-capped; see __overflow__).",
    ("tenant",),
)

# -- process ------------------------------------------------------------
PROCESS_START_TIME = REGISTRY.gauge(
    "slider_process_start_time_seconds",
    "Unix time this process imported the observability layer.",
)
PROCESS_UPTIME = REGISTRY.gauge(
    "slider_process_uptime_seconds",
    "Seconds since process start (refreshed at scrape time).",
)
PROCESS_RSS = REGISTRY.gauge(
    "slider_process_rss_bytes",
    "Resident set size (refreshed at scrape time).",
)

_STARTED_AT = time.time()
PROCESS_START_TIME.set(_STARTED_AT)


def process_rss_bytes() -> int:
    """Best-effort resident set size in bytes (0 if unknown)."""
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return rss_kb * 1024 if os.uname().sysname != "Darwin" else rss_kb
    except Exception:
        return 0


def _collect_process() -> None:
    now = time.time()
    was_enabled = REGISTRY.enabled
    REGISTRY.enabled = True
    try:
        PROCESS_UPTIME.set(now - _STARTED_AT)
        PROCESS_RSS.set(process_rss_bytes())
    finally:
        REGISTRY.enabled = was_enabled


REGISTRY.on_collect(_collect_process)
