"""Prometheus text-exposition parser + validator.

The single checker behind three consumers:

* the exposition-correctness unit tests (``tests/obs/``),
* the CI server/replication smoke jobs, which scrape a live node's
  ``/metrics`` and run ``python -m repro.obs.promcheck <url>``,
* the acceptance conformance test asserting every instrumented layer
  shows up in one scrape.

The parser is strict about what our registry promises: declared
``# TYPE`` for every sampled family, well-formed label syntax,
histogram bucket monotonicity, a ``+Inf`` bucket equal to ``_count``,
and a ``_sum`` series per histogram child.
"""

from __future__ import annotations

import re
import sys
import urllib.request

__all__ = ["parse_exposition", "validate_exposition"]

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+\d+)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def _parse_labels(raw: str, line: str) -> dict:
    labels = {}
    rest = raw
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            raise ValueError(f"malformed labels in sample: {line!r}")
        labels[match.group(1)] = _unescape(match.group(2))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValueError(f"malformed label separator in sample: {line!r}")
    return labels


def parse_exposition(text: str) -> dict:
    """Parse exposition text into ``{family: {type, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``;
    histogram/summary suffixes (``_bucket``/``_sum``/``_count``) are
    grouped under their base family.  Raises :class:`ValueError` on
    any syntax violation or undeclared sample.
    """
    families: dict = {}
    declared_for: dict = {}

    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ", 1)
            if len(parts) != 2:
                raise ValueError(f"malformed TYPE line: {line!r}")
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown metric type in: {line!r}")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["type"] = kind
            declared_for[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        sample_name, raw_labels, raw_value = match.groups()
        labels = _parse_labels(raw_labels, line) if raw_labels else {}
        value = _parse_value(raw_value)
        base = sample_name if sample_name in declared_for else None
        if base is None:
            for suffix in ("_bucket", "_sum", "_count"):
                if sample_name.endswith(suffix):
                    candidate = sample_name[: -len(suffix)]
                    if declared_for.get(candidate) == "histogram":
                        base = candidate
                        break
        if base is None:
            raise ValueError(
                f"sample {sample_name!r} has no preceding # TYPE declaration"
            )
        families[base]["samples"].append((sample_name, labels, value))
    return families


def _check_histogram(name: str, info: dict) -> None:
    by_child: dict = {}
    for sample_name, labels, value in info["samples"]:
        key = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        child = by_child.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise ValueError(f"{name}: _bucket sample missing le label")
            child["buckets"].append((_parse_value(labels["le"]), value))
        elif sample_name == f"{name}_sum":
            child["sum"] = value
        elif sample_name == f"{name}_count":
            child["count"] = value
        else:
            raise ValueError(f"{name}: unexpected histogram sample {sample_name}")
    if not by_child:
        return
    for key, child in by_child.items():
        buckets = child["buckets"]
        if not buckets:
            raise ValueError(f"{name}{dict(key)}: histogram child has no buckets")
        uppers = [u for u, _ in buckets]
        if uppers != sorted(uppers):
            raise ValueError(f"{name}{dict(key)}: bucket le values out of order")
        counts = [c for _, c in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            raise ValueError(f"{name}{dict(key)}: bucket counts not cumulative")
        if uppers[-1] != float("inf"):
            raise ValueError(f"{name}{dict(key)}: missing +Inf bucket")
        if child["count"] is None or child["sum"] is None:
            raise ValueError(f"{name}{dict(key)}: missing _sum or _count")
        if counts[-1] != child["count"]:
            raise ValueError(
                f"{name}{dict(key)}: +Inf bucket {counts[-1]} != _count "
                f"{child['count']}"
            )


def validate_exposition(text: str, *, require_layers: tuple = ()) -> dict:
    """Parse and validate; optionally require layer prefixes present.

    ``require_layers`` entries are layer names (``http``, ``engine``,
    ...); each must have at least one ``slider_<layer>_`` family in
    the scrape.  Returns the parsed families on success.
    """
    families = parse_exposition(text)
    for name, info in families.items():
        if info["type"] is None:
            raise ValueError(f"{name}: sampled without a # TYPE declaration")
        if info["type"] == "counter":
            for _, _, value in info["samples"]:
                if value < 0:
                    raise ValueError(f"{name}: negative counter sample {value}")
        if info["type"] == "histogram":
            _check_histogram(name, info)
    for layer in require_layers:
        prefix = f"slider_{layer}_"
        if not any(name.startswith(prefix) for name in families):
            raise ValueError(f"no {prefix}* family in exposition (layer {layer})")
    return families


def _fetch(target: str) -> str:
    if target.startswith(("http://", "https://")):
        with urllib.request.urlopen(target, timeout=10) as resp:
            return resp.read().decode("utf-8")
    with open(target, encoding="utf-8") as fh:
        return fh.read()


def main(argv: list | None = None) -> int:
    """``python -m repro.obs.promcheck <url-or-file> [layer,...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: promcheck <url-or-file> [required-layer,...]", file=sys.stderr)
        return 2
    target = argv[0]
    layers = tuple(argv[1].split(",")) if len(argv) > 1 and argv[1] else ()
    text = _fetch(target)
    try:
        families = validate_exposition(text, require_layers=layers)
    except ValueError as exc:
        print(f"promcheck: INVALID: {exc}", file=sys.stderr)
        return 1
    samples = sum(len(info["samples"]) for info in families.values())
    print(
        f"promcheck: ok — {len(families)} families, {samples} samples"
        + (f", layers {','.join(layers)} present" if layers else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
