"""Lock-striped metrics registry with Prometheus text exposition.

The production stack (HTTP server, coalescer, engine, persistence,
replication, sharding, tenancy) records into one process-global
:class:`MetricsRegistry` (see :mod:`repro.obs.instruments`), which the
server exposes at ``GET /metrics`` and the CLI prints via
``slider-reason metrics``.

Design constraints, in order:

* **stdlib only** — no prometheus_client;
* **cheap on the hot path** — a counter increment is one dict lookup
  plus one striped-lock acquire; when the registry is disabled it is a
  single attribute check;
* **bounded label cardinality** — every metric family caps its
  distinct label sets (default :data:`DEFAULT_MAX_LABEL_SETS`); once
  the cap is hit new label sets collapse into one explicit
  ``__overflow__`` child so a misbehaving dimension (10k tenants, say)
  cannot grow the scrape without bound;
* **valid exposition** — the text format follows the Prometheus
  0.0.4 conventions: ``# HELP`` / ``# TYPE`` headers, escaped label
  values, histograms rendered as cumulative ``_bucket`` series ending
  in ``+Inf`` plus ``_sum`` / ``_count``.

Lock striping: the registry owns :data:`STRIPES` locks; each child
(one label set of one family) is pinned to a stripe by hash at
creation, so concurrent writers on different series rarely contend
while writers on the *same* series stay exact.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OVERFLOW_LABEL",
]

#: Number of locks a registry stripes its children across.
STRIPES = 16

#: Per-family cap on distinct label sets before the overflow child
#: absorbs new ones.
DEFAULT_MAX_LABEL_SETS = 128

#: Label value substituted for every label of a series that landed in
#: the overflow bucket.
OVERFLOW_LABEL = "__overflow__"

#: Fixed log-scaled latency buckets (seconds), 100 µs → 60 s.  Shared
#: by every latency histogram so dashboards line up across layers.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text: str) -> str:
    """Escape a HELP string per the exposition format."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Child:
    """One (family, label set) series pinned to a registry stripe."""

    __slots__ = ("labels", "lock")

    def __init__(self, labels: tuple, lock: threading.Lock) -> None:
        self.labels = labels
        self.lock = lock


class _CounterChild(_Child):
    """A monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self, labels: tuple, lock: threading.Lock) -> None:
        super().__init__(labels, lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only go up")
        with self.lock:
            self.value += amount


class _GaugeChild(_Child):
    """A series that can go up, down, or be set outright."""

    __slots__ = ("value",)

    def __init__(self, labels: tuple, lock: threading.Lock) -> None:
        super().__init__(labels, lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self.lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self.lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)


class _HistogramChild(_Child):
    """Bucketed observations; counts are per-bucket, cumulated on render."""

    __slots__ = ("bucket_counts", "count", "sum", "uppers")

    def __init__(self, labels: tuple, lock: threading.Lock, uppers: tuple) -> None:
        super().__init__(labels, lock)
        self.uppers = uppers
        self.bucket_counts = [0] * (len(uppers) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect_left(self.uppers, value)
        with self.lock:
            self.bucket_counts[idx] += 1
            self.sum += value
            self.count += 1


class _Family:
    """A named metric with a fixed label schema and bounded children."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple,
        max_label_sets: int,
    ) -> None:
        if not name or not set(name) <= _NAME_OK or name[0].isdigit():
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._children: dict = {}
        self._children_lock = threading.Lock()
        self._max_label_sets = max_label_sets
        self._overflowed = 0
        if not self.labelnames:
            # Eager default child: unlabeled families always expose a
            # sample, so a fresh process still scrapes every layer.
            self._default = self._get_child(())
        else:
            self._default = None

    # -- child management ------------------------------------------------
    def _new_child(self, labels: tuple) -> _Child:
        raise NotImplementedError

    def _get_child(self, labelvalues: tuple) -> _Child:
        child = self._children.get(labelvalues)
        if child is not None:
            return child
        with self._children_lock:
            child = self._children.get(labelvalues)
            if child is not None:
                return child
            if (
                len(self._children) >= self._max_label_sets
                and labelvalues != (OVERFLOW_LABEL,) * len(self.labelnames)
            ):
                # Cardinality cap: collapse into the overflow series.
                self._overflowed += 1
                overflow = (OVERFLOW_LABEL,) * len(self.labelnames)
                child = self._children.get(overflow)
                if child is None:
                    child = self._new_child(overflow)
                    self._children[overflow] = child
                return child
            child = self._new_child(labelvalues)
            self._children[labelvalues] = child
            return child

    def labels(self, *labelvalues: str):
        """Return the child series for ``labelvalues`` (creating it)."""
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label values, "
                f"got {len(labelvalues)}"
            )
        return self._get_child(tuple(str(v) for v in labelvalues))

    @property
    def overflowed(self) -> int:
        """How many label sets were collapsed into the overflow child."""
        return self._overflowed

    def children(self) -> dict:
        """Snapshot of label-values tuple -> child."""
        with self._children_lock:
            return dict(self._children)

    # -- convenience on the default (unlabeled) child --------------------
    def _require_default(self) -> _Child:
        if self._default is None:
            raise ValueError(f"{self.name} has labels; use .labels(...)")
        return self._default

    # -- exposition ------------------------------------------------------
    def _label_str(self, labelvalues: tuple, extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, labelvalues)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render(self, out: list) -> None:
        """Append this family's exposition lines to ``out``."""
        out.append(f"# HELP {self.name} {_escape_help(self.help)}")
        out.append(f"# TYPE {self.name} {self.kind}")
        self._render_samples(out)

    def _render_samples(self, out: list) -> None:
        raise NotImplementedError


class Counter(_Family):
    """A monotonically increasing metric family."""

    kind = "counter"

    def _new_child(self, labels: tuple) -> _CounterChild:
        return _CounterChild(labels, self._registry._stripe_for(self.name, labels))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled series (no-op while disabled)."""
        if self._registry.enabled:
            self._require_default().inc(amount)

    def labels(self, *labelvalues: str) -> _CounterChild:
        """Return the counter child for ``labelvalues``."""
        return super().labels(*labelvalues)

    def inc_labels(self, *labelvalues: str, amount: float = 1.0) -> None:
        """Increment a labeled series (no-op while disabled)."""
        if self._registry.enabled:
            self.labels(*labelvalues).inc(amount)

    def value(self, *labelvalues: str) -> float:
        """Current value of one series (0.0 if never touched)."""
        child = self._children.get(tuple(str(v) for v in labelvalues))
        return child.value if child is not None else 0.0

    def _render_samples(self, out: list) -> None:
        for labelvalues, child in sorted(self.children().items()):
            out.append(
                f"{self.name}{self._label_str(labelvalues)} "
                f"{_render_value(child.value)}"
            )


class Gauge(_Family):
    """A metric family whose series can move in both directions."""

    kind = "gauge"

    def _new_child(self, labels: tuple) -> _GaugeChild:
        return _GaugeChild(labels, self._registry._stripe_for(self.name, labels))

    def set(self, value: float) -> None:
        """Set the unlabeled series (no-op while disabled)."""
        if self._registry.enabled:
            self._require_default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled series (no-op while disabled)."""
        if self._registry.enabled:
            self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabeled series (no-op while disabled)."""
        self.inc(-amount)

    def labels(self, *labelvalues: str) -> _GaugeChild:
        """Return the gauge child for ``labelvalues``."""
        return super().labels(*labelvalues)

    def set_labels(self, *labelvalues: str, value: float = 0.0) -> None:
        """Set a labeled series (no-op while disabled)."""
        if self._registry.enabled:
            self.labels(*labelvalues).set(value)

    def value(self, *labelvalues: str) -> float:
        """Current value of one series (0.0 if never touched)."""
        child = self._children.get(tuple(str(v) for v in labelvalues))
        return child.value if child is not None else 0.0

    def _render_samples(self, out: list) -> None:
        for labelvalues, child in sorted(self.children().items()):
            out.append(
                f"{self.name}{self._label_str(labelvalues)} "
                f"{_render_value(child.value)}"
            )


class Histogram(_Family):
    """Log-scaled latency (or size) distribution family."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple,
        max_label_sets: int,
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError("histogram needs at least one finite bucket")
        self._uppers = uppers
        super().__init__(registry, name, help, labelnames, max_label_sets)

    def _new_child(self, labels: tuple) -> _HistogramChild:
        return _HistogramChild(
            labels, self._registry._stripe_for(self.name, labels), self._uppers
        )

    def observe(self, value: float) -> None:
        """Record one observation on the unlabeled series."""
        if self._registry.enabled:
            self._require_default().observe(value)

    def labels(self, *labelvalues: str) -> _HistogramChild:
        """Return the histogram child for ``labelvalues``."""
        return super().labels(*labelvalues)

    def observe_labels(self, *labelvalues: str, value: float = 0.0) -> None:
        """Record one observation on a labeled series."""
        if self._registry.enabled:
            self.labels(*labelvalues).observe(value)

    def time(self) -> "_HistogramTimer":
        """Context manager timing a block into the unlabeled series."""
        return _HistogramTimer(self)

    def _render_samples(self, out: list) -> None:
        for labelvalues, child in sorted(self.children().items()):
            with child.lock:
                counts = list(child.bucket_counts)
                total = child.count
                ssum = child.sum
            running = 0
            for upper, n in zip(child.uppers, counts):
                running += n
                le = f'le="{_render_value(upper)}"'
                out.append(
                    f"{self.name}_bucket{self._label_str(labelvalues, le)} {running}"
                )
            running += counts[-1]
            inf = 'le="+Inf"'
            out.append(
                f"{self.name}_bucket{self._label_str(labelvalues, inf)} {running}"
            )
            out.append(
                f"{self.name}_sum{self._label_str(labelvalues)} {_render_value(ssum)}"
            )
            out.append(f"{self.name}_count{self._label_str(labelvalues)} {total}")


class _HistogramTimer:
    """Times a ``with`` block into a histogram's unlabeled series."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Lock-striped home of every metric family in one process.

    ``enabled=False`` turns every ``inc``/``set``/``observe`` done
    through the family-level convenience methods into a single
    attribute check — the switch the overhead bench flips to measure
    instrumentation cost.
    """

    def __init__(
        self,
        *,
        stripes: int = STRIPES,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> None:
        self.enabled = True
        self._stripes = tuple(threading.Lock() for _ in range(max(1, stripes)))
        self._families: dict = {}
        self._families_lock = threading.Lock()
        self._max_label_sets = max_label_sets
        self._collect_hooks: list = []

    # -- internals -------------------------------------------------------
    def _stripe_for(self, name: str, labels: tuple) -> threading.Lock:
        return self._stripes[hash((name, labels)) % len(self._stripes)]

    def _register(self, family: _Family) -> _Family:
        with self._families_lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family):
                    raise ValueError(
                        f"metric {family.name} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._families[family.name] = family
            return family

    # -- family constructors ---------------------------------------------
    def counter(self, name: str, help: str, labelnames: tuple = ()) -> Counter:
        """Get or create a counter family."""
        return self._register(
            Counter(self, name, help, tuple(labelnames), self._max_label_sets)
        )

    def gauge(self, name: str, help: str, labelnames: tuple = ()) -> Gauge:
        """Get or create a gauge family."""
        return self._register(
            Gauge(self, name, help, tuple(labelnames), self._max_label_sets)
        )

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple = (),
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family."""
        return self._register(
            Histogram(
                self, name, help, tuple(labelnames), self._max_label_sets, buckets
            )
        )

    # -- exposition ------------------------------------------------------
    def on_collect(self, hook) -> None:
        """Register a zero-arg hook run before every exposition."""
        self._collect_hooks.append(hook)

    def families(self) -> dict:
        """Snapshot of name -> family."""
        with self._families_lock:
            return dict(self._families)

    def expose(self) -> str:
        """Render the whole registry in Prometheus text format."""
        for hook in list(self._collect_hooks):
            hook()
        out: list = []
        for _, family in sorted(self.families().items()):
            family.render(out)
        return "\n".join(out) + "\n" if out else ""
