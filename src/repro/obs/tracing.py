"""Cross-layer request/commit tracing with a bounded span ring.

A ``trace_id`` is minted (or honored from an ``X-Trace-Id`` header) at
the HTTP edge and carried through coalescer batching → ``apply()`` →
per-shard sub-commits → subscription delivery.  Every completed span
lands in a bounded :class:`SpanRing` the server exports as JSON lines
at ``GET /debug/traces``.

Because the write path hops threads (handler thread → coalescer drain
thread → shard worker pool), context is *explicit* where it must be:
:meth:`Tracer.current` captures a :class:`SpanContext` that any other
thread can pass back as ``parent=``.  Within one thread a plain
thread-local stack keeps nesting implicit.

Coalescing is first-class: a commit span carries ``trace_ids`` — the
trace ids of **every** writer netted into that commit — so batching is
visible, and each writer's id is findable on the shared commit span
and all of its children.

:class:`BoundedEventLog` is the sequenced, bounded event primitive
shared with the paper-demo :class:`repro.reasoner.trace.Trace`; both
the span ring and the inference trace are bounded the same way.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import NamedTuple

__all__ = [
    "BoundedEventLog",
    "Span",
    "SpanContext",
    "SpanRing",
    "Tracer",
    "new_trace_id",
]

#: Default number of finished spans the ring retains.
DEFAULT_RING_CAPACITY = 2048

#: Default bound on a demo/inference event log (satellite: the
#: ``Trace`` event list is bounded the same way the span ring is).
DEFAULT_EVENT_CAPACITY = 65536

#: Per-span cap on attached events.
MAX_SPAN_EVENTS = 64


# Ids are a random per-process prefix plus an atomic counter: unique
# across processes, ordered within one, and ~5x cheaper to mint than a
# uuid4 — ids are minted on every commit, so this is hot-path cost.
_ID_PREFIX = os.urandom(4).hex()
_ID_COUNTER = itertools.count()


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id."""
    return f"{_ID_PREFIX}{next(_ID_COUNTER) & 0xFFFFFFFF:08x}"


def _new_span_id() -> str:
    """Mint a fresh 8-hex-char span id (process-unique, cheap)."""
    return f"{next(_ID_COUNTER) & 0xFFFFFFFF:08x}"


class SpanContext(NamedTuple):
    """Thread-portable handle on an open span."""

    trace_ids: tuple
    span_id: str


class Span:
    """One timed operation; use via ``with tracer.span(...)``."""

    __slots__ = (
        "attrs",
        "duration",
        "events",
        "name",
        "parent_id",
        "span_id",
        "start",
        "trace_ids",
    )

    def __init__(
        self,
        name: str,
        trace_ids: tuple,
        span_id: str,
        parent_id: str | None,
        attrs: dict,
    ) -> None:
        self.name = name
        self.trace_ids = trace_ids
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.events: list = []
        self.start = time.time()
        self.duration = 0.0

    @property
    def trace_id(self) -> str:
        """Primary trace id (the first writer's, under coalescing)."""
        return self.trace_ids[0]

    def context(self) -> SpanContext:
        """Capture a context other threads can parent spans on."""
        return SpanContext(self.trace_ids, self.span_id)

    def set(self, **attrs) -> None:
        """Attach attributes to the span."""
        self.attrs.update(attrs)

    def event(self, kind: str, **payload) -> None:
        """Attach a point-in-time event (bounded per span)."""
        if len(self.events) < MAX_SPAN_EVENTS:
            self.events.append({"t": time.time(), "kind": kind, **payload})

    def as_dict(self) -> dict:
        """JSON-ready representation (one ``/debug/traces`` line)."""
        record = {
            "trace_id": self.trace_id,
            "trace_ids": list(self.trace_ids),
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": round(self.duration * 1000.0, 3),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.events:
            record["events"] = self.events
        return record


class _NoopSpan:
    """Stand-in when tracing is disabled; absorbs the span API."""

    __slots__ = ()
    trace_ids = ("",)
    trace_id = ""
    span_id = ""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def context(self) -> None:
        """Disabled tracing has no context to capture."""
        return None

    def set(self, **attrs) -> None:
        """No-op."""

    def event(self, kind: str, **payload) -> None:
        """No-op."""


_NOOP_SPAN = _NoopSpan()


class SpanRing:
    """Thread-safe bounded ring of finished spans."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        """Record a finished span (oldest evicted past capacity).

        Stores the span object itself — rendering to a dict is deferred
        to :meth:`snapshot`, so the per-commit hot path pays one append,
        and the (rare) scrape pays the conversion.
        """
        with self._lock:
            self._spans.append(span)

    def snapshot(
        self, *, trace_id: str | None = None, limit: int | None = None
    ) -> list:
        """Most-recent-last span dicts, optionally filtered."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if trace_id in s.trace_ids]
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return [s.as_dict() for s in spans]

    def to_jsonl(
        self, *, trace_id: str | None = None, limit: int | None = None
    ) -> str:
        """Render the ring as JSON lines (the ``/debug/traces`` body)."""
        spans = self.snapshot(trace_id=trace_id, limit=limit)
        return "".join(json.dumps(s, sort_keys=True) + "\n" for s in spans)

    def clear(self) -> None:
        """Drop every retained span."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class _SpanHandle:
    """Context manager pushing/popping one span on the tracer."""

    __slots__ = ("_span", "_started", "_tracer")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._started = 0.0

    def __enter__(self) -> Span:
        self._started = time.perf_counter()
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.duration = time.perf_counter() - self._started
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._pop(self._span)
        self._tracer.ring.add(self._span)


class Tracer:
    """Mints spans, keeps per-thread nesting, records into a ring."""

    def __init__(
        self, ring: SpanRing | None = None, *, enabled: bool = True
    ) -> None:
        self.ring = ring if ring is not None else SpanRing()
        self.enabled = enabled
        self._local = threading.local()

    # -- thread-local stack ----------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current(self) -> SpanContext | None:
        """Context of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].context() if stack else None

    # -- span construction -----------------------------------------------
    def span(
        self,
        name: str,
        *,
        parent: SpanContext | Span | None = None,
        trace_ids: tuple | list | None = None,
        **attrs,
    ):
        """Open a span as a context manager.

        ``parent`` may be a :class:`SpanContext` captured on another
        thread; omitted, the innermost open span on *this* thread is
        the parent.  ``trace_ids`` seeds/overrides the trace ids (the
        coalescer passes every batched writer's id here); a root span
        with no ids mints one.
        """
        if not self.enabled:
            return _NOOP_SPAN
        if parent is None:
            ctx = self.current()
        elif isinstance(parent, Span):
            ctx = parent.context()
        else:
            ctx = parent
        if trace_ids:
            ids = tuple(dict.fromkeys(t for t in trace_ids if t)) or (
                new_trace_id(),
            )
        elif ctx is not None:
            ids = ctx.trace_ids
        else:
            ids = (new_trace_id(),)
        span = Span(
            name,
            ids,
            _new_span_id(),
            ctx.span_id if ctx is not None else None,
            attrs,
        )
        return _SpanHandle(self, span)

    def event(self, kind: str, **payload) -> None:
        """Attach an event to the innermost open span, if any."""
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].event(kind, **payload)


class BoundedEventLog:
    """Sequenced, thread-safe, bounded event storage.

    The primitive behind both span events and the paper-demo
    :class:`repro.reasoner.trace.Trace`: events are ``(seq, timestamp,
    kind, payload)`` tuples, sequence numbers keep increasing after
    eviction so truncation is detectable.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    def record(self, kind: str, payload: dict, stamp: float | None = None) -> tuple:
        """Append one event; returns its ``(seq, timestamp)``.

        ``stamp`` overrides the wall-clock timestamp — the demo trace
        records deterministic run-relative times through it.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
            if stamp is None:
                stamp = time.time()
            self._events.append((seq, stamp, kind, payload))
        return seq, stamp

    def snapshot(self) -> list:
        """Ordered copy of the retained ``(seq, ts, kind, payload)``."""
        with self._lock:
            return list(self._events)

    @property
    def next_seq(self) -> int:
        """Sequence number the next event will get."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """How many events eviction has discarded so far."""
        with self._lock:
            return self._seq - len(self._events)

    def clear(self, reset_seq: bool = False) -> None:
        """Drop retained events.

        Sequence numbering continues by default (truncation stays
        detectable); ``reset_seq`` restarts it from zero — the demo
        trace's ``clear()`` contract.
        """
        with self._lock:
            self._events.clear()
            if reset_seq:
                self._seq = 0

    def restore(self, events) -> None:
        """Replace the contents with pre-recorded ``(seq, ts, kind, payload)``.

        Sequence numbering resumes after the highest restored ``seq``;
        more events than ``capacity`` keeps only the newest (the load
        path stays bounded like the live one).
        """
        with self._lock:
            self._events.clear()
            for event in events:
                self._events.append(tuple(event))
            self._seq = self._events[-1][0] + 1 if self._events else 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
