"""End-to-end observability: metrics, tracing, and the slow-query log.

Three pillars, stdlib only (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — a lock-striped :class:`MetricsRegistry`
  with bounded label cardinality, exposed in Prometheus text format at
  ``GET /metrics`` and via ``slider-reason metrics``;
* :mod:`repro.obs.tracing` — ``trace_id`` propagation from the HTTP
  edge through coalescing, commit, per-shard sub-commits and
  subscription delivery, recorded into a bounded span ring served at
  ``GET /debug/traces``;
* :mod:`repro.obs.slowlog` — reads over a configurable latency
  threshold logged with BGP, tenant, timing breakdown and the
  planner's ``explain()`` payload.

Every layer records into the process-global :data:`REGISTRY` /
:data:`TRACER` pair defined in :mod:`repro.obs.instruments`;
``set_enabled(False)`` turns the whole subsystem into attribute
checks (the overhead bench's baseline mode).
"""

from .instruments import (
    LAYER_PREFIXES,
    REGISTRY,
    TRACER,
    process_rss_bytes,
    set_enabled,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_MAX_LABEL_SETS,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .promcheck import parse_exposition, validate_exposition
from .slowlog import SlowQueryLog
from .tracing import (
    BoundedEventLog,
    Span,
    SpanContext,
    SpanRing,
    Tracer,
    new_trace_id,
)

__all__ = [
    "BoundedEventLog",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "Gauge",
    "Histogram",
    "LAYER_PREFIXES",
    "MetricsRegistry",
    "OVERFLOW_LABEL",
    "REGISTRY",
    "SlowQueryLog",
    "Span",
    "SpanContext",
    "SpanRing",
    "TRACER",
    "Tracer",
    "new_trace_id",
    "parse_exposition",
    "process_rss_bytes",
    "set_enabled",
    "validate_exposition",
]
