"""Slow-query log for the read endpoints.

``/select`` / ``/ask`` / ``/construct`` calls that exceed a
configurable threshold are logged (logger ``repro.obs.slowlog``) with
the BGP, tenant, timing breakdown, and — when the caller provides a
``explain_fn`` — the cost-based planner's ``explain()`` payload, and
retained in a bounded ring for inspection from tests and tooling.

The threshold is wall-clock seconds; ``threshold <= 0`` disables the
log entirely (the hot path then pays one float compare).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque

__all__ = ["SlowQueryLog"]

LOGGER = logging.getLogger("repro.obs.slowlog")

#: Retained slow-query records.
DEFAULT_CAPACITY = 256


class SlowQueryLog:
    """Bounded, thread-safe record of queries over a latency threshold."""

    def __init__(
        self,
        threshold_seconds: float = 0.25,
        *,
        capacity: int = DEFAULT_CAPACITY,
        logger: logging.Logger | None = None,
    ) -> None:
        self.threshold_seconds = float(threshold_seconds)
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._logger = logger if logger is not None else LOGGER

    @property
    def enabled(self) -> bool:
        """Whether the log records anything at all."""
        return self.threshold_seconds > 0

    def observe(
        self,
        *,
        endpoint: str,
        seconds: float,
        query: str = "",
        tenant: str | None = None,
        trace_id: str | None = None,
        breakdown: dict | None = None,
        explain_fn=None,
    ) -> dict | None:
        """Record one query if it crossed the threshold.

        ``explain_fn`` is only invoked for queries that were actually
        slow, so the planner's explain cost is never paid on the fast
        path.  Returns the recorded entry, or ``None`` when fast.
        """
        if not self.enabled or seconds < self.threshold_seconds:
            return None
        explain = None
        if explain_fn is not None:
            try:
                explain = explain_fn()
            except Exception as exc:  # explain must never fail the query
                explain = {"error": str(exc)}
        entry = {
            "t": time.time(),
            "endpoint": endpoint,
            "seconds": round(seconds, 6),
            "threshold_seconds": self.threshold_seconds,
            "query": query,
            "tenant": tenant,
            "trace_id": trace_id,
            "breakdown": breakdown or {},
            "explain": explain,
        }
        with self._lock:
            self._entries.append(entry)
        self._logger.warning(
            "slow query %s %.1f ms (threshold %.1f ms) tenant=%s "
            "trace_id=%s query=%s breakdown=%s",
            endpoint,
            seconds * 1000.0,
            self.threshold_seconds * 1000.0,
            tenant or "-",
            trace_id or "-",
            query,
            json.dumps(breakdown or {}, sort_keys=True),
        )
        return entry

    def recent(self, limit: int | None = None) -> list:
        """Most-recent-last slow-query entries."""
        with self._lock:
            entries = list(self._entries)
        if limit is not None and limit >= 0:
            entries = entries[-limit:]
        return entries

    def clear(self) -> None:
        """Drop retained entries."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
