"""Paper-style rendering: Table 1 and the Figure 3 ASCII chart.

These renderers print the same rows/series the paper reports so a run of
the benchmark harness can be eyeballed against the original numbers
(recorded in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .harness import Table1Row

__all__ = [
    "render_table1_half",
    "render_table1",
    "render_figure3",
    "render_average_row",
    "PAPER_TABLE1",
]

#: The paper's Table 1, transcribed: dataset -> fragment ->
#: (input, inferred, owlim_seconds, slider_seconds, gain_pct).
#: ``None`` marks the wordnet/ρdf dashes (zero inferences, times omitted).
PAPER_TABLE1: Mapping[str, Mapping[str, tuple]] = {
    "BSBM_100k": {
        "rhodf": (99914, 544, 9.907, 4.636, 113.69),
        "rdfs": (99914, 33752, 7.487, 4.558, 64.25),
    },
    "BSBM_200k": {
        "rhodf": (200007, 1102, 13.338, 6.059, 120.12),
        "rdfs": (200007, 64492, 11.064, 6.198, 78.52),
    },
    "BSBM_500k": {
        "rhodf": (500037, 4347, 23.595, 11.133, 111.93),
        "rdfs": (500037, 157831, 20.580, 10.984, 87.36),
    },
    "BSBM_1M": {
        "rhodf": (1000000, 8664, 39.364, 22.357, 76.07),
        "rdfs": (1000000, 304065, 35.602, 22.192, 60.43),
    },
    "BSBM_5M": {
        "rhodf": (5000000, 43212, 170.151, 126.292, 34.73),
        "rdfs": (5000000, 1449107, 160.699, 127.037, 26.50),
    },
    "wikipedia": {
        "rhodf": (458369, 191574, 18.802, 17.422, 7.92),
        "rdfs": (458369, 555653, 17.186, 22.443, -23.42),
    },
    "wordnet": {
        "rhodf": (473589, 0, None, None, None),
        "rdfs": (473589, 321888, 15.075, 8.828, 70.77),
    },
    "subClassOf10": {
        "rhodf": (20, 36, 3.507, 1.209, 190.05),
        "rdfs": (20, 50, 1.423, 1.216, 16.99),
    },
    "subClassOf20": {
        "rhodf": (40, 171, 3.730, 1.316, 183.41),
        "rdfs": (40, 195, 1.536, 1.330, 15.53),
    },
    "subClassOf50": {
        "rhodf": (100, 1176, 4.159, 1.615, 157.49),
        "rdfs": (100, 1230, 1.865, 1.583, 17.78),
    },
    "subClassOf100": {
        "rhodf": (200, 4851, 4.397, 1.827, 140.60),
        "rdfs": (200, 4955, 2.242, 1.805, 24.21),
    },
    "subClassOf200": {
        "rhodf": (400, 19701, 4.962, 2.210, 124.56),
        "rdfs": (400, 19905, 2.837, 2.170, 30.69),
    },
    "subClassOf500": {
        "rhodf": (1000, 124251, 9.862, 8.102, 21.72),
        "rdfs": (1000, 124755, 7.584, 7.625, -0.54),
    },
}

_HALF_HEADER = (
    f"{'Ontology':<16} {'Input':>9} {'Inferred':>9} "
    f"{'Baseline':>10} {'Slider':>10} {'Gain':>9}"
)


def _format_row(row: Table1Row) -> str:
    return (
        f"{row.dataset:<16} {row.input_count:>9} {row.inferred_count:>9} "
        f"{row.baseline_seconds:>9.3f}s {row.slider_seconds:>9.3f}s "
        f"{row.gain:>8.2f}%"
    )


def render_average_row(rows: Sequence[Table1Row]) -> str:
    """The paper's 'Average' gain line (mean of per-row gains)."""
    gains = [row.gain for row in rows if row.inferred_count > 0]
    if not gains:
        return f"{'Average':<16} {'':>9} {'':>9} {'':>10} {'':>10} {'n/a':>9}"
    average = sum(gains) / len(gains)
    return f"{'Average':<16} {'':>9} {'':>9} {'':>10} {'':>10} {average:>8.2f}%"


def render_table1_half(rows: Sequence[Table1Row], fragment: str) -> str:
    """Render one fragment's half of Table 1, with the average gain."""
    lines = [f"--- {fragment} reasoning ---", _HALF_HEADER]
    lines.extend(_format_row(row) for row in rows)
    lines.append(render_average_row(rows))
    return "\n".join(lines)


def render_table1(
    rhodf_rows: Sequence[Table1Row], rdfs_rows: Sequence[Table1Row]
) -> str:
    """Render the full Table 1 (both halves)."""
    return (
        render_table1_half(rhodf_rows, "ρdf")
        + "\n\n"
        + render_table1_half(rdfs_rows, "RDFS")
    )


def render_figure3(
    rhodf_rows: Sequence[Table1Row],
    rdfs_rows: Sequence[Table1Row],
    width: int = 50,
) -> str:
    """ASCII rendering of Figure 3: per-ontology inference-time bars.

    Two panels (RDFS on top, ρdf below, as in the paper), one pair of
    bars per ontology: baseline (▒) and Slider (█).  BSBM_5M is omitted
    "for the sake of clarity", as in the paper.
    """
    panels = []
    for fragment, rows in (("RDFS", rdfs_rows), ("ρdf", rhodf_rows)):
        plotted = [row for row in rows if row.dataset != "BSBM_5M"]
        if not plotted:
            panels.append(f"[{fragment}] (no data)")
            continue
        peak = max(
            max(row.baseline_seconds, row.slider_seconds) for row in plotted
        ) or 1.0
        lines = [f"[{fragment}] inference time (lower is better)   ▒ baseline  █ slider"]
        for row in plotted:
            base_bar = "▒" * max(1, round(row.baseline_seconds / peak * width))
            slider_bar = "█" * max(1, round(row.slider_seconds / peak * width))
            lines.append(f"  {row.dataset:<16} {base_bar} {row.baseline_seconds:.3f}s")
            lines.append(f"  {'':<16} {slider_bar} {row.slider_seconds:.3f}s")
        panels.append("\n".join(lines))
    return "\n\n".join(panels)
