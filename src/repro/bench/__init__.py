"""Benchmark harness: timed runs, gains, paper-style tables and charts."""

from .micro import MicroResult, run_micro
from .obs_overhead import OBSOverheadResult, run_obs_overhead
from .planner import PlannerBenchResult, run_planner_bench
from .recovery import RecoveryResult, run_recovery
from .replication import ReplicationBenchResult, run_replication_bench
from .server_load import ServerLoadResult, run_server_load
from .sharding import ShardingBenchResult, run_sharding_bench
from .tenancy_load import (
    RetryAfterClient,
    TenancyLoadResult,
    run_tenancy_load,
)
from .harness import (
    RunResult,
    Table1Row,
    clear_dataset_cache,
    dataset_file,
    gain_percent,
    run_batch,
    run_semi_naive,
    run_slider,
    run_table1,
    run_table1_row,
)
from .tables import (
    PAPER_TABLE1,
    render_average_row,
    render_figure3,
    render_table1,
    render_table1_half,
)

__all__ = [
    "RunResult",
    "MicroResult",
    "run_micro",
    "OBSOverheadResult",
    "run_obs_overhead",
    "PlannerBenchResult",
    "run_planner_bench",
    "RecoveryResult",
    "run_recovery",
    "ReplicationBenchResult",
    "run_replication_bench",
    "ServerLoadResult",
    "run_server_load",
    "ShardingBenchResult",
    "run_sharding_bench",
    "RetryAfterClient",
    "TenancyLoadResult",
    "run_tenancy_load",
    "Table1Row",
    "run_slider",
    "run_batch",
    "run_semi_naive",
    "run_table1",
    "run_table1_row",
    "gain_percent",
    "dataset_file",
    "clear_dataset_cache",
    "PAPER_TABLE1",
    "render_table1",
    "render_table1_half",
    "render_average_row",
    "render_figure3",
]
