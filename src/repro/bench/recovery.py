"""bench_recovery: what durability costs, and what recovery saves.

The durability subsystem's whole argument is that restarting a service
must not mean re-materializing the closure.  This harness quantifies it
with three timed phases over one dataset file (paper §3 protocol —
parse time included wherever parsing happens):

1. **cold**   — plain in-memory materialization (the restart cost
   *without* persistence; also the correctness reference);
2. **snapshot-load** — recover a directory holding a single compacted
   snapshot: the steady-state restart path.  The headline ratio is
   ``cold_seconds / snapshot_load_seconds``;
3. **replay** — recover a directory holding *only* a changelog (one
   journaled revision per stream chunk, no snapshot): the worst-case
   restart path, and the WAL-replay throughput measurement.

Every recovered closure is asserted identical to the cold one, so the
benchmark doubles as an end-to-end recovery correctness check.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Callable

from ..datasets.loader import DEFAULT_SCALE
from ..persist.journal import read_journal
from ..reasoner.engine import Slider
from ..reasoner.stream import FileSource, StreamPump
from .harness import dataset_file

__all__ = ["RecoveryResult", "run_recovery"]


class RecoveryResult:
    """Outcome of one recovery benchmark (see module docstring)."""

    __slots__ = (
        "dataset", "fragment", "scale", "store",
        "input_count", "inferred_count",
        "cold_seconds", "durable_build_seconds",
        "snapshot_load_seconds", "snapshot_bytes",
        "replay_seconds", "replay_records", "journal_bytes",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @property
    def speedup(self) -> float:
        """How many times faster a snapshot load is than cold start."""
        if self.snapshot_load_seconds <= 0:
            return float("inf")
        return self.cold_seconds / self.snapshot_load_seconds

    @property
    def replay_throughput(self) -> float:
        """Input triples re-applied per second of pure-changelog replay."""
        if self.replay_seconds <= 0:
            return float("inf")
        return self.input_count / self.replay_seconds

    def as_dict(self) -> dict:
        data = {name: getattr(self, name) for name in self.__slots__}
        data["speedup"] = self.speedup
        data["replay_throughput"] = self.replay_throughput
        return data

    def __repr__(self):
        return (
            f"<RecoveryResult {self.dataset}/{self.fragment} "
            f"cold={self.cold_seconds:.3f}s "
            f"snapshot_load={self.snapshot_load_seconds:.3f}s "
            f"({self.speedup:.1f}x) replay={self.replay_seconds:.3f}s>"
        )


def _engine(fragment: str, store: str, workers: int, buffer_size: int, **extra) -> Slider:
    return Slider(
        fragment=fragment, workers=workers, buffer_size=buffer_size,
        timeout=0.05 if workers else None, store=store, **extra,
    )


def run_recovery(
    name: str,
    fragment: str = "rhodf",
    scale: float = DEFAULT_SCALE,
    store: str = "hashdict",
    workers: int = 0,
    buffer_size: int = 200,
    chunk_size: int = 512,
    fsync: bool = False,
    recovery_rounds: int = 2,
    clock: Callable[[], float] = time.perf_counter,
) -> RecoveryResult:
    """Measure cold start vs snapshot load vs changelog replay.

    ``fsync=False`` by default: the build phase's fsyncs measure the
    disk, not the engine, and recovery (the thing under test) never
    fsyncs.  Pass ``fsync=True`` to time the real write-path tax.

    The recovery phases are milliseconds-fast, so a single scheduler
    hiccup can swamp them; they run ``recovery_rounds`` times and keep
    the best (each round is a full fresh recovery — nothing carries
    over between rounds but the OS page cache, which a restarting
    service would enjoy too).
    """
    path = dataset_file(name, scale)
    work_dir = Path(tempfile.mkdtemp(prefix="slider-recovery-"))
    snap_dir = work_dir / "snapshot-state"
    wal_dir = work_dir / "wal-state"
    try:
        # Phase 1 — cold in-memory materialization (the reference).
        start = clock()
        with _engine(fragment, store, workers, buffer_size) as cold:
            cold.load(path)
            cold.flush()
            cold_seconds = clock() - start
            # Term-level reference closure: robust to dictionary-id
            # assignment order differing between runs.
            reference = set(cold.graph)
            input_count = cold.input_count
            inferred_count = cold.inferred_count

        # Phase 2a — build the compacted durable state.
        start = clock()
        with _engine(
            fragment, store, workers, buffer_size,
            persist_dir=snap_dir, persist_fsync=fsync,
        ) as durable:
            durable.load(path)
            durable.flush()
            durable.snapshot()
            durable_build_seconds = clock() - start
        snapshot_bytes = (snap_dir / "snapshot.slider").stat().st_size

        # Phase 2b — recover from the snapshot (steady-state restart).
        snapshot_load_seconds = float("inf")
        for _ in range(max(1, recovery_rounds)):
            start = clock()
            recovered = _engine(
                fragment, store, workers, buffer_size,
                persist_dir=snap_dir, persist_fsync=fsync,
            )
            snapshot_load_seconds = min(snapshot_load_seconds, clock() - start)
            assert set(recovered.graph) == reference, "snapshot recovery diverged"
            recovered.close()

        # Phase 3a — build a journal-only state: one revision per chunk,
        # no snapshot (the worst-case restart: everything replays).
        with _engine(
            fragment, store, workers, buffer_size,
            persist_dir=wal_dir, persist_fsync=fsync,
            compact_journal_bytes=None,
        ) as streamer:
            pump = StreamPump(
                streamer, FileSource(path), chunk_size=chunk_size, transactional=True
            )
            pump.run()
        journal_path = wal_dir / "changelog.wal"
        journal_bytes = journal_path.stat().st_size
        replay_records = len(read_journal(journal_path)[0])

        # Phase 3b — recover by pure changelog replay.
        replay_seconds = float("inf")
        for _ in range(max(1, recovery_rounds)):
            start = clock()
            replayed = _engine(
                fragment, store, workers, buffer_size,
                persist_dir=wal_dir, persist_fsync=fsync,
                compact_journal_bytes=None,
            )
            replay_seconds = min(replay_seconds, clock() - start)
            assert set(replayed.graph) == reference, "changelog replay diverged"
            replayed.close()

        return RecoveryResult(
            dataset=name, fragment=fragment, scale=scale, store=store,
            input_count=input_count, inferred_count=inferred_count,
            cold_seconds=cold_seconds,
            durable_build_seconds=durable_build_seconds,
            snapshot_load_seconds=snapshot_load_seconds,
            snapshot_bytes=snapshot_bytes,
            replay_seconds=replay_seconds,
            replay_records=replay_records,
            journal_bytes=journal_bytes,
        )
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
