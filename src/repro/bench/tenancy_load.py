"""Multi-tenant load generation: zipfian fan-out, noisy neighbours, 429s.

Three experiments back the tenancy acceptance bar:

* :func:`run_zipfian_tenants` — write throughput across ~1k tenants
  whose popularity follows a zipfian law (a handful of hot tenants, a
  long cold tail), the realistic shape for multi-tenant serving.  Every
  write runs the full per-tenant pipeline: admission, fair-share
  queueing, engine commit under the tenant's named graph.
* :func:`run_noisy_neighbor` — the isolation claim, measured: an
  interactive tenant's p99 commit latency with a bulk-loading
  neighbour, divided by its p99 alone.  Deficit-round-robin drain
  should hold that factor to a small constant; a shared FIFO queue
  would let it grow with the neighbour's queue depth.
* :func:`run_overload` — admission under deliberate overload, through
  the real HTTP server: an over-rate tenant must be shed with 429 +
  ``Retry-After`` (never a hang, never a dropped connection), and a
  client that *honours* the advertised backoff must eventually land
  every write.

:class:`RetryAfterClient` is that honouring client — the bench's
closed-loop HTTP writer, reused by the wire-level tests to pin the
retry contract.
"""

from __future__ import annotations

import json
import random
import threading
import time
from http.client import HTTPConnection

from ..rdf.namespaces import RDF
from ..rdf.terms import IRI, Triple
from ..tenancy import TenantManager, TenantQuota, TenantRegistry

__all__ = [
    "RetryAfterClient",
    "TenancyLoadResult",
    "run_zipfian_tenants",
    "run_noisy_neighbor",
    "run_overload",
    "run_tenancy_load",
]

_EX = "http://bench.example.org/"


def _p99(samples_ms: list[float]) -> float:
    if not samples_ms:
        return 0.0
    ordered = sorted(samples_ms)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


class TenancyLoadResult:
    """Combined outcome of the tenancy experiments (one JSON artifact)."""

    __slots__ = (
        "tenants", "writes", "zipf_seconds", "zipf_write_tps",
        "engines_touched", "interactive_p99_alone_ms",
        "interactive_p99_noisy_ms", "noisy_neighbor_p99_factor",
        "overload_attempts", "overload_rejections", "overload_committed",
        "overload_slept_seconds",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields.get(name))

    def as_dict(self) -> dict:
        payload = {name: getattr(self, name) for name in self.__slots__}
        payload["kind"] = "tenancy"
        return payload

    def __repr__(self):
        return (
            f"<TenancyLoadResult {self.zipf_write_tps:,.0f} writes/s over "
            f"{self.engines_touched} tenants, noisy p99 factor "
            f"{self.noisy_neighbor_p99_factor:.2f}>"
        )


def _zipf_population(count: int, exponent: float, rng: random.Random):
    """(names, cumulative weights) for zipfian tenant sampling."""
    names = [f"t{i:04d}" for i in range(count)]
    rng.shuffle(names)  # popularity must not correlate with creation order
    weights = [1.0 / (rank + 1) ** exponent for rank in range(count)]
    cumulative, total = [], 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    return names, cumulative


def run_zipfian_tenants(
    tenants: int = 1000,
    writes: int = 3000,
    writers: int = 8,
    exponent: float = 1.1,
    store: str = "hashdict",
    seed: int = 42,
) -> dict:
    """Closed-loop zipfian writes across ``tenants`` isolated engines.

    Engines are created lazily on first touch, so the run also measures
    the cold-tenant path; with ~1k tenants and a few thousand writes a
    realistic fraction of the tail stays cold.
    """
    rng = random.Random(seed)
    names, cumulative = _zipf_population(tenants, exponent, rng)
    manager = TenantManager(
        registry=TenantRegistry(default_quota=TenantQuota()),
        coalesce_tick=0.0,
        store=store,
    )
    # Pre-drawn per-writer schedules: sampling stays off the timed path
    # and the run is reproducible under a fixed seed.
    schedules = []
    for w in range(writers):
        share = writes // writers + (1 if w < writes % writers else 0)
        schedules.append(rng.choices(names, cum_weights=cumulative, k=share))
    errors: list[BaseException] = []

    def drive(schedule: list[str], offset: int) -> None:
        try:
            for i, tenant in enumerate(schedule):
                manager.apply(
                    tenant,
                    assertions=[
                        Triple(
                            IRI(f"{_EX}{tenant}/item{offset + i}"),
                            RDF.type,
                            IRI(f"{_EX}Event"),
                        )
                    ],
                )
        except BaseException as error:  # noqa: BLE001 - surfaced to the caller
            errors.append(error)

    threads = [
        threading.Thread(target=drive, args=(schedule, 1_000_000 * w), daemon=True)
        for w, schedule in enumerate(schedules)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    try:
        if errors:
            raise errors[0]
        touched = manager.stats()["active_engines"]
    finally:
        manager.close()
    return {
        "tenants": tenants,
        "writes": writes,
        "zipf_seconds": elapsed,
        "zipf_write_tps": writes / elapsed if elapsed > 0 else 0.0,
        "engines_touched": touched,
    }


def run_noisy_neighbor(
    interactive_writes: int = 150,
    bulk_batch: int = 100,
    store: str = "hashdict",
) -> dict:
    """Interactive p99 commit latency, alone vs. beside a bulk loader.

    The bulk tenant floods closed-loop batches of ``bulk_batch``
    triples for the whole measurement window; fair-share drain must
    keep the interactive tenant's p99 within a small factor of its
    solo baseline (the gated ``noisy_neighbor_p99_factor``).
    """

    def measure(with_noise: bool) -> float:
        manager = TenantManager(
            registry=TenantRegistry(default_quota=TenantQuota()),
            coalesce_tick=0.0,
            store=store,
        )
        stop = threading.Event()

        def flood() -> None:
            batch_id = 0
            while not stop.is_set():
                batch = [
                    Triple(
                        IRI(f"{_EX}bulk/b{batch_id}/i{i}"),
                        RDF.type,
                        IRI(f"{_EX}Event"),
                    )
                    for i in range(bulk_batch)
                ]
                batch_id += 1
                manager.apply("bulk", assertions=batch)

        noisy = threading.Thread(target=flood, daemon=True)
        try:
            manager.apply("interactive", assertions=[
                Triple(IRI(f"{_EX}warm"), RDF.type, IRI(f"{_EX}Event"))
            ])
            if with_noise:
                noisy.start()
            latencies = []
            for i in range(interactive_writes):
                triple = Triple(
                    IRI(f"{_EX}interactive/i{i}"), RDF.type, IRI(f"{_EX}Event")
                )
                begun = time.perf_counter()
                manager.apply("interactive", assertions=[triple])
                latencies.append((time.perf_counter() - begun) * 1000.0)
            return _p99(latencies)
        finally:
            stop.set()
            if noisy.is_alive():
                noisy.join(30)
            manager.close()

    alone = measure(with_noise=False)
    beside = measure(with_noise=True)
    return {
        "interactive_p99_alone_ms": alone,
        "interactive_p99_noisy_ms": beside,
        # Floor the denominator at 0.5 ms: solo p99s land around 0.2 ms
        # (inline engines, zero tick), where scheduler jitter alone
        # moves the raw ratio 2-3x between runs.  With the floor the
        # factor reads "p99 beside the bulk loader, in units of 0.5 ms"
        # — stable run to run, and a shared-FIFO regression (p99 grows
        # with the neighbour's queue depth, hundreds of ms) still
        # blows through any sane ceiling.
        "noisy_neighbor_p99_factor": beside / max(alone, 0.5),
    }


class RetryAfterClient:
    """A keep-alive ``/apply`` client that honours ``Retry-After``.

    On 429 it sleeps the advertised backoff (the JSON ``retry_after``
    when present — sub-second precision — else the header) and retries
    the *same* write until admitted; hard failures raise.  Counters
    expose how much backoff the server asked for and got.
    """

    def __init__(self, host: str, port: int, tenant: str, timeout: float = 10.0):
        self.tenant = tenant
        self.attempts = 0
        self.rejections = 0
        self.committed = 0
        self.slept_seconds = 0.0
        self._conn = HTTPConnection(host, port, timeout=timeout)

    def apply(self, statements: list[str], max_retries: int = 50) -> dict:
        """Apply one batch, retrying through 429s; returns the commit body."""
        body = json.dumps({"tenant": self.tenant, "assert": statements})
        for _ in range(max_retries):
            self.attempts += 1
            self._conn.request(
                "POST", "/apply", body, {"Content-Type": "application/json"}
            )
            response = self._conn.getresponse()
            payload = json.loads(response.read())
            if response.status == 200:
                self.committed += 1
                return payload
            if response.status != 429:
                raise RuntimeError(
                    f"apply failed with {response.status}: {payload.get('error')}"
                )
            self.rejections += 1
            wait = payload.get("retry_after")
            if wait is None:
                wait = float(response.getheader("Retry-After") or 1.0)
            self.slept_seconds += wait
            time.sleep(wait)
        raise RuntimeError(f"write for {self.tenant!r} still rejected "
                           f"after {max_retries} retries")

    def close(self) -> None:
        self._conn.close()


def run_overload(
    writes: int = 40,
    rate: float = 50.0,
    burst: int = 5,
    store: str = "hashdict",
) -> dict:
    """Drive an over-rate tenant through the real HTTP server.

    The tenant's token bucket admits ``rate``/s with ``burst`` depth;
    a closed-loop :class:`RetryAfterClient` fires ``writes`` writes as
    fast as admission allows.  Every write must eventually commit, and
    overload must show up as honest 429s, not as latency or errors.
    """
    from ..server import ReasoningService
    from ..server.http import serve

    registry = TenantRegistry(default_quota=TenantQuota())
    registry.register(
        "hot", TenantQuota(writes_per_second=rate, burst=burst)
    )
    manager = TenantManager(registry=registry, coalesce_tick=0.0, store=store)
    service = ReasoningService(fragment="rhodf", workers=0, timeout=None)
    server, _thread = serve(service, tenants=manager)
    client = RetryAfterClient("127.0.0.1", server.port, "hot")
    try:
        for i in range(writes):
            client.apply([f"<{_EX}hot/i{i}> {RDF.type.n3()} <{_EX}Event> ."])
        final = json.loads(
            _get(client._conn, "/stats?tenant=hot")
        )
        committed_triples = final["engine"]["triples"]
    finally:
        client.close()
        server.shutdown()
        server.server_close()
        manager.close()
        service.close()
    return {
        "overload_attempts": client.attempts,
        "overload_rejections": client.rejections,
        "overload_committed": committed_triples,
        "overload_slept_seconds": client.slept_seconds,
    }


def _get(conn: HTTPConnection, path: str) -> bytes:
    conn.request("GET", path)
    return conn.getresponse().read()


def run_tenancy_load(**overrides) -> TenancyLoadResult:
    """All three experiments, merged into one comparator artifact."""
    fields = {}
    fields.update(run_zipfian_tenants(**overrides.get("zipf", {})))
    fields.update(run_noisy_neighbor(**overrides.get("noisy", {})))
    fields.update(run_overload(**overrides.get("overload", {})))
    return TenancyLoadResult(**fields)
