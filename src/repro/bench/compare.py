"""Bench-regression gate: compare current artifacts to a committed baseline.

Benchmarks that merely *run* cannot catch a performance regression — a
throughput drop merges silently unless something compares the numbers.
This module is that something:

    python -m repro.bench.compare --baseline benchmarks/baseline.json \\
        --tolerance 0.25 bench-headline.json bench-recovery.json bench-server.json

``baseline.json`` pins named metrics with a direction (``higher`` is
better for throughputs, ``lower`` for latencies).  Current values are
extracted from the JSON artifacts the bench smoke runs emit
(``SLIDER_BENCH_HEADLINE_JSON`` / ``SLIDER_BENCH_RECOVERY_JSON`` /
``SLIDER_BENCH_SERVER_JSON``); a metric regresses when it crosses the
tolerance band (default 25 % — CI runners are noisy; the committed
baseline is deliberately conservative, see its ``note`` field).

Exit status: 0 when every compared metric is inside tolerance, 1 on any
regression, on a malformed artifact, or (with ``--require-all``) on a
baseline metric with no current counterpart.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["extract_metrics", "compare_metrics", "main"]


def _load(path: Path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def extract_metrics(artifact) -> dict[str, float]:
    """Flatten one bench artifact into ``{metric name: value}``.

    Understands the artifact shapes the suite emits:

    * recovery — a JSON *list* of per-run dicts (the pre-existing
      ``bench_recovery`` format, kept stable for old artifacts);
    * dicts tagged by ``"kind"`` — ``headline``, ``server``, ``micro``,
      ``replication``, ``sharding``, ``planner``, ``tenancy``, ``obs``.
    """
    if isinstance(artifact, list):  # recovery rows
        speedups = [row["speedup"] for row in artifact if "speedup" in row]
        replays = [
            row["replay_throughput"] for row in artifact if "replay_throughput" in row
        ]
        metrics: dict[str, float] = {}
        if speedups:
            metrics["recovery.min_speedup"] = min(speedups)
        if replays:
            metrics["recovery.min_replay_throughput_tps"] = min(replays)
        return metrics
    if not isinstance(artifact, dict):
        raise ValueError(f"unrecognized artifact shape: {type(artifact).__name__}")
    kind = artifact.get("kind")
    if kind == "headline":
        return {
            "headline.peak_throughput_tps": float(artifact["peak_throughput_tps"]),
        }
    if kind == "server":
        return {
            "server.total_rps": float(artifact["total_rps"]),
            "server.read_rps": float(artifact["read_rps"]),
            "server.read_p99_ms": float(artifact["read_p99_ms"]),
        }
    if kind == "micro":
        return {
            "micro.v2_load_speedup": float(artifact["v2_load_speedup"]),
            "micro.kernel_join_speedup": float(artifact["kernel_join_speedup"]),
        }
    if kind == "replication":
        return {
            "replication.peak_read_rps": float(artifact["peak_read_rps"]),
            "replication.catchup_wal_seconds": float(
                artifact["catchup_wal_seconds"]
            ),
            "replication.catchup_snapshot_seconds": float(
                artifact["catchup_snapshot_seconds"]
            ),
        }
    if kind == "planner":
        return {
            "planner.query_speedup": float(artifact["query_speedup"]),
            "planner.subscription_speedup": float(
                artifact["subscription_speedup"]
            ),
        }
    if kind == "tenancy":
        return {
            "tenancy.zipf_write_tps": float(artifact["zipf_write_tps"]),
            "tenancy.noisy_neighbor_p99_factor": float(
                artifact["noisy_neighbor_p99_factor"]
            ),
        }
    if kind == "obs":
        return {
            "obs.instrumented_throughput_ratio": float(
                artifact["instrumented_throughput_ratio"]
            ),
        }
    if kind == "sharding":
        metrics = {
            f"sharding.write_scaleup_{count}": float(factor)
            for count, factor in artifact["write_scaleup_by_shards"].items()
            if str(count) != "1"  # the single-shard control is the 1.0 denominator
        }
        metrics["sharding.forward_assertions"] = float(
            artifact["forward_assertions"]
        )
        return metrics
    raise ValueError(f"artifact has unknown kind: {kind!r}")


def compare_metrics(
    baseline: dict,
    current: dict[str, float],
    tolerance: float,
    require_all: bool = False,
) -> tuple[list[str], list[str]]:
    """Returns (report lines, failure lines)."""
    lines: list[str] = []
    failures: list[str] = []
    metrics = baseline.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        return lines, ["baseline has no metrics"]
    compared = 0
    for name in sorted(metrics):
        spec = metrics[name]
        value = float(spec["value"])
        direction = spec.get("direction", "higher")
        observed = current.get(name)
        if observed is None:
            message = f"{name:<38} baseline {value:>12,.1f}  (no current value)"
            lines.append(message)
            if require_all:
                failures.append(f"{name}: missing from current artifacts")
            continue
        compared += 1
        if direction == "higher":
            floor = value * (1.0 - tolerance)
            ok = observed >= floor
            bound = f">= {floor:,.1f}"
        elif direction == "lower":
            ceiling = value * (1.0 + tolerance)
            ok = observed <= ceiling
            bound = f"<= {ceiling:,.1f}"
        else:
            failures.append(f"{name}: unknown direction {direction!r}")
            continue
        verdict = "ok" if ok else "REGRESSION"
        lines.append(
            f"{name:<38} baseline {value:>12,.1f}  current {observed:>12,.1f}  "
            f"({bound})  {verdict}"
        )
        if not ok:
            # Everything a triager needs on ONE line: the metric, the
            # committed pin, what this run measured, and the tolerance
            # band it fell out of — no cross-referencing the baseline.
            failures.append(
                f"{name}: measured {observed:,.4f} vs baseline {value:,.4f} "
                f"(tolerance {tolerance:.0%}, allowed {bound}, "
                f"direction={direction})"
            )
    if compared == 0:
        failures.append("no baseline metric had a current counterpart")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="fail when bench artifacts regress against the committed baseline",
    )
    parser.add_argument("artifacts", nargs="+",
                        help="current bench JSON artifacts (missing files are skipped "
                             "with a warning unless --require-all)")
    parser.add_argument("--baseline", default="benchmarks/baseline.json",
                        help="committed baseline (default %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative drift, 0-1 (default %(default)s)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when any baseline metric or artifact is missing")
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        print(f"error: tolerance must be in [0, 1), got {args.tolerance}",
              file=sys.stderr)
        return 1

    try:
        baseline = _load(Path(args.baseline))
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read baseline {args.baseline}: {error}", file=sys.stderr)
        return 1

    current: dict[str, float] = {}
    missing_artifacts: list[str] = []
    for name in args.artifacts:
        path = Path(name)
        if not path.exists():
            missing_artifacts.append(name)
            print(f"warning: artifact {name} does not exist, skipping", file=sys.stderr)
            continue
        try:
            current.update(extract_metrics(_load(path)))
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"error: malformed artifact {name}: {error}", file=sys.stderr)
            return 1

    lines, failures = compare_metrics(
        baseline, current, args.tolerance, require_all=args.require_all
    )
    if args.require_all and missing_artifacts:
        failures.extend(f"artifact missing: {name}" for name in missing_artifacts)

    note = baseline.get("note")
    print(f"bench-regression gate (tolerance {args.tolerance:.0%})")
    if note:
        print(f"baseline note: {note}")
    for line in lines:
        print(f"  {line}")
    if failures:
        print(f"\nFAILED — {len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall compared metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
