"""Replication benchmark: read scaling across followers + catch-up cost.

Two questions the replication subsystem exists to answer:

1. **Does read throughput scale with followers?**  One leader takes a
   sustained write load while closed-loop readers hammer the follower
   fleet; the harness measures aggregate follower read throughput at
   each fleet size (e.g. 1 / 2 / 4 followers).
2. **What does (re)joining cost?**  A fresh replica is timed twice —
   once resuming the leader's retained WAL from revision 0 (``catchup
   wal``), once forced through a snapshot bootstrap by compacting the
   leader first (``catchup snapshot``) — the two recovery paths a
   production replica alternates between.

Everything runs in one process (real HTTP over loopback, one thread per
client), so the numbers are transport-inclusive like
:mod:`~repro.bench.server_load` and honest about GIL contention: this
is what a single box demonstrates, not a cluster claim.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from http.client import HTTPConnection
from urllib.parse import quote

from ..rdf.namespaces import RDF, RDFS
from ..rdf.terms import IRI, Triple

__all__ = ["ReplicationBenchResult", "run_replication_bench"]

_EX = "http://bench.example.org/"


class ReplicationBenchResult:
    """Outcome of one replication benchmark run."""

    __slots__ = (
        "seconds_per_stage",
        "read_rps_by_followers",
        "write_rps_by_followers",
        "error_count",
        "catchup_wal_seconds",
        "catchup_snapshot_seconds",
        "catchup_revision",
        "final_revision",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @property
    def peak_read_rps(self) -> float:
        return max(self.read_rps_by_followers.values(), default=0.0)

    def as_dict(self) -> dict:
        return {
            "kind": "replication",
            "seconds_per_stage": self.seconds_per_stage,
            "read_rps_by_followers": {
                str(n): rps for n, rps in self.read_rps_by_followers.items()
            },
            "write_rps_by_followers": {
                str(n): rps for n, rps in self.write_rps_by_followers.items()
            },
            "peak_read_rps": self.peak_read_rps,
            "errors": self.error_count,
            "catchup_wal_seconds": self.catchup_wal_seconds,
            "catchup_snapshot_seconds": self.catchup_snapshot_seconds,
            "catchup_revision": self.catchup_revision,
            "final_revision": self.final_revision,
        }

    def __repr__(self):
        scaling = ", ".join(
            f"{n}f={rps:,.0f}" for n, rps in sorted(self.read_rps_by_followers.items())
        )
        return (
            f"<ReplicationBenchResult reads[{scaling}] req/s "
            f"catchup wal={self.catchup_wal_seconds:.2f}s "
            f"snap={self.catchup_snapshot_seconds:.2f}s "
            f"errors={self.error_count}>"
        )


def _seed_triples(classes: int, instances: int) -> list[Triple]:
    triples = [
        Triple(IRI(f"{_EX}C{i}"), RDFS.subClassOf, IRI(f"{_EX}C{i - 1}"))
        for i in range(1, classes)
    ]
    triples += [
        Triple(IRI(f"{_EX}item{i}"), RDF.type, IRI(f"{_EX}C{classes - 1}"))
        for i in range(instances)
    ]
    return triples


def run_replication_bench(
    follower_counts: tuple = (1, 2, 4),
    duration: float = 2.0,
    writers: int = 1,
    readers_per_follower: int = 2,
    fragment: str = "rhodf",
    store: str = "hashdict",
    workers: int = 2,
    seed_classes: int = 10,
    seed_instances: int = 50,
    catchup_timeout: float = 60.0,
    clock=time.perf_counter,
) -> ReplicationBenchResult:
    """Boot leader + followers, measure read scaling and catch-up cost."""
    from ..reasoner.engine import Slider
    from ..replication.feed import ChangeFeed
    from ..replication.follower import Follower
    from ..server.http import serve
    from ..server.service import ReasoningService

    max_followers = max(follower_counts)
    with tempfile.TemporaryDirectory(prefix="slider-repl-bench-") as state_dir:
        reasoner = Slider(
            fragment=fragment, store=store, workers=workers,
            timeout=0.05 if workers else None, buffer_size=200,
            persist_dir=f"{state_dir}/leader", persist_fsync=False,
        )
        reasoner.add(_seed_triples(seed_classes, seed_instances))
        service = ReasoningService(reasoner=reasoner)
        ChangeFeed(service)
        leader_server, _ = serve(service)
        leader_url = leader_server.url

        def new_follower() -> "tuple[Follower, object]":
            follower = Follower(
                leader_url, store=store, workers=workers,
                reconnect_delay=0.1,
            ).start()
            if not follower.wait_ready(catchup_timeout):
                raise RuntimeError(f"follower never caught up: {follower.status!r}")
            server, _ = follower.serve_http()
            return follower, server

        followers = [new_follower() for _ in range(max_followers)]

        read_path = "/select?query=" + quote(
            f"?x <{RDF.type.value}> <{_EX}C0>", safe=""
        ) + "&limit=25"
        errors = [0]
        error_lock = threading.Lock()

        def reader(port: int, stop: threading.Event, counts: list, slot: int):
            conn = HTTPConnection("127.0.0.1", port, timeout=10)
            try:
                while not stop.is_set():
                    conn.request("GET", read_path)
                    response = conn.getresponse()
                    body = response.read()
                    if response.status != 200 or not body:
                        with error_lock:
                            errors[0] += 1
                    counts[slot] += 1
            except Exception:
                if not stop.is_set():
                    with error_lock:
                        errors[0] += 1
            finally:
                conn.close()

        write_sequence = [0]
        sequence_lock = threading.Lock()

        def writer(stop: threading.Event, counts: list, slot: int):
            conn = HTTPConnection("127.0.0.1", leader_server.port, timeout=10)
            headers = {"Content-Type": "application/json"}
            try:
                while not stop.is_set():
                    with sequence_lock:
                        write_sequence[0] += 1
                        sequence = write_sequence[0]
                    # Globally unique across stages: a re-asserted triple
                    # would commit an empty (feed-invisible) revision and
                    # measure nothing.
                    body = json.dumps({
                        "assert": [
                            f"<{_EX}w{sequence}> <{_EX}observedAt> "
                            f"<{_EX}C{seed_classes - 1}>"
                        ]
                    })
                    conn.request("POST", "/apply", body, headers)
                    response = conn.getresponse()
                    response.read()
                    if response.status != 200:
                        with error_lock:
                            errors[0] += 1
                    counts[slot] += 1
            except Exception:
                if not stop.is_set():
                    with error_lock:
                        errors[0] += 1
            finally:
                conn.close()

        read_rps: dict[int, float] = {}
        write_rps: dict[int, float] = {}
        for count in follower_counts:
            stop = threading.Event()
            ports = [followers[i][1].port for i in range(count)]
            read_counts = [0] * (count * readers_per_follower)
            write_counts = [0] * writers
            threads = [
                threading.Thread(
                    target=reader,
                    args=(ports[slot % count], stop, read_counts, slot),
                    daemon=True,
                )
                for slot in range(count * readers_per_follower)
            ] + [
                threading.Thread(
                    target=writer, args=(stop, write_counts, slot), daemon=True
                )
                for slot in range(writers)
            ]
            started = clock()
            for thread in threads:
                thread.start()
            time.sleep(duration)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            elapsed = clock() - started
            read_rps[count] = sum(read_counts) / elapsed
            write_rps[count] = sum(write_counts) / elapsed

        # --- catch-up paths --------------------------------------------------
        catchup_revision = service.revision

        # WAL tail: a fresh replica resumes the retained changelog from 0.
        started = clock()
        wal_follower = Follower(leader_url, store=store, workers=workers).start()
        if not wal_follower.wait_ready(catchup_timeout):
            raise RuntimeError(f"WAL catch-up never finished: {wal_follower.status!r}")
        catchup_wal = clock() - started
        wal_bootstraps = wal_follower.status.bootstraps
        wal_follower.close()

        # Snapshot bootstrap: compaction truncates the WAL, so the next
        # fresh replica must fetch /snapshot instead.
        reasoner.snapshot()
        started = clock()
        snap_follower = Follower(leader_url, store=store, workers=workers).start()
        if not snap_follower.wait_ready(catchup_timeout):
            raise RuntimeError(
                f"snapshot catch-up never finished: {snap_follower.status!r}"
            )
        catchup_snapshot = clock() - started
        snap_bootstraps = snap_follower.status.bootstraps
        snap_follower.close()
        if wal_bootstraps != 0 or snap_bootstraps != 1:
            raise RuntimeError(
                "catch-up paths did not exercise the intended mechanisms "
                f"(wal bootstraps={wal_bootstraps}, snapshot bootstraps="
                f"{snap_bootstraps})"
            )

        final_revision = service.revision
        for follower, server in followers:
            server.shutdown()
            server.server_close()
            follower.close()
        leader_server.shutdown()
        leader_server.server_close()
        service.close()

    return ReplicationBenchResult(
        seconds_per_stage=duration,
        read_rps_by_followers=read_rps,
        write_rps_by_followers=write_rps,
        error_count=errors[0],
        catchup_wal_seconds=catchup_wal,
        catchup_snapshot_seconds=catchup_snapshot,
        catchup_revision=catchup_revision,
        final_revision=final_revision,
    )
