"""Benchmark harness: timed runs, gains, Table 1 regeneration.

The paper's §3 protocol, reproduced:

* both systems run **the same ruleset** on **the same ontology files**;
* "the running times include both parsing and inferencing times" — so a
  run starts from an N-Triples file on disk, and the measured span covers
  parse + load + closure;
* the *Gain* column is the baseline-over-Slider relative speed-up:
  ``(t_baseline - t_slider) / t_slider × 100`` (OWLIM 9.907 s vs Slider
  4.636 s ⇒ 113.69 %);
* throughput is input triples per second of total run time.

The OWLIM-SE stand-in is :class:`~repro.baselines.BatchReasoner` (naive
batch iteration — see that module for why); the stronger semi-naive
baseline can be swept too.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Callable, Sequence

from ..baselines.batch import BatchReasoner, SemiNaiveReasoner
from ..datasets.loader import DEFAULT_SCALE, TABLE1_ORDER, load_dataset
from ..rdf.ntriples import parse_ntriples_file, write_ntriples_file
from ..reasoner.engine import Slider

__all__ = [
    "RunResult",
    "Table1Row",
    "dataset_file",
    "run_slider",
    "run_batch",
    "run_semi_naive",
    "gain_percent",
    "run_table1_row",
    "run_table1",
    "clear_dataset_cache",
]

_CACHE_DIR: Path | None = None
_CACHE: dict[tuple[str, float], Path] = {}


def _cache_dir() -> Path:
    global _CACHE_DIR
    if _CACHE_DIR is None:
        _CACHE_DIR = Path(tempfile.mkdtemp(prefix="slider-bench-"))
    return _CACHE_DIR


def dataset_file(name: str, scale: float = DEFAULT_SCALE) -> Path:
    """Materialize a named dataset to a cached N-Triples file.

    Benchmarked runs parse this file, per the paper's protocol.
    """
    key = (name, scale)
    path = _CACHE.get(key)
    if path is None or not path.exists():
        path = _cache_dir() / f"{name}_{scale:g}.nt"
        write_ntriples_file(load_dataset(name, scale), path)
        _CACHE[key] = path
    return path


def clear_dataset_cache() -> None:
    """Drop cached dataset files (tests use this for isolation)."""
    _CACHE.clear()


class RunResult:
    """Outcome of one timed system run."""

    __slots__ = ("system", "dataset", "fragment", "seconds",
                 "input_count", "inferred_count", "extra")

    def __init__(self, system, dataset, fragment, seconds, input_count,
                 inferred_count, extra=None):
        self.system = system
        self.dataset = dataset
        self.fragment = fragment
        self.seconds = seconds
        self.input_count = input_count
        self.inferred_count = inferred_count
        self.extra = extra or {}

    @property
    def throughput(self) -> float:
        """Input triples per second, parse time included (paper §3)."""
        return self.input_count / self.seconds if self.seconds else float("inf")

    def as_dict(self) -> dict:
        return {
            "system": self.system,
            "dataset": self.dataset,
            "fragment": self.fragment,
            "seconds": self.seconds,
            "input": self.input_count,
            "inferred": self.inferred_count,
            "throughput": self.throughput,
            **self.extra,
        }

    def __repr__(self):
        return (
            f"<RunResult {self.system} {self.dataset}/{self.fragment} "
            f"{self.seconds:.3f}s inferred={self.inferred_count}>"
        )


def run_slider(
    name: str,
    fragment: str = "rhodf",
    scale: float = DEFAULT_SCALE,
    buffer_size: int = 200,
    timeout: float | None = 0.05,
    workers: int = 2,
    store: str = "hashdict",
    clock: Callable[[], float] = time.perf_counter,
) -> RunResult:
    """Timed Slider run over a dataset file (parse + incremental closure)."""
    path = dataset_file(name, scale)
    start = clock()
    reasoner = Slider(
        fragment=fragment, buffer_size=buffer_size, timeout=timeout,
        workers=workers, store=store,
    )
    reasoner.load(path)
    report = reasoner.flush()
    seconds = clock() - start
    # Report-driven counters: the revision's diff next to the module
    # counters, so bench smoke runs can assert the two bookkeeping
    # paths agree (InferenceReport vs Slider.counters()).
    kept_total = sum(stats["kept"] for stats in reasoner.counters().values())
    result = RunResult(
        "slider", name, fragment, seconds,
        reasoner.input_count, reasoner.inferred_count,
        extra={
            "buffer_size": buffer_size, "workers": workers, "store": store,
            "revision": report.revision,
            "report_explicit_added": report.explicit_added_count,
            "report_inferred_added": report.inferred_added_count,
            "report_removed": report.removed_count,
            "counters_kept_total": kept_total,
        },
    )
    reasoner.close()
    return result


def _run_batch_class(reasoner_class, system, name, fragment, scale, clock) -> RunResult:
    path = dataset_file(name, scale)
    start = clock()
    reasoner = reasoner_class(fragment=fragment)
    reasoner.add(parse_ntriples_file(path))
    stats = reasoner.materialize()
    seconds = clock() - start
    return RunResult(
        system, name, fragment, seconds,
        reasoner.input_count, reasoner.inferred_count,
        extra=stats.as_dict(),
    )


def run_batch(
    name: str,
    fragment: str = "rhodf",
    scale: float = DEFAULT_SCALE,
    clock: Callable[[], float] = time.perf_counter,
) -> RunResult:
    """Timed naive-iteration batch run (the OWLIM-SE stand-in)."""
    return _run_batch_class(BatchReasoner, "batch", name, fragment, scale, clock)


def run_semi_naive(
    name: str,
    fragment: str = "rhodf",
    scale: float = DEFAULT_SCALE,
    clock: Callable[[], float] = time.perf_counter,
) -> RunResult:
    """Timed semi-naive batch run (the strong baseline / ablation)."""
    return _run_batch_class(SemiNaiveReasoner, "semi-naive", name, fragment, scale, clock)


def gain_percent(baseline_seconds: float, slider_seconds: float) -> float:
    """The paper's Gain column: how much faster Slider is, in percent."""
    if slider_seconds <= 0:
        return float("inf")
    return (baseline_seconds - slider_seconds) / slider_seconds * 100.0


class Table1Row:
    """One ontology's row in (one half of) Table 1."""

    __slots__ = ("dataset", "input_count", "inferred_count",
                 "baseline_seconds", "slider_seconds")

    def __init__(self, dataset, input_count, inferred_count,
                 baseline_seconds, slider_seconds):
        self.dataset = dataset
        self.input_count = input_count
        self.inferred_count = inferred_count
        self.baseline_seconds = baseline_seconds
        self.slider_seconds = slider_seconds

    @property
    def gain(self) -> float:
        return gain_percent(self.baseline_seconds, self.slider_seconds)

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "input": self.input_count,
            "inferred": self.inferred_count,
            "baseline_s": self.baseline_seconds,
            "slider_s": self.slider_seconds,
            "gain_pct": self.gain,
        }


def run_table1_row(
    name: str,
    fragment: str,
    scale: float = DEFAULT_SCALE,
    workers: int = 2,
    buffer_size: int = 200,
    store: str = "hashdict",
) -> Table1Row:
    """Measure one ontology under one fragment: baseline vs Slider."""
    baseline = run_batch(name, fragment, scale)
    slider = run_slider(name, fragment, scale, buffer_size=buffer_size,
                        workers=workers, store=store)
    return Table1Row(
        dataset=name,
        input_count=slider.input_count,
        inferred_count=slider.inferred_count,
        baseline_seconds=baseline.seconds,
        slider_seconds=slider.seconds,
    )


def run_table1(
    fragment: str,
    datasets: Sequence[str] | None = None,
    scale: float = DEFAULT_SCALE,
    workers: int = 2,
    buffer_size: int = 200,
    store: str = "hashdict",
) -> list[Table1Row]:
    """Regenerate one half of Table 1 (all rows, one fragment)."""
    names = list(datasets) if datasets is not None else list(TABLE1_ORDER)
    return [
        run_table1_row(name, fragment, scale, workers=workers,
                       buffer_size=buffer_size, store=store)
        for name in names
    ]
