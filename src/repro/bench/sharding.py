"""Sharding benchmark: durable write scale-up across partitioned leaders.

The question the partitioned commit pipeline exists to answer: **when
commits are storage-bound, does write throughput scale with shards?**

One batch of small, shard-confined deltas is committed three ways —
through a single-node engine and through 2- and 4-shard clusters — with
identical durability granularity: every user delta is individually
journaled (append + fsync).  The single node pays that cost serially;
the cluster's :meth:`~repro.sharding.cluster.ShardedReasoner.apply_many`
splits each commit window into per-shard sub-delta streams whose WAL
appends overlap.  The scale-up factor (sharded deltas/s over single-node
deltas/s) is the gated metric.

**The storage-latency floor.**  This container's fsync lands on a local
NVMe page cache in ~0.2 ms — cheaper than the GIL-bound Python cost of
a one-triple commit, which would make any measurement here a CPU
benchmark, not a commit-pipeline one.  Production deployments this
subsystem targets sit on network block storage (EBS ``gp3`` ~1 ms,
cross-AZ replicated volumes 2-5 ms).  The harness therefore models a
deterministic per-append device latency (``SLIDER_BENCH_SHARDING_
FSYNC_MS``, default 1.5 ms, applied *identically* to every
configuration) by wrapping :class:`~repro.persist.journal.JournalWriter.
append`.  The sleep releases the GIL exactly as a real blocking fsync
would, so the number measures what the architecture actually changes:
how many device waits the commit pipeline overlaps.

A workload slice routes derivations across partitions on purpose, and
the run asserts the cluster really forwarded triples — the scale-up is
measured *with* the cross-shard closure machinery engaged, not on an
embarrassingly-parallel special case.
"""

from __future__ import annotations

import contextlib
import shutil
import tempfile
import time
import zlib
from pathlib import Path

from ..rdf.namespaces import RDFS
from ..rdf.terms import IRI, Triple
from ..reasoner.delta import Delta
from ..reasoner.engine import Slider
from ..persist.journal import JournalWriter

__all__ = ["ShardingBenchResult", "run_sharding_bench", "storage_latency"]

_EX = "http://bench.example.org/"

#: Modeled device latency per journal append, milliseconds (see module
#: docstring).  0 disables the shim and measures the bare container.
DEFAULT_FSYNC_FLOOR_MS = 1.5


@contextlib.contextmanager
def storage_latency(seconds: float):
    """Add a deterministic device wait to every journal append.

    Process-wide (the class method is swapped), so every engine built
    inside the context pays the same floor — single-node and sharded
    configurations are handicapped identically.
    """
    if seconds <= 0:
        yield
        return
    original = JournalWriter.append

    def slow_append(self, record):
        size = original(self, record)
        time.sleep(seconds)
        return size

    JournalWriter.append = slow_append
    try:
        yield
    finally:
        JournalWriter.append = original


def _bucketed_terms(prefix: str, width: int, per_bucket: int) -> list[list[IRI]]:
    """Fresh IRIs pre-binned by the cluster's own routing hash.

    Bucketing modulo ``width`` keeps the round-robin fair at every
    smaller power-of-two width too (crc32 % 4 == b implies
    crc32 % 2 == b % 2), so the same workload is balanced for 1, 2 and
    4 shards.
    """
    buckets: list[list[IRI]] = [[] for _ in range(width)]
    index = 0
    while any(len(bucket) < per_bucket for bucket in buckets):
        term = IRI(f"{_EX}{prefix}{index}")
        index += 1
        bucket = zlib.crc32(term.n3().encode("utf-8")) % width
        if len(buckets[bucket]) < per_bucket:
            buckets[bucket].append(term)
    return buckets


def _workload(deltas: int, width: int = 4) -> tuple[Delta, list[Delta]]:
    """A schema preamble plus ``deltas`` shard-confined instance deltas.

    Deltas round-robin the routing buckets; every eighth one points its
    object at a fresh term owned by the *next* bucket (and never used as
    a subject anywhere, so no shard can derive the conclusion locally) —
    the rng-rule conclusion ``(o type Person)`` must hop shards, keeping
    the cross-partition closure path on the clock.
    """
    schema = Delta(
        assertions=[Triple(IRI(f"{_EX}knows"), RDFS.range, IRI(f"{_EX}Person"))]
    )
    per_bucket = deltas // width + 1
    subjects = _bucketed_terms("s", width, per_bucket)
    foreign = _bucketed_terms("o", width, per_bucket)
    knows = IRI(f"{_EX}knows")
    out: list[Delta] = []
    for index in range(deltas):
        bucket = index % width
        subject = subjects[bucket][index // width]
        if index % 8 == 7:  # cross-shard derivation on purpose
            obj = foreign[(bucket + 1) % width][index // width]
        else:
            obj = subject
        out.append(Delta(assertions=[Triple(subject, knows, obj)]))
    return schema, out


class ShardingBenchResult:
    """Outcome of one sharded-write scale-up run."""

    __slots__ = (
        "shard_counts",
        "write_tps_by_shards",
        "seconds_by_shards",
        "scaleup_by_shards",
        "triples_by_shards",
        "forward_assertions",
        "deltas",
        "deltas_per_commit",
        "fsync_floor_ms",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    def as_dict(self) -> dict:
        return {
            "kind": "sharding",
            "shard_counts": list(self.shard_counts),
            "write_tps_by_shards": {
                str(n): tps for n, tps in self.write_tps_by_shards.items()
            },
            "seconds_by_shards": {
                str(n): seconds for n, seconds in self.seconds_by_shards.items()
            },
            "write_scaleup_by_shards": {
                str(n): factor for n, factor in self.scaleup_by_shards.items()
            },
            "triples_by_shards": {
                str(n): count for n, count in self.triples_by_shards.items()
            },
            "forward_assertions": self.forward_assertions,
            "deltas": self.deltas,
            "deltas_per_commit": self.deltas_per_commit,
            "fsync_floor_ms": self.fsync_floor_ms,
        }

    def __repr__(self):
        scaling = ", ".join(
            f"{n}sh={tps:,.0f}/s"
            for n, tps in sorted(self.write_tps_by_shards.items())
        )
        return f"<ShardingBenchResult {scaling} floor={self.fsync_floor_ms}ms>"


def run_sharding_bench(
    shard_counts=(1, 2, 4),
    deltas: int = 160,
    deltas_per_commit: int = 16,
    fsync_floor_ms: float = DEFAULT_FSYNC_FLOOR_MS,
    store: str = "hashdict",
) -> ShardingBenchResult:
    """Measure durable write throughput at each cluster width.

    Every configuration commits the identical workload with per-delta
    journal granularity under the same storage-latency floor;
    ``deltas_per_commit`` is the coalescing window the sharded pipeline
    drains per global revision (the single node applies the same deltas
    one commit each — its WAL granularity is already per-delta).
    """
    from ..sharding import ShardedReasoner

    schema, workload = _workload(deltas)
    root = Path(tempfile.mkdtemp(prefix="slider-bench-sharding-"))
    write_tps: dict[int, float] = {}
    seconds: dict[int, float] = {}
    triples: dict[int, int] = {}
    forward_assertions = 0
    try:
        with storage_latency(fsync_floor_ms / 1000.0):
            for count in shard_counts:
                state = root / f"shards-{count}"
                if count == 1:
                    engine = Slider(
                        fragment="rhodf", workers=0, timeout=None,
                        store=store, persist_dir=state,
                    )
                else:
                    engine = ShardedReasoner(
                        fragment="rhodf", shards=count, store=store,
                        persist_dir=state,
                    )
                try:
                    engine.apply(schema)
                    started = time.perf_counter()
                    if count == 1:
                        for delta in workload:
                            engine.apply(delta)
                    else:
                        for index in range(0, len(workload), deltas_per_commit):
                            engine.apply_many(
                                workload[index : index + deltas_per_commit]
                            )
                    elapsed = time.perf_counter() - started
                    seconds[count] = elapsed
                    write_tps[count] = len(workload) / elapsed
                    triples[count] = len(engine.store)
                    if count > 1:
                        forwarded = engine.cluster_stats()["forwards"]["assertions"]
                        if forwarded <= 0:
                            raise RuntimeError(
                                "workload produced no cross-shard forwards — "
                                "the scale-up would be measured without the "
                                "inter-shard closure path"
                            )
                        forward_assertions = max(forward_assertions, forwarded)
                finally:
                    engine.close()
                shutil.rmtree(state, ignore_errors=True)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    if len(set(triples.values())) != 1:
        raise RuntimeError(
            f"configurations disagree on the closure: {triples} — "
            "the throughput comparison would be meaningless"
        )
    base = write_tps[shard_counts[0]]
    scaleup = {count: write_tps[count] / base for count in shard_counts}
    return ShardingBenchResult(
        shard_counts=tuple(shard_counts),
        write_tps_by_shards=write_tps,
        seconds_by_shards=seconds,
        scaleup_by_shards=scaleup,
        triples_by_shards=triples,
        forward_assertions=forward_assertions,
        deltas=deltas,
        deltas_per_commit=deltas_per_commit,
        fsync_floor_ms=fsync_floor_ms,
    )
