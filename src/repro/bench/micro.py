"""Microbenchmarks for the zero-copy substrate: loads, hydration, kernels.

Three families of numbers, all runner-robust ratios where they gate CI:

* **snapshot load-to-serving** — the wall time from a snapshot file on
  disk to the first answered read.  For a v1 image that is parse +
  full hydration into a mutable store (nothing can be answered
  earlier); for a v2 image it is map + bisect — the whole point of the
  columnar format.  ``v2_load_speedup`` is the gated ratio.
* **hydration** — what the v2 lazy path defers: restoring the mapped
  image into a fresh dictionary + mutable store (the background work a
  bootstrapping follower performs behind its image service).
* **join kernels** — one firing batch pushed through the classic
  per-triple half-join loop vs the compiled batch kernel
  (:mod:`repro.reasoner.kernels`) over the same store and rule;
  ``kernel_join_speedup`` is the gated ratio.  The galloping
  intersection primitive is measured alongside in elements/second.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Callable

from ..datasets.loader import DEFAULT_SCALE
from ..dictionary.encoder import TermDictionary
from ..persist.snapshot import load_snapshot
from ..rdf.terms import IRI
from ..reasoner.engine import Slider
from ..reasoner.kernels import intersect_sorted
from ..reasoner.rules import JoinRule, OutputBuffer
from ..reasoner.vocabulary import Vocabulary
from ..store.backends import create_store
from ..store.backends.columnar import ColumnarReadStore
from .harness import dataset_file

__all__ = ["MicroResult", "run_micro"]


class MicroResult:
    """Outcome of one microbenchmark sweep (see module docstring)."""

    __slots__ = (
        "dataset", "fragment", "scale", "store",
        "triples", "terms",
        "v1_bytes", "v2_bytes",
        "v1_load_seconds", "v2_load_seconds",
        "hydrate_seconds",
        "classic_join_seconds", "kernel_join_seconds",
        "gallop_elements_per_second",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @property
    def v2_load_speedup(self) -> float:
        """Load-to-first-read: how many times v2 beats v1."""
        if self.v2_load_seconds <= 0:
            return float("inf")
        return self.v1_load_seconds / self.v2_load_seconds

    @property
    def kernel_join_speedup(self) -> float:
        """One firing batch: classic half-join vs the batch kernel."""
        if self.kernel_join_seconds <= 0:
            return float("inf")
        return self.classic_join_seconds / self.kernel_join_seconds

    def as_dict(self) -> dict:
        data = {name: getattr(self, name) for name in self.__slots__}
        data["v2_load_speedup"] = self.v2_load_speedup
        data["kernel_join_speedup"] = self.kernel_join_speedup
        return data

    def __repr__(self):
        return (
            f"<MicroResult {self.dataset}/{self.fragment} "
            f"v2_load={self.v2_load_speedup:.1f}x "
            f"kernel_join={self.kernel_join_speedup:.1f}x>"
        )


def _best(rounds: int, fn: Callable[[], float]) -> float:
    return min(fn() for _ in range(max(1, rounds)))


def _join_rule(fragment: str):
    """A join rule with an unconstrained compiled plan, plus its vocab.

    Picks the first rule whose left-direction plan has no constant
    checks beyond the predicates, so a synthetic chain exercises the
    pure join path of both the classic loop and the kernel.
    """
    from ..reasoner.fragments import get_fragment

    dictionary = TermDictionary()
    vocab = Vocabulary(dictionary)
    for rule in get_fragment(fragment).rules(vocab):
        if not isinstance(rule, JoinRule):
            continue
        plan = rule._plans[0]
        if plan is None or plan.new_checks or plan.new_eq or plan.partner_checks:
            continue
        if plan.new_pred is None:
            continue
        return rule, plan, dictionary, vocab
    raise ValueError(f"fragment {fragment!r} has no kernel-plannable join rule")


def _join_micro(
    fragment: str, nodes: int, batch_size: int, rounds: int, clock
) -> tuple[float, float]:
    """(classic_seconds, kernel_seconds) for one synthetic firing batch."""
    rule, plan, dictionary, vocab = _join_rule(fragment)
    ids = [dictionary.encode(IRI(f"http://bench/n{i}")) for i in range(nodes)]
    store = create_store("hashdict")
    store.add_all(
        [(ids[i], plan.store_pred, ids[i + 1]) for i in range(nodes - 1)]
    )
    stride = max(1, (nodes - 1) // batch_size)
    batch = [
        (ids[i], plan.new_pred, ids[i + 1]) for i in range(0, nodes - 1, stride)
    ]
    is_literal = dictionary.is_literal

    def classic() -> float:
        out = OutputBuffer()
        start = clock()
        rule._half_join(store, batch, rule.left, rule.right, vocab, out)
        elapsed = clock() - start
        classic.result = set(out.take())  # type: ignore[attr-defined]
        return elapsed

    def kernel() -> float:
        out = OutputBuffer()
        start = clock()
        handled = plan.execute(store, batch, is_literal, out)
        elapsed = clock() - start
        assert handled, "kernel unexpectedly deferred to the classic loop"
        kernel.result = set(out.take())  # type: ignore[attr-defined]
        return elapsed

    classic_seconds = _best(rounds, classic)
    kernel_seconds = _best(rounds, kernel)
    assert classic.result == kernel.result, "kernel emission diverged"
    return classic_seconds, kernel_seconds


def _gallop_micro(rounds: int, clock) -> float:
    """Galloping-intersection throughput in elements/second."""
    a = list(range(0, 400_000, 2))
    b = list(range(0, 400_000, 7))
    expected = len(set(a) & set(b))

    def once() -> float:
        start = clock()
        out = intersect_sorted(a, b)
        elapsed = clock() - start
        assert len(out) == expected
        return elapsed

    seconds = _best(rounds, once)
    return (len(a) + len(b)) / seconds if seconds > 0 else float("inf")


def run_micro(
    name: str,
    fragment: str = "rhodf",
    scale: float = DEFAULT_SCALE,
    store: str = "hashdict",
    rounds: int = 3,
    join_nodes: int = 4000,
    join_batch: int = 512,
    clock: Callable[[], float] = time.perf_counter,
) -> MicroResult:
    """Measure snapshot load-to-serving, hydration, and kernel speedups.

    Each timed phase runs ``rounds`` times and keeps the best (the
    phases are milliseconds-fast; a scheduler hiccup would otherwise
    swamp them).  Every load path answers one probe read and the v1/v2
    stores are asserted to agree, so the ratios compare equal work.
    """
    path = dataset_file(name, scale)
    with Slider(fragment=fragment, store=store, workers=0, timeout=None) as engine:
        engine.load(path)
        engine.flush()
        v1_blob = engine.snapshot_bytes(format="v1")
        v2_blob = engine.snapshot_bytes(format="v2")
        triple_total = len(engine.store)
        term_total = len(engine.dictionary)

    with tempfile.TemporaryDirectory(prefix="slider-micro-") as work:
        v1_path = Path(work) / "snapshot-v1.slider"
        v2_path = Path(work) / "snapshot-v2.slider"
        v1_path.write_bytes(v1_blob)
        v2_path.write_bytes(v2_blob)

        def load_v1() -> float:
            start = clock()
            snapshot = load_snapshot(v1_path)
            dictionary = TermDictionary()
            target = create_store(store)
            snapshot.restore(dictionary, target)
            assert len(target) == triple_total  # the probe read
            return clock() - start

        def load_v2() -> float:
            start = clock()
            snapshot = load_snapshot(v2_path)
            serving = ColumnarReadStore(snapshot)
            assert len(serving) == triple_total  # the probe read
            elapsed = clock() - start
            serving.close()
            return elapsed

        v1_load_seconds = _best(rounds, load_v1)
        v2_load_seconds = _best(rounds, load_v2)

        def hydrate() -> float:
            snapshot = load_snapshot(v2_path)
            start = clock()
            dictionary = TermDictionary()
            target = create_store(store)
            snapshot.restore(dictionary, target)
            elapsed = clock() - start
            assert len(target) == triple_total
            snapshot.close()
            return elapsed

        hydrate_seconds = _best(rounds, hydrate)

    classic_seconds, kernel_seconds = _join_micro(
        fragment, join_nodes, join_batch, rounds, clock
    )
    return MicroResult(
        dataset=name, fragment=fragment, scale=scale, store=store,
        triples=triple_total, terms=term_total,
        v1_bytes=len(v1_blob), v2_bytes=len(v2_blob),
        v1_load_seconds=v1_load_seconds,
        v2_load_seconds=v2_load_seconds,
        hydrate_seconds=hydrate_seconds,
        classic_join_seconds=classic_seconds,
        kernel_join_seconds=kernel_seconds,
        gallop_elements_per_second=_gallop_micro(rounds, clock),
    )
