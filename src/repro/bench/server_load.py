"""Closed-loop load generator for the HTTP reasoning service.

The serving layer's acceptance bar is throughput *under mixed load*:
many readers querying the maintained closure while writers stream
deltas in.  :func:`run_server_load` boots a real
:class:`~repro.server.http.ReasoningHTTPServer` on an ephemeral port,
drives it with ``readers`` + ``writers`` closed-loop client threads
(each a keep-alive :class:`http.client.HTTPConnection`, next request
only after the previous response — so measured latency is honest), and
reports per-class throughput and latency percentiles.

Workload shape:

* the store is seeded with a subClassOf chain + typed instances, so
  reads (``GET /select`` over an inference-produced pattern) exercise
  the BGP engine against snapshot views;
* each write (``POST /apply``) asserts a fresh instance-level triple, so
  every commit runs the full pipeline (encode, store, rule routing,
  change log, view publication).  Writes use their own predicate so the
  read query's partition stays constant-size — the measured read
  latency reflects serving cost, not a workload that balloons over the
  run.

The generator is transport-inclusive by design: it measures what a
client of the *service* sees, not what the engine could do in-process.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection
from urllib.parse import quote

from ..rdf.namespaces import RDF, RDFS
from ..rdf.terms import IRI, Triple

__all__ = ["ServerLoadResult", "run_server_load"]

_EX = "http://bench.example.org/"


class ServerLoadResult:
    """Outcome of one mixed-load run against the HTTP service."""

    __slots__ = (
        "seconds", "readers", "writers",
        "read_count", "write_count", "error_count",
        "read_latencies_ms", "write_latencies_ms",
        "final_revision", "final_triples", "coalesced_max",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    # --- throughput ---------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return self.read_count + self.write_count

    @property
    def total_rps(self) -> float:
        return self.total_requests / self.seconds if self.seconds else 0.0

    @property
    def read_rps(self) -> float:
        return self.read_count / self.seconds if self.seconds else 0.0

    @property
    def write_rps(self) -> float:
        return self.write_count / self.seconds if self.seconds else 0.0

    # --- latency ------------------------------------------------------------
    @staticmethod
    def _percentile(samples: list[float], fraction: float) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def read_p50_ms(self) -> float:
        return self._percentile(self.read_latencies_ms, 0.50)

    @property
    def read_p99_ms(self) -> float:
        return self._percentile(self.read_latencies_ms, 0.99)

    @property
    def write_p50_ms(self) -> float:
        return self._percentile(self.write_latencies_ms, 0.50)

    @property
    def write_p99_ms(self) -> float:
        return self._percentile(self.write_latencies_ms, 0.99)

    def as_dict(self) -> dict:
        return {
            "kind": "server",
            "seconds": self.seconds,
            "readers": self.readers,
            "writers": self.writers,
            "reads": self.read_count,
            "writes": self.write_count,
            "errors": self.error_count,
            "total_rps": self.total_rps,
            "read_rps": self.read_rps,
            "write_rps": self.write_rps,
            "read_p50_ms": self.read_p50_ms,
            "read_p99_ms": self.read_p99_ms,
            "write_p50_ms": self.write_p50_ms,
            "write_p99_ms": self.write_p99_ms,
            "final_revision": self.final_revision,
            "final_triples": self.final_triples,
            "coalesced_max": self.coalesced_max,
        }

    def __repr__(self):
        return (
            f"<ServerLoadResult {self.total_rps:,.0f} req/s "
            f"(r={self.read_rps:,.0f} w={self.write_rps:,.0f}) "
            f"read p99={self.read_p99_ms:.1f}ms errors={self.error_count}>"
        )


def _seed_triples(classes: int, instances: int) -> list[Triple]:
    """A subClassOf chain with typed instances at the bottom class."""
    triples = [
        Triple(IRI(f"{_EX}C{i}"), RDFS.subClassOf, IRI(f"{_EX}C{i - 1}"))
        for i in range(1, classes)
    ]
    triples += [
        Triple(IRI(f"{_EX}item{i}"), RDF.type, IRI(f"{_EX}C{classes - 1}"))
        for i in range(instances)
    ]
    return triples


def run_server_load(
    duration: float = 3.0,
    readers: int = 8,
    writers: int = 2,
    fragment: str = "rhodf",
    store: str = "hashdict",
    workers: int = 2,
    coalesce_tick: float = 0.002,
    seed_classes: int = 10,
    seed_instances: int = 50,
    clock=time.perf_counter,
) -> ServerLoadResult:
    """Boot the service, hammer it for ``duration`` seconds, report."""
    from ..reasoner.engine import Slider
    from ..server.http import serve
    from ..server.service import ReasoningService

    reasoner = Slider(fragment=fragment, store=store, workers=workers,
                      timeout=0.05 if workers else None, buffer_size=200)
    reasoner.add(_seed_triples(seed_classes, seed_instances))
    service = ReasoningService(reasoner=reasoner, coalesce_tick=coalesce_tick)
    server, _thread = serve(service)

    # Readers ask for everything typed at the chain's top — an answer the
    # engine produced by inference, evaluated against snapshot views.
    read_path = "/select?query=" + quote(
        f"?x <{RDF.type.value}> <{_EX}C0>", safe=""
    ) + "&limit=25"

    stop = threading.Event()
    errors = [0]
    error_lock = threading.Lock()
    read_lat: list[list[float]] = [[] for _ in range(readers)]
    write_lat: list[list[float]] = [[] for _ in range(writers)]

    def reader(slot: int) -> None:
        conn = HTTPConnection("127.0.0.1", server.port, timeout=10)
        latencies = read_lat[slot]
        try:
            while not stop.is_set():
                start = clock()
                conn.request("GET", read_path)
                response = conn.getresponse()
                body = response.read()
                latencies.append((clock() - start) * 1000.0)
                if response.status != 200 or not body:
                    with error_lock:
                        errors[0] += 1
        except Exception:
            if not stop.is_set():
                with error_lock:
                    errors[0] += 1
        finally:
            conn.close()

    def writer(slot: int) -> None:
        conn = HTTPConnection("127.0.0.1", server.port, timeout=10)
        latencies = write_lat[slot]
        headers = {"Content-Type": "application/json"}
        sequence = 0
        try:
            while not stop.is_set():
                sequence += 1
                body = json.dumps({
                    "assert": [
                        f"<{_EX}w{slot}i{sequence}> <{_EX}observedAt> "
                        f"<{_EX}C{seed_classes - 1}>"
                    ]
                })
                start = clock()
                conn.request("POST", "/apply", body, headers)
                response = conn.getresponse()
                payload = response.read()
                latencies.append((clock() - start) * 1000.0)
                if response.status != 200 or not payload:
                    with error_lock:
                        errors[0] += 1
        except Exception:
            if not stop.is_set():
                with error_lock:
                    errors[0] += 1
        finally:
            conn.close()

    threads = [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(readers)
    ] + [
        threading.Thread(target=writer, args=(i,), daemon=True)
        for i in range(writers)
    ]
    started = clock()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    seconds = clock() - started

    stats = service.stats()
    result = ServerLoadResult(
        seconds=seconds,
        readers=readers,
        writers=writers,
        read_count=sum(len(l) for l in read_lat),
        write_count=sum(len(l) for l in write_lat),
        error_count=errors[0],
        read_latencies_ms=[x for slot in read_lat for x in slot],
        write_latencies_ms=[x for slot in write_lat for x in slot],
        final_revision=stats["revision"],
        final_triples=stats["triples"],
        coalesced_max=stats["writes"]["max_coalesced"],
    )
    server.shutdown()
    server.server_close()
    service.close()
    return result
