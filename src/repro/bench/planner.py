"""Planner benchmarks: cost-based joins and incremental subscriptions.

Two runner-robust ratios, both gated in CI through
``python -m repro.bench.compare``:

* **query_speedup** — a suite of high-join-count BGPs written in a
  deliberately pessimal order (unselective patterns first, the
  selective anchor last) evaluated with the written-order reference
  (:func:`repro.store.query.solve_naive`) vs the cost-based planner
  (:func:`repro.store.query.solve`).  The planner reorders by
  selectivity and probes permutation indexes, so the ratio grows with
  the data; the gate requires >= 10x.
* **subscription_speedup** — 1 000 standing BGPs maintained through a
  write workload.  Incrementally (compiled
  :class:`~repro.store.planner.IncrementalBGPPlan` folding each
  revision's delta) vs the pre-planner strategy of re-running ``solve``
  for every standing query after every revision.  The gate requires
  >= 5x.

Both sides of each ratio are checked for *identical answers* before any
time is reported — a fast wrong answer is not a speedup.

Run directly (``python -m repro.bench.planner``) for a one-shot
human-readable report, or through ``benchmarks/bench_planner.py`` for
the pytest-benchmark harness and the JSON artifact.
"""

from __future__ import annotations

import random
import time
from collections import Counter

from ..rdf.namespaces import Namespace
from ..rdf.terms import Triple, Variable
from ..reasoner.delta import Delta
from ..reasoner.engine import Slider
from ..store.graph import Graph
from ..store.query import solve, solve_naive

__all__ = ["PlannerBenchResult", "run_planner_bench"]

EX = Namespace("http://bench.example/")

X, Y, O = Variable("x"), Variable("y"), Variable("o")
A, B, Z = Variable("a"), Variable("b"), Variable("z")


class PlannerBenchResult:
    """Outcome of one planner sweep (see module docstring)."""

    __slots__ = (
        "store", "people", "graph_size", "queries",
        "naive_seconds", "planned_seconds",
        "standing_queries", "revisions",
        "resolve_seconds", "incremental_seconds",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @property
    def query_speedup(self) -> float:
        """Pessimal-written-order suite: naive over planned wall time."""
        if self.planned_seconds <= 0:
            return float("inf")
        return self.naive_seconds / self.planned_seconds

    @property
    def subscription_speedup(self) -> float:
        """Standing-query maintenance: re-solve over incremental."""
        if self.incremental_seconds <= 0:
            return float("inf")
        return self.resolve_seconds / self.incremental_seconds

    def as_dict(self) -> dict:
        data = {name: getattr(self, name) for name in self.__slots__}
        data["kind"] = "planner"
        data["query_speedup"] = self.query_speedup
        data["subscription_speedup"] = self.subscription_speedup
        return data

    def __repr__(self):
        return (
            f"<PlannerBenchResult query={self.query_speedup:.1f}x "
            f"subscriptions={self.subscription_speedup:.1f}x "
            f"({self.standing_queries} standing, {self.revisions} revisions)>"
        )


# --- query workload ----------------------------------------------------------

def _build_query_graph(people: int, store: str) -> Graph:
    """A social graph where written-order evaluation goes quadratic.

    ``type Person`` is maximally unselective (one row per person), the
    ``knows`` chain joins them, ``worksAt`` buckets them into 10 orgs,
    and exactly one person carries the selective ``status Suspect``
    anchor a cost-based planner should start from.
    """
    graph = Graph(store=store)
    triples = []
    for i in range(people):
        person = EX[f"person{i}"]
        triples.append(Triple(person, EX.type, EX.Person))
        triples.append(Triple(person, EX.worksAt, EX[f"org{i % 10}"]))
        if i + 1 < people:
            triples.append(Triple(person, EX.knows, EX[f"person{i + 1}"]))
    triples.append(Triple(EX[f"person{people // 2}"], EX.status, EX.Suspect))
    for i in range(10):
        triples.append(Triple(EX[f"org{i}"], EX.type, EX.Org))
    graph.add_all(triples)
    return graph


def _query_suite() -> list[list[tuple]]:
    """High-join-count BGPs, each written selective-pattern-last."""
    return [
        # Quadratic as written: two full Person scans before the join.
        [
            (X, EX.type, EX.Person),
            (Y, EX.type, EX.Person),
            (X, EX.knows, Y),
            (X, EX.status, EX.Suspect),
        ],
        # Quadratic colleague pairing, anchor last again.
        [
            (X, EX.type, EX.Person),
            (Y, EX.type, EX.Person),
            (X, EX.worksAt, O),
            (Y, EX.worksAt, O),
            (Y, EX.status, EX.Suspect),
        ],
        # Eight patterns: a knows-chain walk off the anchor.
        [
            (X, EX.type, EX.Person),
            (A, EX.type, EX.Person),
            (X, EX.knows, A),
            (A, EX.knows, B),
            (B, EX.knows, Z),
            (Z, EX.worksAt, O),
            (O, EX.type, EX.Org),
            (X, EX.status, EX.Suspect),
        ],
    ]


def _as_multiset(solutions) -> Counter:
    return Counter(frozenset(binding.items()) for binding in solutions)


def _time_suite(graph: Graph, queries, evaluate, rounds: int, clock) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = clock()
        for patterns in queries:
            evaluate(graph, patterns)
        best = min(best, clock() - start)
    return best


# --- subscription workload ---------------------------------------------------

def _standing_patterns(standing: int) -> list[list[tuple]]:
    """``standing`` BGPs over a 40-predicate space; every fourth a 2-chain."""
    predicates = [EX[f"pred{k}"] for k in range(40)]
    patterns = []
    for k in range(standing):
        if k % 4 == 3:
            patterns.append([
                (X, predicates[k % 40], Y),
                (Y, predicates[(k + 7) % 40], Z),
            ])
        else:
            patterns.append([(X, predicates[k % 40], Y)])
    return patterns


def _base_graph(base_triples: int) -> list[Triple]:
    """The preloaded graph the standing queries stand over: deterministic
    triples across the full predicate space, dense enough that every
    re-solve pays a real per-query cost."""
    return [
        Triple(
            EX[f"node{(i * 13) % 400}"],
            EX[f"pred{i % 40}"],
            EX[f"node{(i * 7 + 3) % 400}"],
        )
        for i in range(base_triples)
    ]


def _write_script(revisions: int, rng: random.Random) -> list[Delta]:
    """Mixed add/retract deltas over the standing queries' predicate space."""
    predicates = [EX[f"pred{k}"] for k in range(40)]
    live: list[Triple] = []
    script = []
    for _ in range(revisions):
        assertions = [
            Triple(
                EX[f"node{rng.randint(0, 399)}"],
                rng.choice(predicates),
                EX[f"node{rng.randint(0, 399)}"],
            )
            for _ in range(20)
        ]
        retractions = rng.sample(live, k=min(len(live), rng.randint(0, 3)))
        removed = set(retractions)
        live = [t for t in live if t not in removed]
        live.extend(t for t in assertions if t not in live)
        script.append(Delta(assertions=assertions, retractions=retractions))
    return script


def _solution_keys(bindings) -> set:
    return {frozenset(binding.items()) for binding in bindings}


def _run_incremental(store, base, script, patterns, clock):
    """Maintain every standing BGP through the engine's subscription
    layer; returns (seconds, final solution key-sets)."""
    with Slider(fragment="rhodf", workers=0, timeout=None, store=store) as r:
        r.apply(Delta(assertions=base))
        subscriptions = [r.subscribe(p) for p in patterns]
        start = clock()
        for delta in script:
            r.apply(delta)
            for subscription in subscriptions:
                subscription.drain()
        elapsed = clock() - start
        final = [_solution_keys(s.solutions) for s in subscriptions]
    return elapsed, final


def _run_resolve(store, base, script, patterns, clock):
    """The pre-planner strategy: after every revision, re-run ``solve``
    for every standing BGP and diff against the previous solutions."""
    with Slider(fragment="rhodf", workers=0, timeout=None, store=store) as r:
        r.apply(Delta(assertions=base))
        previous = [_solution_keys(solve(r.graph, bgp)) for bgp in patterns]
        start = clock()
        for delta in script:
            r.apply(delta)
            for index, bgp in enumerate(patterns):
                current = _solution_keys(solve(r.graph, bgp))
                # The diff a subscription event would carry.
                _added = current - previous[index]
                _removed = previous[index] - current
                previous[index] = current
        elapsed = clock() - start
    return elapsed, previous


# --- entry point -------------------------------------------------------------

def run_planner_bench(
    store: str = "hashdict",
    scale: float = 1.0,
    standing: int = 1000,
    revisions: int = 8,
    base_triples: int = 4000,
    rounds: int = 3,
    seed: int = 96321,
    clock=time.perf_counter,
) -> PlannerBenchResult:
    """Run both planner workloads; see the module docstring."""
    people = max(50, int(400 * scale))
    graph = _build_query_graph(people, store)
    queries = _query_suite()

    # Answers must agree before any time is believed.
    for patterns in queries:
        assert _as_multiset(solve(graph, patterns)) == _as_multiset(
            solve_naive(graph, patterns)
        ), f"planner diverged from the reference on {patterns}"

    naive_seconds = _time_suite(graph, queries, solve_naive, rounds, clock)
    planned_seconds = _time_suite(graph, queries, solve, rounds, clock)

    patterns = _standing_patterns(standing)
    base = _base_graph(int(base_triples * scale))
    script = _write_script(revisions, random.Random(seed))
    incremental_seconds, incremental_final = _run_incremental(
        store, base, script, patterns, clock
    )
    resolve_seconds, resolve_final = _run_resolve(
        store, base, script, patterns, clock
    )
    assert incremental_final == resolve_final, (
        "incremental subscription maintenance diverged from re-solve"
    )

    return PlannerBenchResult(
        store=store,
        people=people,
        graph_size=len(graph.store),
        queries=len(queries),
        naive_seconds=naive_seconds,
        planned_seconds=planned_seconds,
        standing_queries=standing,
        revisions=revisions,
        resolve_seconds=resolve_seconds,
        incremental_seconds=incremental_seconds,
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.planner",
        description="Planner benchmarks: cost-based joins, incremental subscriptions.",
    )
    parser.add_argument("--store", default="hashdict")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--standing", type=int, default=1000)
    parser.add_argument("--revisions", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)
    result = run_planner_bench(
        store=args.store,
        scale=args.scale,
        standing=args.standing,
        revisions=args.revisions,
        rounds=args.rounds,
    )
    print(
        f"query suite   ({result.queries} BGPs, {result.graph_size} triples): "
        f"naive {result.naive_seconds:.4f}s, planned {result.planned_seconds:.4f}s "
        f"-> {result.query_speedup:.1f}x"
    )
    print(
        f"subscriptions ({result.standing_queries} standing, "
        f"{result.revisions} revisions): re-solve {result.resolve_seconds:.3f}s, "
        f"incremental {result.incremental_seconds:.3f}s "
        f"-> {result.subscription_speedup:.1f}x"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
