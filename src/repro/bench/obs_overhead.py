"""Observability overhead: instrumented vs. disabled write throughput.

Instrumentation that taxes the hot path gets turned off in production,
at which point it observes nothing.  This bench holds the subsystem to
its contract: with metrics *and* tracing enabled, the full write
pipeline (coalescer span, engine commit counters/histograms, view
publication) must sustain at least
``SLIDER_BENCH_OBS_MIN_RATIO`` (default 0.9) of the throughput it
reaches with observability disabled.

Measurement design — the estimator matters more than the workload
here, because the tax being measured (a few microseconds per commit)
is far smaller than ambient machine-load noise:

* **Batch-interleaved A/B on one engine.**  Batches alternate
  disabled / instrumented on the same service, so both modes see the
  identical store-growth profile and ambient load stalls land on
  random batches of *both* modes instead of poisoning one whole
  timed pass (pass-level pairing was observed swinging the ratio by
  ±10 % run to run; interleaving holds it within ~±2 %).
* **Per-mode medians.**  The gated ratio is the ratio of per-mode
  *median* batch latencies; a median simply discards the handful of
  batches a scheduler preemption or page fault hit.
* **GC held off.**  A gen-2 cycle collection pauses the process for
  tens of milliseconds and lands wherever the allocation counter
  happens to stand; the collector is disabled around the timed loop
  so the measurement is the instrumentation tax, not collector
  scheduling.

The artifact (``kind: "obs"``) feeds ``repro.bench.compare`` through
the ``obs.instrumented_throughput_ratio`` baseline pin.
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import asdict, dataclass, field

from ..obs import REGISTRY, TRACER, set_enabled
from ..rdf.terms import IRI, Triple
from ..server.service import ReasoningService

__all__ = ["OBSOverheadResult", "run_obs_overhead"]

#: Leading batches per mode excluded from the medians (imports,
#: allocator warm-up, first-touch caches).
WARMUP_BATCHES = 20


@dataclass
class OBSOverheadResult:
    """Throughput of the same workload with observability on vs. off."""

    batches: int
    batch_size: int
    store: str
    warmup_batches: int
    disabled_tps: float
    instrumented_tps: float
    instrumented_throughput_ratio: float
    metric_families: int
    spans_recorded: int
    kind: str = field(default="obs")

    def as_dict(self) -> dict:
        return asdict(self)


def _workload(batches: int, batch_size: int) -> list[list[Triple]]:
    predicate = IRI("urn:bench:links")
    return [
        [
            Triple(
                IRI(f"urn:bench:s{batch}-{i}"),
                predicate,
                IRI(f"urn:bench:o{batch}-{i}"),
            )
            for i in range(batch_size)
        ]
        for batch in range(batches)
    ]


def run_obs_overhead(
    batches: int = 600,
    batch_size: int = 40,
    store: str = "hashdict",
) -> OBSOverheadResult:
    """Measure the observability tax on the write pipeline.

    Applies ``batches`` batches to one fresh engine, alternating the
    observability switch per batch (even = disabled, odd =
    instrumented), and reports the ratio of per-mode median batch
    latencies.  The ambient registry and tracer are restored to their
    prior enabled state afterwards.

    The instrumentation cost is per *commit* (one span, a fixed set of
    counter/histogram touches), so the ratio depends on batch size; the
    default of 40 triples per batch matches the low end of what the
    production coalescer hands the engine under concurrent writers.
    """
    if batches < 2 * (WARMUP_BATCHES + 1):
        raise ValueError(
            f"need at least {2 * (WARMUP_BATCHES + 1)} batches, got {batches}"
        )
    work = _workload(batches, batch_size)
    was_enabled = REGISTRY.enabled
    times: dict[bool, list[float]] = {False: [], True: []}
    ring_before = len(TRACER.ring)
    service = ReasoningService(
        fragment="rhodf", workers=0, timeout=None, store=store, coalesce_tick=0.0
    )
    gc_was_enabled = gc.isenabled()
    try:
        gc.collect()
        gc.disable()
        for index, batch in enumerate(work):
            instrumented = bool(index % 2)
            set_enabled(instrumented)
            started = time.perf_counter()
            service.apply(batch)
            times[instrumented].append(time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
        set_enabled(was_enabled)
        service.close()
    spans_recorded = len(TRACER.ring) - ring_before
    disabled_median = statistics.median(times[False][WARMUP_BATCHES:])
    instrumented_median = statistics.median(times[True][WARMUP_BATCHES:])
    return OBSOverheadResult(
        batches=batches,
        batch_size=batch_size,
        store=store,
        warmup_batches=WARMUP_BATCHES,
        disabled_tps=batch_size / disabled_median,
        instrumented_tps=batch_size / instrumented_median,
        instrumented_throughput_ratio=disabled_median / instrumented_median
        if instrumented_median > 0
        else float("inf"),
        metric_families=len(REGISTRY.families()),
        spans_recorded=spans_recorded,
    )
