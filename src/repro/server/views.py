"""Snapshot-isolated read views: one immutable store image per revision.

The serving layer must let many readers query the maintained closure
while writes stream in.  Letting readers touch the engine's live store
would expose them to half-applied revisions (the rule pipeline inserts
triples throughout the fixpoint computation, not just at commit), and
gating them behind the commit lock would serialize reads against writes.

Instead, reads go to a :class:`ReadView`: an immutable, predicate-
partitioned image of the store *at one committed revision*.  Views form
a persistent (copy-on-write) chain:

* the first view is built once from the quiesced store;
* each committed revision derives the next view from its predecessor by
  folding in the revision's :class:`~repro.reasoner.delta.InferenceReport`
  encoded diff — the predicate map is copied shallowly and only the
  partitions the delta touched are rewritten, so advancing costs
  O(delta), not O(store), and untouched partitions are shared between
  every retained view.

A reader simply grabs the current view reference and queries it for as
long as it likes: commits never mutate a published view, so there is
nothing to lock and nothing to block.  :class:`ViewRegistry` keeps a
short ring of recent revisions so a client can pin an exact revision id
(``GET /select?at=N``) across several requests.

``ReadView`` implements the read half of the
:class:`~repro.store.backends.base.TripleStore` protocol, so the
ordinary :class:`~repro.store.graph.Graph` / :mod:`repro.store.query`
machinery evaluates BGPs against a view unchanged; the write half raises.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Iterator

from ..dictionary.encoder import EncodedTriple
from ..reasoner.delta import InferenceReport
from ..store.backends import TripleStore

__all__ = ["ReadView", "ViewRegistry", "RevisionGoneError"]


class RevisionGoneError(LookupError):
    """The pinned revision is older than the registry's retention ring."""


class ReadView:
    """An immutable triple-store image at one committed revision.

    Read-only: the mutation half of the ``TripleStore`` protocol raises
    :class:`TypeError`.  Derive the successor revision's view with
    :meth:`advance` (structure-sharing, delta-proportional cost).
    """

    __slots__ = ("revision", "_by_predicate", "_size", "_pred_stats")

    def __init__(
        self,
        revision: int,
        by_predicate: dict[int, frozenset[tuple[int, int]]],
        size: int,
    ):
        self.revision = revision
        self._by_predicate = by_predicate
        self._size = size
        #: predicate -> (count, distinct s, distinct o), lazily computed —
        #: safe to cache because a published view never mutates.
        self._pred_stats: dict[int, tuple[int, int, int]] = {}

    @classmethod
    def from_store(cls, revision: int, store: TripleStore) -> "ReadView":
        """Materialize a view from a (quiesced) live store. O(store)."""
        by_predicate = {
            predicate: frozenset(store.pairs_for_predicate(predicate))
            for predicate in store.predicates()
        }
        size = sum(len(pairs) for pairs in by_predicate.values())
        return cls(revision, by_predicate, size)

    def advance(self, report: InferenceReport) -> "ReadView":
        """The next revision's view: this view plus the report's diff.

        Copy-on-write: only predicate partitions the diff touches are
        rebuilt; everything else is shared with this view.
        """
        touched: dict[int, tuple[set, set]] = {}
        for s, p, o in report.added_encoded:
            adds, _ = touched.setdefault(p, (set(), set()))
            adds.add((s, o))
        for s, p, o in report.removed_encoded:
            _, removes = touched.setdefault(p, (set(), set()))
            removes.add((s, o))
        if not touched:
            return ReadView(report.revision, self._by_predicate, self._size)
        by_predicate = dict(self._by_predicate)
        size = self._size
        for predicate, (adds, removes) in touched.items():
            pairs = set(by_predicate.get(predicate, ()))
            before = len(pairs)
            pairs -= removes
            pairs |= adds
            size += len(pairs) - before
            if pairs:
                by_predicate[predicate] = frozenset(pairs)
            else:
                by_predicate.pop(predicate, None)
        return ReadView(report.revision, by_predicate, size)

    # --- TripleStore read protocol ------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: EncodedTriple) -> bool:
        s, p, o = triple
        pairs = self._by_predicate.get(p)
        return pairs is not None and (s, o) in pairs

    def __iter__(self) -> Iterator[EncodedTriple]:
        for predicate, pairs in self._by_predicate.items():
            for s, o in pairs:
                yield (s, predicate, o)

    def has_predicate(self, predicate: int) -> bool:
        """Does any triple with this predicate id exist in the view?"""
        return predicate in self._by_predicate

    def predicates(self) -> list[int]:
        """Every predicate id with at least one triple, unordered."""
        return list(self._by_predicate)

    def count_predicate(self, predicate: int) -> int:
        """Number of triples in this predicate's partition."""
        pairs = self._by_predicate.get(predicate)
        return len(pairs) if pairs is not None else 0

    def pairs_for_predicate(self, predicate: int) -> list[tuple[int, int]]:
        """The ``(subject, object)`` pairs of one predicate partition."""
        return list(self._by_predicate.get(predicate, ()))

    def objects(self, predicate: int, subject: int) -> list[int]:
        """Object ids of ``(subject, predicate, ?o)`` triples."""
        pairs = self._by_predicate.get(predicate)
        if not pairs:
            return []
        return [o for s, o in pairs if s == subject]

    def subjects(self, predicate: int, obj: int) -> list[int]:
        """Subject ids of ``(?s, predicate, obj)`` triples."""
        pairs = self._by_predicate.get(predicate)
        if not pairs:
            return []
        return [s for s, o in pairs if o == obj]

    def match(
        self,
        subject: int | None = None,
        predicate: int | None = None,
        obj: int | None = None,
    ) -> list[EncodedTriple]:
        """All triples matching the given bound positions (None = any)."""
        if predicate is not None:
            pairs = self._by_predicate.get(predicate)
            partitions: Iterable = ((predicate, pairs),) if pairs else ()
        else:
            partitions = self._by_predicate.items()
        matches: list[EncodedTriple] = []
        for p, pairs in partitions:
            for s, o in pairs:
                if (subject is None or s == subject) and (obj is None or o == obj):
                    matches.append((s, p, o))
        return matches

    def stats(self) -> dict[str, int]:
        """Triple/predicate counts and the revision, JSON-ready."""
        return {
            "triples": self._size,
            "predicates": len(self._by_predicate),
            "revision": self.revision,
        }

    # --- permutation-index read surface (planner protocol) ----------------
    # A view is predicate-partitioned only; subject-/object-first access
    # falls back to partition scans (the planner's cost model prices these
    # at store size, so they are only picked when the shape forces them).
    def triples_for_subject(self, subject: int) -> list[EncodedTriple]:
        """All triples of one subject (partition scan, priced as such)."""
        return self.match(subject=subject)

    def triples_for_object(self, obj: int) -> list[EncodedTriple]:
        """All triples of one object (partition scan, priced as such)."""
        return self.match(obj=obj)

    def predicates_between(self, subject: int, obj: int) -> list[int]:
        """Predicate ids linking ``subject`` to ``obj``."""
        return [
            p
            for p, pairs in self._by_predicate.items()
            if (subject, obj) in pairs
        ]

    def predicate_stats(self, predicate: int) -> tuple[int, int, int]:
        """``(cardinality, distinct subjects, distinct objects)``, cached."""
        cached = self._pred_stats.get(predicate)
        if cached is not None:
            return cached
        pairs = self._by_predicate.get(predicate)
        if not pairs:
            stats = (0, 0, 0)
        else:
            stats = (
                len(pairs),
                len({s for s, _ in pairs}),
                len({o for _, o in pairs}),
            )
        self._pred_stats[predicate] = stats
        return stats

    def stats_vector(self) -> tuple[tuple[int, int, int, int], ...]:
        """Deterministic per-predicate stats rows, sorted by predicate id."""
        return tuple(
            (predicate,) + self.predicate_stats(predicate)
            for predicate in sorted(self._by_predicate)
        )

    # --- TripleStore write protocol: a view is immutable --------------------
    def _immutable(self, *_args, **_kwargs):
        raise TypeError(
            f"ReadView is an immutable snapshot (revision {self.revision}); "
            "mutations go through the engine's apply() pipeline"
        )

    add = add_all = remove = remove_all = clear = _immutable

    def __repr__(self):
        return f"<ReadView revision={self.revision} triples={self._size}>"


class ViewRegistry:
    """The chain of recent :class:`ReadView` instances, by revision id.

    ``advance`` is called once per committed revision (from the write
    path); ``current``/``at`` are called from any number of reader
    threads.  Publication is a single reference assignment under a lock,
    and the returned views are immutable — readers never block writers
    and vice versa.
    """

    def __init__(self, initial: ReadView, retain: int = 8):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self._retain = retain
        self._lock = threading.Lock()
        self._current = initial
        self._by_revision: "OrderedDict[int, ReadView]" = OrderedDict(
            [(initial.revision, initial)]
        )

    def current(self) -> ReadView:
        """The view of the latest published revision."""
        return self._current  # reference read: atomic under the GIL

    def at(self, revision: int) -> ReadView:
        """The view pinned at ``revision``; raises if evicted/unknown."""
        with self._lock:
            view = self._by_revision.get(revision)
        if view is None:
            raise RevisionGoneError(
                f"revision {revision} is not retained "
                f"(oldest kept: {self.oldest_revision()})"
            )
        return view

    def advance(self, report: InferenceReport) -> ReadView:
        """Publish the view for one committed revision's report."""
        view = self._current.advance(report)
        with self._lock:
            self._current = view
            self._by_revision[view.revision] = view
            while len(self._by_revision) > self._retain:
                self._by_revision.popitem(last=False)
        return view

    def oldest_revision(self) -> int:
        """The oldest revision still pinnable via ``at=``."""
        with self._lock:
            return next(iter(self._by_revision))

    def revisions(self) -> list[int]:
        """Retained revision ids, oldest first."""
        with self._lock:
            return list(self._by_revision)

    def __repr__(self):
        return (
            f"<ViewRegistry current={self._current.revision} "
            f"retained={len(self._by_revision)}>"
        )
