"""The HTTP front end: stdlib-only serving for the reasoning service.

A :class:`ReasoningHTTPServer` (a ``ThreadingHTTPServer``) exposes one
:class:`~repro.server.service.ReasoningService`:

====================  ======  ====================================================
``/select``           GET     BGP solutions, projected on ``var`` (all by default);
                              ``explain=1`` returns the query plan instead
                              (join order, index per step, est. vs. actual rows)
``/ask``              GET     does the BGP have at least one solution?
``/construct``        GET     instantiate ``template`` for every ``query`` solution
``/triples``          GET     pattern dump (``s``/``p``/``o`` N-Triples terms)
``/stats``            GET     revision, engine, write-queue, replication state
``/healthz``          GET     liveness: ``{"ok": true, "revision": N, "role": ...}``
``/readyz``           GET     readiness: 503 while a replica catches up
``/apply``            POST    assert/retract batch -> coalesced commit + report
                              (followers answer 307 -> leader, or 403)
``/subscribe``        GET     SSE stream of a standing BGP's binding deltas
                              (``Last-Event-ID``/``from=`` replays missed ones)
``/feed``             GET     SSE replication feed of committed deltas
                              (``from=N`` resumes; 410 once compacted away)
``/snapshot``         GET     binary state image for replica bootstrap
``/metrics``          GET     Prometheus text exposition of every layer's metrics
``/debug/traces``     GET     recent spans as JSON lines (``?trace_id=``/``limit=``)
``/tenants``          GET     registered tenants + quotas (tenancy mode)
``/tenants``          POST    register / re-quota a tenant
``/tenants``          DELETE  unregister a tenant (``?name=``; data kept on disk)
====================  ======  ====================================================

Multi-tenant mode (``tenants=TenantManager`` / ``slider-reason serve
--tenancy``): read endpoints, ``/apply``, ``/subscribe`` and ``/stats``
accept ``?tenant=<name>`` and run against that tenant's isolated
engine.  Tenant admission maps onto HTTP statuses: an unknown tenant is
``404``; an over-rate or queue-full write is ``429`` with a
``Retry-After`` header; a write that would exceed a hard quota is
``413`` and commits nothing.

Consistency model: every read endpoint runs against a snapshot
:class:`~repro.server.views.ReadView` — reads see *committed revisions
only*, never an in-flight apply.  Responses carry the revision they were
evaluated at; pass ``at=N`` to pin a retained revision (``410 Gone``
once it leaves the ring).  Writes return their committed revision, and
the corresponding view is published before the response is sent, so a
client can chain ``POST /apply`` -> ``GET /select?at=<revision>``.

SSE: ``GET /subscribe?query=...`` emits one ``hello`` event (revision +
initial solution count), then one ``delta`` event per committed revision
that changed the solution set — binding-level ``added`` / ``removed``
arrays, exactly the diffs the in-process subscription API delivers —
with ``: keepalive`` comments while idle.

Observability: every request carries a trace id — honoured from the
client's ``X-Trace-Id`` header or minted at the edge — echoed back in
the response's ``X-Trace-Id`` header and threaded through the write
pipeline, so a coalesced ``/apply``'s commit span (and, under sharding,
every per-shard sub-commit span) names the client's id.  Request
counts/latency land in the ``slider_http_*`` metric families served at
``/metrics``; ``/select``, ``/ask`` and ``/construct`` over the server's
slow-query threshold are logged with their timing breakdown and the
planner's ``explain()`` output.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..obs import SlowQueryLog, TRACER, instruments as _obs, new_trace_id
from ..rdf.terms import Variable
from ..store.query import ask, construct, explain, solve
from ..tenancy.errors import (
    AdmissionRejectedError,
    QuotaExceededError,
    RateLimitedError,
    TenancyError,
    UnknownTenantError,
)
from ..tenancy.registry import TenantQuota
from .coalescer import CoalescerClosedError
from .service import ReasoningService, ServiceClosedError
from .views import RevisionGoneError
from .wire import (
    PatternSyntaxError,
    parse_patterns,
    parse_statements,
    parse_term,
    render_binding,
    render_triple,
)

__all__ = ["ReasoningHTTPServer", "serve", "MAX_BODY_BYTES"]

#: Idle seconds between SSE keepalive comments.
SSE_HEARTBEAT_SECONDS = 5.0

#: Default row/triple cap on read endpoints (override with ``limit=``).
DEFAULT_LIMIT = 10_000

#: Request bodies above this are refused with ``413`` before being read
#: — a malicious (or confused) client must not make the server buffer
#: an arbitrarily large ``/apply`` payload.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _BadRequest(ValueError):
    """Maps to a 400 with the message as the error body."""


class _Handler(BaseHTTPRequestHandler):
    # Keep-alive matters: the bench's closed-loop clients reuse their
    # connection for thousands of requests.
    protocol_version = "HTTP/1.1"
    # Headers and body leave in separate small writes; with Nagle on,
    # that interacts with delayed ACKs into a ~40 ms stall per response.
    disable_nagle_algorithm = True
    server: "ReasoningHTTPServer"

    # --- plumbing -----------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    @property
    def service(self) -> ReasoningService:
        # Snapshotted per request in _dispatch: a follower re-bootstrap
        # swaps the server's service, and one request must not straddle
        # two engines.
        return self._service

    def send_response(self, code, message=None):  # noqa: A003 - stdlib naming
        # Central choke point: every response (including redirects, SSE
        # headers and 304s) records its status for the request metrics
        # and echoes the request's trace id so clients can correlate
        # their call with the spans at /debug/traces.
        super().send_response(code, message)
        self._status = code
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, retry_after: float | None = None
    ) -> None:
        body = {"error": message}
        if retry_after is not None:
            body["retry_after"] = retry_after
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if retry_after is not None:
            # Whole seconds per RFC 9110; never advertise 0 ("retry now").
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _params(self) -> dict[str, list[str]]:
        return parse_qs(urlsplit(self.path).query, keep_blank_values=True)

    def _route(self) -> str:
        return urlsplit(self.path).path.rstrip("/") or "/"

    @staticmethod
    def _one(params: dict, name: str, required: bool = False) -> str | None:
        values = params.get(name)
        if not values or not values[-1]:
            if required:
                raise _BadRequest(f"missing required parameter {name!r}")
            return None
        return values[-1]

    @staticmethod
    def _int(params: dict, name: str, default: int | None = None) -> int | None:
        raw = _Handler._one(params, name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise _BadRequest(f"parameter {name!r} must be an integer, got {raw!r}")

    @staticmethod
    def _flag(params: dict, name: str) -> bool:
        raw = _Handler._one(params, name)
        return raw is not None and raw.lower() in ("1", "true", "yes")

    @staticmethod
    def _limit(params: dict) -> int:
        limit = _Handler._int(params, "limit", DEFAULT_LIMIT)
        if limit < 1:
            raise _BadRequest(f"parameter 'limit' must be >= 1, got {limit}")
        return limit

    def _tenant_manager(self):
        """The server's TenantManager; 400 when tenancy is not enabled."""
        manager = self.server.tenants
        if manager is None:
            raise _BadRequest(
                "tenancy is not enabled on this server (start with --tenancy)"
            )
        return manager

    def _graph_at(self, params: dict):
        """(graph, revision) for the request's (possibly pinned) view.

        With ``?tenant=`` the view comes from that tenant's isolated
        engine instead of the shared service.
        """
        at = self._int(params, "at")
        tenant = self._one(params, "tenant")
        if tenant is not None:
            graph = self._tenant_manager().view_graph(tenant, at)
        else:
            graph = self.service.graph(at)
        return graph, graph.store.revision

    # --- dispatch -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(_GET_ROUTES)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(_POST_ROUTES)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(_DELETE_ROUTES)

    def _dispatch(self, routes: dict) -> None:
        # Trace id: honour the client's X-Trace-Id (bounded, so a hostile
        # header cannot bloat every span) or mint one at the edge.
        raw = (self.headers.get("X-Trace-Id") or "").strip()
        self._trace_id = raw[:64] if raw else new_trace_id()
        self._status = 0
        route = self._route()
        # Unknown paths share one label: request metrics must not let an
        # URL scanner mint a label set per probe.
        endpoint = route if route in _KNOWN_ROUTES else "__unknown__"
        enabled = _obs.REGISTRY.enabled
        if enabled:
            _obs.HTTP_IN_FLIGHT.inc()
        started = time.perf_counter()
        try:
            if route in _UNTRACED_ROUTES:
                # Scrapes would otherwise flood the span ring they serve.
                self._handle_request(routes)
            else:
                with TRACER.span(
                    "http.request",
                    trace_ids=[self._trace_id],
                    endpoint=endpoint,
                    method=self.command,
                ) as span:
                    self._handle_request(routes)
                    span.set(status=self._status)
        finally:
            if enabled:
                _obs.HTTP_IN_FLIGHT.dec()
                _obs.HTTP_REQUESTS.inc_labels(endpoint, self.command, str(self._status))
                _obs.HTTP_REQUEST_SECONDS.observe_labels(
                    endpoint, value=time.perf_counter() - started
                )

    def _handle_request(self, routes: dict) -> None:
        try:
            self._service = self.server.service
        except Exception:  # noqa: BLE001 - provider gap, not a handler bug
            # A follower's service provider has no service during the
            # handover window of a durable re-bootstrap: that is a 503,
            # not a dropped connection.
            self._send_error_json(503, "service is restarting (replica bootstrap)")
            return
        # Drain the request body up front, whatever happens next: an
        # error response sent with unread body bytes on the socket would
        # desync every subsequent request of a keep-alive connection.
        # Oversized bodies are refused *unread* — draining them would be
        # the very buffering the cap exists to prevent — at the price of
        # closing this connection.
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.server.max_body_bytes:
            self.close_connection = True
            self._send_error_json(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit",
            )
            return
        self._body = self.rfile.read(length) if length > 0 else b""
        handler = routes.get(self._route())
        if handler is None:
            self._send_error_json(404, f"no such endpoint: {self._route()}")
            return
        try:
            handler(self)
        except _BadRequest as error:
            self._send_error_json(400, str(error))
        except PatternSyntaxError as error:
            self._send_error_json(400, f"bad query: {error}")
        except RevisionGoneError as error:
            # Includes the feed's FeedTruncatedError subclass: a resume
            # point compacted away is "revision gone", the at=N way.
            self._send_error_json(410, str(error))
        except (ServiceClosedError, CoalescerClosedError):
            self._send_error_json(503, "service is shutting down")
        except UnknownTenantError as error:
            self._send_error_json(404, str(error))
        except QuotaExceededError as error:
            # Hard quota: atomic reject, nothing committed (cf. 429,
            # which means "slow down and retry the same request").
            self._send_error_json(413, str(error))
        except (RateLimitedError, AdmissionRejectedError) as error:
            self._send_error_json(429, str(error), retry_after=error.retry_after)
        except TenancyError as error:
            self._send_error_json(400, str(error))
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 - a request must not kill the thread
            self._send_error_json(500, f"{type(error).__name__}: {error}")

    def _note_slow(
        self,
        endpoint: str,
        started: float,
        query: str,
        params: dict,
        breakdown: dict,
        graph=None,
        patterns=None,
    ) -> None:
        """Feed the server's slow-query log (cheap below the threshold).

        The planner's ``explain()`` is handed in lazily — it only runs
        for queries that actually crossed the threshold.
        """
        log = self.server.slow_queries
        seconds = time.perf_counter() - started
        if log is None or not log.enabled or seconds < log.threshold_seconds:
            return
        explain_fn = None
        if graph is not None and patterns is not None:

            def explain_fn():
                return explain(graph, patterns)

        entry = log.observe(
            endpoint=endpoint,
            seconds=seconds,
            query=query,
            tenant=self._one(params, "tenant"),
            trace_id=self._trace_id,
            breakdown=breakdown,
            explain_fn=explain_fn,
        )
        if entry is not None and _obs.REGISTRY.enabled:
            _obs.HTTP_SLOW_QUERIES.inc_labels(endpoint)

    # --- read endpoints -----------------------------------------------------
    def _ep_select(self) -> None:
        started = time.perf_counter()
        params = self._params()
        query = self._one(params, "query", required=True)
        patterns = parse_patterns(query)
        graph, revision = self._graph_at(params)
        limit = self._limit(params)
        parsed = time.perf_counter()
        if self._flag(params, "explain"):
            # Plan + execute once, reporting estimated vs. actual rows
            # per join step instead of the solution rows.
            self._send_json({"revision": revision, "explain": explain(graph, patterns)})
            return
        solutions = solve(graph, patterns)
        names = params.get("var")
        if names:
            variables = [Variable(name) for name in names]
            unknown = [
                v.name
                for v in variables
                if not any(v in pattern for pattern in patterns)
            ]
            if unknown:
                raise _BadRequest(f"projected variables not in query: {unknown}")
        else:
            seen: dict[Variable, None] = {}
            for pattern in patterns:
                for term in pattern:
                    if isinstance(term, Variable):
                        seen[term] = None
            variables = list(seen)
        rows: list[list[str]] = []
        emitted: set[tuple] = set()
        for solution in solutions:
            row = tuple(solution[v].n3() for v in variables)
            if row not in emitted:
                emitted.add(row)
                rows.append(list(row))
            if len(rows) >= limit:
                break
        solved = time.perf_counter()
        self._note_slow(
            "/select",
            started,
            query,
            params,
            {
                "parse_ms": round((parsed - started) * 1000.0, 3),
                "solve_ms": round((solved - parsed) * 1000.0, 3),
            },
            graph,
            patterns,
        )
        self._send_json(
            {
                "revision": revision,
                "variables": [v.name for v in variables],
                "rows": rows,
            }
        )

    def _ep_ask(self) -> None:
        started = time.perf_counter()
        params = self._params()
        query = self._one(params, "query", required=True)
        patterns = parse_patterns(query)
        graph, revision = self._graph_at(params)
        parsed = time.perf_counter()
        result = ask(graph, patterns)
        self._note_slow(
            "/ask",
            started,
            query,
            params,
            {
                "parse_ms": round((parsed - started) * 1000.0, 3),
                "solve_ms": round((time.perf_counter() - parsed) * 1000.0, 3),
            },
            graph,
            patterns,
        )
        self._send_json({"revision": revision, "result": result})

    def _ep_construct(self) -> None:
        started = time.perf_counter()
        params = self._params()
        query = self._one(params, "query", required=True)
        template = parse_patterns(self._one(params, "template", required=True))
        patterns = parse_patterns(query)
        graph, revision = self._graph_at(params)
        limit = self._limit(params)
        parsed = time.perf_counter()
        try:
            triples = construct(graph, template, patterns)[:limit]
        except ValueError as error:  # template variable the body never binds
            raise _BadRequest(str(error))
        self._note_slow(
            "/construct",
            started,
            query,
            params,
            {
                "parse_ms": round((parsed - started) * 1000.0, 3),
                "solve_ms": round((time.perf_counter() - parsed) * 1000.0, 3),
            },
            graph,
            patterns,
        )
        self._send_json(
            {
                "revision": revision,
                "count": len(triples),
                "triples": [render_triple(t) for t in triples],
            }
        )

    def _ep_triples(self) -> None:
        params = self._params()
        graph, revision = self._graph_at(params)
        limit = self._limit(params)
        terms = []
        for name in ("s", "p", "o"):
            raw = self._one(params, name)
            terms.append(None if raw is None else parse_term(raw))
        matches = []
        for triple in graph.triples(*terms):
            matches.append(render_triple(triple))
            if len(matches) >= limit:
                break
        self._send_json(
            {"revision": revision, "count": len(matches), "triples": matches}
        )

    def _ep_stats(self) -> None:
        params = self._params()
        tenant = self._one(params, "tenant")
        if tenant is not None:
            manager = self._tenant_manager()
            self._send_json({"tenant": tenant, **manager.tenant_stats(tenant)})
            return
        stats = self.service.stats()
        if self.server.tenants is not None:
            # Aggregates only: per-tenant detail via /stats?tenant=.
            stats["tenancy"] = self.server.tenants.summary()
        self._send_json(stats)

    def _ep_healthz(self) -> None:
        """Liveness only: a catching-up follower is alive but not ready."""
        service = self.service
        body = {
            "ok": True,
            "revision": service.revision,
            "role": service.role,
            "replication_lag_revisions": service.replication_lag,
        }
        cluster = service.sharding
        if cluster is not None:
            body["sharding"] = {
                "shards": cluster["shards"],
                "revision_vector": cluster["revision_vector"],
                "forwards": cluster["forwards"],
                "queue_depth": service.writes.stats()["queued"],
            }
        if self.server.tenants is not None:
            # Aggregate write-queue saturation: 1.0 means the worst
            # tenant's next submit takes a 429 — scrape this before the
            # rejections start, not after.
            body["tenancy"] = self.server.tenants.writes.saturation()
        self._send_json(body)

    def _ep_readyz(self) -> None:
        """Readiness: 503 while a replica recovers / catches up.

        Load balancers poll this to hold a node out of rotation until it
        serves current data; liveness stays on ``/healthz``.
        """
        service = self.service
        ready = service.ready
        self._send_json(
            {
                "ready": ready,
                "role": service.role,
                "revision": service.revision,
                "replication_lag_revisions": service.replication_lag,
            },
            status=200 if ready else 503,
        )

    # --- write endpoint -----------------------------------------------------
    def _ep_apply(self) -> None:
        service = self.service
        if service.role == "follower":
            # Replicas are read-only; the delta pipeline lives on the
            # leader.  With a known leader the client is redirected with
            # 307 (method + body preserved); otherwise refused.
            if service.leader_url:
                body = json.dumps(
                    {"error": "this node is a read replica", "leader": service.leader_url}
                ).encode("utf-8")
                self.send_response(307)
                self.send_header("Location", f"{service.leader_url}/apply")
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_error_json(
                    403, "this node is a read replica and accepts no writes"
                )
            return
        if not self._body:
            raise _BadRequest("POST /apply requires a JSON body")
        try:
            body = json.loads(self._body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise _BadRequest("body must be a JSON object")
        assertions = parse_statements(_as_list(body, "assert"))
        retractions = parse_statements(_as_list(body, "retract"))
        if not assertions and not retractions:
            raise _BadRequest('body must carry "assert" and/or "retract" statements')
        timeout = body.get("timeout", 30.0)
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise _BadRequest('"timeout" must be a positive number of seconds')
        tenant = body.get("tenant") or self._one(self._params(), "tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise _BadRequest('"tenant" must be a string')
        try:
            if tenant is not None:
                # Tenant admission (404/413/429) surfaces via _dispatch.
                result = self._tenant_manager().apply(
                    tenant,
                    assertions,
                    retractions,
                    timeout=timeout,
                    trace_id=self._trace_id,
                )
            else:
                result = self.service.apply(
                    assertions, retractions, timeout=timeout, trace_id=self._trace_id
                )
        except TimeoutError:
            self._send_error_json(504, "write was not committed in time")
            return
        payload = {
            "revision": result.revision,
            "coalesced": result.coalesced,
            "report": result.report.as_dict(),
        }
        if tenant is not None:
            payload["tenant"] = tenant
        self._send_json(payload)

    # --- tenancy endpoints --------------------------------------------------
    def _ep_tenants_list(self) -> None:
        """Registered tenants with their quotas (names stay sorted)."""
        manager = self._tenant_manager()
        tenants = [
            {
                "name": name,
                "graph": f"urn:tenant:{name}",
                "quota": manager.registry.quota(name).as_dict(),
            }
            for name in manager.tenants()
        ]
        self._send_json({"count": len(tenants), "tenants": tenants})

    def _ep_tenants_register(self) -> None:
        """Register (or re-quota) a tenant: ``{"name": ..., "quota": {...}}``."""
        manager = self._tenant_manager()
        if not self._body:
            raise _BadRequest('POST /tenants requires a JSON body with "name"')
        try:
            body = json.loads(self._body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"body is not valid JSON: {error}")
        if not isinstance(body, dict) or not isinstance(body.get("name"), str):
            raise _BadRequest('body must be a JSON object with a string "name"')
        quota_spec = body.get("quota")
        quota = None
        if quota_spec is not None:
            if not isinstance(quota_spec, dict):
                raise _BadRequest('"quota" must be a JSON object')
            quota = TenantQuota.from_dict(quota_spec)
        known = body["name"] in manager.registry
        effective = manager.register(body["name"], quota)
        self._send_json(
            {
                "name": body["name"],
                "graph": f"urn:tenant:{body['name']}",
                "quota": effective.as_dict(),
            },
            status=200 if known else 201,
        )

    def _ep_tenants_remove(self) -> None:
        """Unregister ``?name=`` (state directory survives on disk)."""
        manager = self._tenant_manager()
        name = self._one(self._params(), "name", required=True)
        manager.remove(name)
        self._send_json({"removed": name})

    # --- replication endpoints ----------------------------------------------
    def _ep_snapshot(self) -> None:
        """Replica bootstrap: the committed state as one binary image.

        ``?format=v1|v2`` picks the snapshot encoding (default: the
        engine's own); the response carries an ``ETag`` of the engine
        revision, and an ``If-None-Match`` hit answers 304 with no body
        — a follower re-bootstrapping after WAL compaction reuses its
        cached image instead of downloading an identical one.
        """
        service = self.service
        params = self._params()
        fmt = self._one(params, "format")
        if fmt is not None and fmt not in ("v1", "v2"):
            raise _BadRequest(f"parameter 'format' must be 'v1' or 'v2', got {fmt!r}")
        # The engine revision, not the view registry's: replication
        # coordinates are engine revision ids (an explicit compaction
        # commits a flush revision the views never see).
        revision = service.reasoner.revision
        if self.headers.get("If-None-Match") == f'"{revision}"':
            self.send_response(304)
            self.send_header("ETag", f'"{revision}"')
            self.send_header("X-Slider-Revision", str(revision))
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        blob = service.snapshot_bytes(format=fmt)
        revision = service.reasoner.revision
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("ETag", f'"{revision}"')
        self.send_header("X-Slider-Revision", str(revision))
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _ep_feed(self) -> None:
        """SSE change feed: one ``commit`` event per committed revision.

        ``?from=N`` (or ``Last-Event-ID: N``) resumes after revision N;
        ``410`` when that revision was compacted away (the follower
        bootstraps from ``/snapshot`` instead); an in-stream ``gone``
        event signals the same mid-stream (slow consumer outrun by
        compaction).
        """
        service = self.service
        feed = service.feed
        if feed is None:
            self._send_error_json(
                404, "this node has no change feed (replication not enabled)"
            )
            return
        params = self._params()
        cursor = self._int(params, "from")
        if cursor is None:
            raw = self.headers.get("Last-Event-ID")
            if raw is not None:
                try:
                    cursor = int(raw)
                except ValueError:
                    raise _BadRequest(f"Last-Event-ID must be an integer, got {raw!r}")
        if cursor is None:
            cursor = feed.latest_revision  # tail-only consumer
        feed.check_resumable(cursor)  # may raise 410 pre-headers; no WAL read
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        self._sse_event(
            "hello",
            {
                # The feed's watermark — the engine revision counter,
                # advanced on every commit (the view registry can trail
                # it by trailing empty revisions, e.g. an explicit
                # compaction's flush; followers measure catch-up against
                # the counter, not the views).
                "revision": feed.latest_revision,
                "from": cursor,
                "fragment": feed.fragment,
                "role": service.role,
                "oldest_resumable": feed.oldest_resumable(),
            },
        )
        while not (service.closed or feed.closed):
            try:
                records, watermark = feed.wait(
                    cursor, timeout=self.server.sse_heartbeat
                )
            except RevisionGoneError as error:
                self._sse_event("gone", {"error": str(error)})
                break
            for record in records:
                self._sse_raw("commit", record.encode(), event_id=record.revision)
                cursor = record.revision
            if watermark > cursor:
                # Revisions in (cursor, watermark] were empty commits:
                # nothing to replay, but the follower's lag/readiness
                # tracks the leader's revision counter through them.
                self._sse_event(
                    "watermark", {"revision": watermark}, event_id=watermark
                )
                cursor = watermark
            elif not records:
                if service.closed or feed.closed:
                    break
                self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()

    # --- observability endpoints --------------------------------------------
    def _ep_metrics(self) -> None:
        """Prometheus text exposition (format 0.0.4) of every layer."""
        body = _obs.REGISTRY.expose().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _ep_debug_traces(self) -> None:
        """Recent spans as JSON lines; ``?trace_id=`` narrows to one trace."""
        params = self._params()
        trace_id = self._one(params, "trace_id")
        limit = self._int(params, "limit")
        if limit is not None and limit < 1:
            raise _BadRequest(f"parameter 'limit' must be >= 1, got {limit}")
        body = TRACER.ring.to_jsonl(trace_id=trace_id, limit=limit).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # --- SSE ----------------------------------------------------------------
    def _ep_subscribe(self) -> None:
        params = self._params()
        patterns = parse_patterns(self._one(params, "query", required=True))
        last_seen = self._int(params, "from")
        if last_seen is None:
            raw = self.headers.get("Last-Event-ID")
            if raw is not None:
                try:
                    last_seen = int(raw)
                except ValueError:
                    raise _BadRequest(f"Last-Event-ID must be an integer, got {raw!r}")
        # Reconnect replay: solutions at the client's last-seen revision
        # come from the retained view ring — 410 (before any SSE bytes)
        # when it was evicted, exactly like ``at=N`` reads — so a client
        # that drops mid-stream never silently skips binding deltas.
        tenant = self._one(params, "tenant")
        replay_from = None
        if last_seen is not None:
            source = (
                self._tenant_manager().view_graph(tenant, last_seen)
                if tenant is not None
                else self.service.graph(last_seen)
            )
            replay_from = {frozenset(s.items()): s for s in solve(source, patterns)}
        if tenant is not None:
            # Tenant-scoped stream: the channel rides the tenant's own
            # engine and counts against its standing-query quota.
            channel = self._tenant_manager().subscribe_channel(tenant, patterns)
        else:
            channel = self.service.subscribe_channel(patterns)
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            current = channel.initial_solutions()
            self._sse_event(
                "hello",
                {
                    "revision": channel.seeded_revision,
                    "solutions": len(current),
                },
                event_id=channel.seeded_revision,
            )
            if replay_from is not None:
                now = {frozenset(s.items()): s for s in current}
                added = [s for key, s in now.items() if key not in replay_from]
                removed = [s for key, s in replay_from.items() if key not in now]
                if added or removed:
                    # One coalesced delta covering (last_seen, seeded].
                    self._sse_event(
                        "delta",
                        {
                            "revision": channel.seeded_revision,
                            "replayed_from": last_seen,
                            "added": [render_binding(b) for b in added],
                            "removed": [render_binding(b) for b in removed],
                        },
                        event_id=channel.seeded_revision,
                    )
            while not (channel.closed or self.service.closed):
                event = channel.get(timeout=self.server.sse_heartbeat)
                if event is None:
                    if channel.closed or self.service.closed:
                        break
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                self._sse_event(
                    "delta",
                    {
                        "revision": event.revision,
                        "added": [render_binding(b) for b in event.added],
                        "removed": [render_binding(b) for b in event.removed],
                    },
                    event_id=event.revision,
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away: normal stream end
        finally:
            channel.close()

    def _sse_event(self, event: str, payload: dict, event_id=None) -> None:
        self._sse_raw(event, json.dumps(payload), event_id=event_id)

    def _sse_raw(self, event: str, data: str, event_id=None) -> None:
        head = f"id: {event_id}\n" if event_id is not None else ""
        body = "".join(f"data: {line}\n" for line in data.split("\n"))
        self.wfile.write(f"{head}event: {event}\n{body}\n".encode("utf-8"))
        self.wfile.flush()


def _as_list(body: dict, key: str) -> list:
    value = body.get(key, [])
    if not isinstance(value, list):
        raise _BadRequest(f'"{key}" must be a JSON array of N-Triples statements')
    return value


_GET_ROUTES = {
    "/select": _Handler._ep_select,
    "/ask": _Handler._ep_ask,
    "/construct": _Handler._ep_construct,
    "/triples": _Handler._ep_triples,
    "/stats": _Handler._ep_stats,
    "/healthz": _Handler._ep_healthz,
    "/readyz": _Handler._ep_readyz,
    "/subscribe": _Handler._ep_subscribe,
    "/feed": _Handler._ep_feed,
    "/snapshot": _Handler._ep_snapshot,
    "/metrics": _Handler._ep_metrics,
    "/debug/traces": _Handler._ep_debug_traces,
    "/tenants": _Handler._ep_tenants_list,
}

_POST_ROUTES = {
    "/apply": _Handler._ep_apply,
    "/tenants": _Handler._ep_tenants_register,
}

_DELETE_ROUTES = {
    "/tenants": _Handler._ep_tenants_remove,
}

#: Every routable path, for the request metrics' ``endpoint`` label —
#: anything else is folded into ``__unknown__`` so path scanners cannot
#: mint unbounded label sets.
_KNOWN_ROUTES = frozenset(_GET_ROUTES) | frozenset(_POST_ROUTES) | frozenset(
    _DELETE_ROUTES
)

#: Scrape endpoints are metered but not traced: a 15 s Prometheus scrape
#: interval would otherwise evict every span it exists to serve.
_UNTRACED_ROUTES = frozenset({"/metrics", "/debug/traces"})


class ReasoningHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ReasoningService`.

    One thread per connection (SSE streams hold theirs for their whole
    lifetime); ``daemon_threads`` so stuck clients never block process
    exit.  The server does **not** own the service — callers close the
    service after :meth:`shutdown` so in-flight writes drain first.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ReasoningService | None = None,
        verbose: bool = False,
        sse_heartbeat: float = SSE_HEARTBEAT_SECONDS,
        service_provider=None,
        max_body_bytes: int = MAX_BODY_BYTES,
        tenants=None,
        slow_query_seconds: float = 0.25,
    ):
        if (service is None) == (service_provider is None):
            raise ValueError("pass exactly one of service / service_provider")
        super().__init__(address, _Handler)
        # A provider re-resolves per request: a follower swaps its
        # service atomically when it re-bootstraps from a fresh snapshot.
        self._service_provider = (
            service_provider if service_provider is not None else (lambda: service)
        )
        self.verbose = verbose
        self.sse_heartbeat = sse_heartbeat
        self.max_body_bytes = max_body_bytes
        #: Optional :class:`~repro.tenancy.TenantManager` — enables the
        #: ``?tenant=`` routing and the ``/tenants`` endpoints.  Like
        #: the service, the server does not own it: callers close the
        #: manager after ``shutdown()``.
        self.tenants = tenants
        #: Queries slower than this are logged with their breakdown and
        #: plan; ``<= 0`` disables the log.
        self.slow_queries = SlowQueryLog(threshold_seconds=slow_query_seconds)

    @property
    def service(self) -> ReasoningService:
        """The service handlers dispatch to (may change on re-bootstrap)."""
        return self._service_provider()

    @property
    def port(self) -> int:
        """The bound port (useful with ephemeral ``port=0`` binds)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """The server's base URL, e.g. ``http://127.0.0.1:8080``."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def serve(
    service: ReasoningService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    tenants=None,
    slow_query_seconds: float = 0.25,
) -> tuple[ReasoningHTTPServer, threading.Thread]:
    """Bind and start serving on a background thread.

    Returns ``(server, thread)``; callers stop with ``server.shutdown()``
    then ``service.close()`` (and ``tenants.close()`` in tenancy mode).
    ``port=0`` binds an ephemeral port (``server.port`` has the real
    one); ``tenants`` enables multi-tenant routing;
    ``slow_query_seconds`` sets the slow-query log threshold.
    """
    server = ReasoningHTTPServer(
        (host, port),
        service,
        verbose=verbose,
        tenants=tenants,
        slow_query_seconds=slow_query_seconds,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="slider-http", daemon=True
    )
    thread.start()
    return server, thread
