"""The concurrent reasoning service: one engine, many readers and writers.

:class:`ReasoningService` is the transport-independent core of the
serving layer (the HTTP front end in :mod:`repro.server.http` is a thin
skin over it; tests and embedders drive it directly):

* **reads** are snapshot-isolated — every query runs against a pinned
  :class:`~repro.server.views.ReadView` (see that module), so readers
  observe exactly one committed revision, never an in-flight apply, and
  never block the write path;
* **writes** funnel through a :class:`~repro.server.views` -advancing
  :class:`~repro.server.coalescer.WriteCoalescer` — concurrent ``apply``
  calls are netted into one Delta per drain tick and committed through
  the engine's transactional pipeline; each caller gets the shared
  revision's :class:`~repro.reasoner.delta.InferenceReport`;
* **subscriptions** bridge the engine's standing BGPs to pull-style
  consumers: :meth:`subscribe_channel` queues each revision's binding
  delta for one client (the SSE endpoint drains one channel per
  connection).

Read-your-writes holds: the read views advance *before* a write's
``wait()`` returns, so a client that committed revision N can
immediately query ``at=N`` (or the current view, which is >= N).

With ``persist_dir`` the engine journals every commit; :meth:`close`
drains the write queue and flushes the WAL, so a SIGTERM'd service
leaves a recoverable directory (surfaced in :meth:`stats` after
restart).
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..obs import process_rss_bytes
from ..rdf.terms import Triple
from ..reasoner.delta import Delta, InferenceReport
from ..reasoner.engine import Slider
from ..reasoner.subscription import Subscription, SubscriptionEvent
from ..store.graph import Graph
from ..store.query import TriplePattern
from .coalescer import CommitResult, PendingWrite, WriteCoalescer
from .views import ReadView, ViewRegistry

__all__ = ["ReasoningService", "SubscriptionChannel", "ServiceClosedError"]


class ServiceClosedError(RuntimeError):
    """The service has been shut down."""


#: Sentinel a channel queue delivers when the stream ends.
_CHANNEL_CLOSED = object()

#: Events a subscription channel may buffer before its consumer is
#: declared too slow and disconnected (an unbounded queue would let one
#: stalled SSE client grow memory without limit under sustained writes).
SUBSCRIPTION_QUEUE_LIMIT = 1024


class SubscriptionChannel:
    """One client's queue of :class:`SubscriptionEvent` binding deltas.

    The engine pushes events from the committing thread; the consumer
    pops them with :meth:`get` at its own pace.  ``None`` from
    :meth:`get` means "no event within the timeout" (emit a heartbeat
    and keep waiting); :attr:`closed` turning true means the stream
    ended (client cancel or service shutdown).
    """

    def __init__(self, subscription: Subscription, events: "queue.Queue"):
        self.subscription = subscription
        self._queue = events
        self.closed = False

    @property
    def seeded_revision(self) -> int:
        """The revision :meth:`initial_solutions` was materialized at
        (recorded by the engine under the commit lock, so the pair is
        consistent even with commits racing the registration)."""
        return self.subscription.seeded_revision

    def get(self, timeout: float | None = None) -> SubscriptionEvent | None:
        """Next event, ``None`` on timeout; raises nothing on close (the
        caller observes :attr:`closed`)."""
        if self.closed and self._queue.empty():
            return None
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _CHANNEL_CLOSED:
            self.closed = True
            return None
        return item

    def close(self) -> None:
        """Cancel the underlying subscription and end the stream.

        Never blocks (it is also called from the committing thread when
        a consumer falls too far behind): the sentinel is best-effort,
        :attr:`closed` is authoritative.
        """
        if not self.closed:
            self.subscription.cancel()
            self.closed = True
            try:
                self._queue.put_nowait(_CHANNEL_CLOSED)
            except queue.Full:
                pass  # consumer sees `closed` at its next poll

    def initial_solutions(self) -> list[dict]:
        """The solution set materialized at registration time."""
        return self.subscription.solutions


class ReasoningService:
    """Concurrency front end over one :class:`~repro.reasoner.engine.Slider`.

    Parameters mirror ``Slider`` (``fragment``, ``store``, ``workers``,
    ``persist_dir``, ...) and are forwarded; alternatively pass a
    pre-built engine as ``reasoner`` (the service takes ownership and
    closes it).  ``coalesce_tick`` is the write-batching window in
    seconds; ``retain_views`` is how many recent revisions stay pinnable
    via ``view(at=...)``.

    ``shards > 1`` builds a partitioned
    :class:`~repro.sharding.cluster.ShardedReasoner` instead of a
    single engine and installs the partition-aware
    :class:`~repro.sharding.coalescer.ShardedCoalescer`, so each drain
    tick's submissions commit as concurrent per-shard sub-deltas (one
    global revision).  The read/subscription surface is unchanged — the
    cluster duck-types the engine.  ``router`` picks the partition key
    (``"subject"`` or ``"predicate"``); it is ignored for ``shards=1``.
    A pre-built :class:`ShardedReasoner` may equally be passed as
    ``reasoner``.
    """

    def __init__(
        self,
        reasoner: Slider | None = None,
        coalesce_tick: float = 0.002,
        retain_views: int = 8,
        role: str = "leader",
        quiesce: bool = True,
        shards: int = 1,
        router: str = "subject",
        **slider_options,
    ):
        if reasoner is not None and slider_options:
            raise ValueError(
                "pass either a pre-built reasoner or Slider options, not both"
            )
        if reasoner is not None and shards != 1:
            raise ValueError(
                "pass either a pre-built reasoner or shards, not both"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if role not in ("leader", "follower"):
            raise ValueError(f"role must be 'leader' or 'follower', got {role!r}")
        if reasoner is None:
            if shards > 1:
                # Deferred import: repro.sharding pulls in this package's
                # coalescer, so a module-level import would be circular.
                from ..sharding import ShardedReasoner

                reasoner = ShardedReasoner(
                    shards=shards, router=router, **slider_options
                )
            else:
                reasoner = Slider(**slider_options)
        self.reasoner = reasoner
        self._closed = False
        self._lock = threading.Lock()
        #: Unix time this service came up; feeds ``stats()``'s
        #: ``uptime_seconds``.
        self.started_at = time.time()
        self._channels: list[SubscriptionChannel] = []
        #: ``"leader"`` (accepts writes) or ``"follower"`` (read replica
        #: — the HTTP layer rejects/forwards ``/apply``).
        self.role = role
        #: The leader's base URL (followers; used for 307 forwarding).
        self.leader_url: str | None = None
        #: Live :class:`~repro.replication.follower.ReplicationStatus`
        #: on followers; ``None`` on leaders/standalone nodes.
        self.replication = None
        #: The attached :class:`~repro.replication.feed.ChangeFeed`
        #: (nodes that can be followed), or ``None``.
        self.feed = None
        # Quiesce before the first view: axioms (and any preloaded data)
        # must be part of the initial image, recovery replay is already
        # complete by construction.  Replicas skip the flush — their
        # engine is settled by the follower and must not consume a
        # revision id of its own (ids belong to the leader).
        if quiesce:
            self.reasoner.flush()
        self.views = ViewRegistry(
            ReadView.from_store(self.reasoner.revision, self.reasoner.store),
            retain=retain_views,
        )
        if hasattr(self.reasoner, "apply_many"):
            from ..sharding import ShardedCoalescer

            self.writes: WriteCoalescer = ShardedCoalescer(
                self._commit_many, tick=coalesce_tick
            )
        else:
            self.writes = WriteCoalescer(self._commit, tick=coalesce_tick)

    # --- write path ---------------------------------------------------------
    def _commit(self, delta: Delta) -> InferenceReport:
        """Drain-thread hook: engine commit, then view publication."""
        report = self.reasoner.apply(delta)
        self.views.advance(report)
        return report

    def _commit_many(self, deltas: Sequence[Delta]) -> InferenceReport:
        """Sharded drain-thread hook: the batch commits per-partition
        in parallel but lands as one global revision/report."""
        report = self.reasoner.apply_many(deltas)
        self.views.advance(report)
        return report

    def apply(
        self,
        assertions: Iterable[Triple] | Triple = (),
        retractions: Iterable[Triple] | Triple = (),
        timeout: float | None = 30.0,
        trace_id: str | None = None,
    ) -> CommitResult:
        """Commit a write batch (coalesced); blocks for its revision.

        Returns the :class:`~repro.server.coalescer.CommitResult` whose
        report covers the whole coalesced revision this write joined.
        ``trace_id`` rides into the shared commit span (see
        :mod:`repro.obs.tracing`).
        """
        self._check_open()
        return self.writes.apply(
            assertions, retractions, timeout=timeout, trace_id=trace_id
        )

    def submit(
        self,
        assertions: Iterable[Triple] | Triple = (),
        retractions: Iterable[Triple] | Triple = (),
        trace_id: str | None = None,
    ) -> PendingWrite:
        """Queue a write without waiting (pipelined callers)."""
        self._check_open()
        return self.writes.submit(assertions, retractions, trace_id=trace_id)

    def commit_replicated(self, revision: int, delta: Delta) -> InferenceReport:
        """Commit one leader revision on a replica (bypasses coalescing).

        The follower's single-threaded tail calls this for each feed
        record: the engine commits under the leader's exact revision id
        (:meth:`~repro.reasoner.engine.Slider.apply_at`) and the read
        views advance, so ``at=N`` pins, subscriptions and stats behave
        identically to the leader's.
        """
        self._check_open()
        report = self.reasoner.apply_at(revision, delta)
        self.views.advance(report)
        return report

    # --- replication wiring -------------------------------------------------
    def attach_feed(self, feed) -> None:
        """Install the node's outgoing change feed (``GET /feed``)."""
        self.feed = feed

    @property
    def ready(self) -> bool:
        """Readiness (``/readyz``): leaders are ready once constructed
        (recovery happens in ``__init__``); followers once caught up."""
        if self._closed:
            return False
        if self.replication is not None:
            return bool(self.replication.ready)
        return True

    @property
    def replication_lag(self) -> int:
        """Revisions behind the leader (0 on leaders/standalone)."""
        if self.replication is not None:
            return self.replication.lag
        return 0

    # --- read path ----------------------------------------------------------
    def view(self, at: int | None = None) -> ReadView:
        """A snapshot view: the current revision, or pinned ``at`` one.

        Raises :class:`~repro.server.views.RevisionGoneError` when the
        pinned revision has left the retention ring.
        """
        self._check_open()
        if at is None:
            return self.views.current()
        return self.views.at(at)

    def graph(self, at: int | None = None) -> Graph:
        """A term-level :class:`Graph` over a snapshot view.

        The graph shares the engine's dictionary (term ids only grow,
        so decoding against a historical view is always safe) but its
        store is the immutable view — BGP evaluation, pattern matching
        and serialization all run without touching the live store.
        """
        return Graph(self.reasoner.dictionary, self.view(at))

    # --- subscriptions ------------------------------------------------------
    def subscribe(
        self,
        patterns: Sequence[TriplePattern],
        callback: Callable[[SubscriptionEvent], None] | None = None,
    ) -> Subscription:
        """Engine-level subscription passthrough (in-process consumers)."""
        self._check_open()
        return self.reasoner.subscribe(patterns, callback)

    def subscribe_channel(
        self, patterns: Sequence[TriplePattern]
    ) -> SubscriptionChannel:
        """A queue-backed subscription for one streaming client.

        The queue is bounded: a consumer that falls
        :data:`SUBSCRIPTION_QUEUE_LIMIT` events behind is disconnected
        (subscription cancelled, channel closed) rather than allowed to
        buffer the write stream without limit.
        """
        self._check_open()
        # The queue and cell exist before the subscription so a commit
        # landing right after registration cannot race construction.
        events: "queue.Queue" = queue.Queue(maxsize=SUBSCRIPTION_QUEUE_LIMIT)
        cell: list[SubscriptionChannel] = []

        def push(event: SubscriptionEvent) -> None:
            try:
                events.put_nowait(event)
            except queue.Full:
                # Slow-consumer policy: drop the subscriber, never the
                # committing thread.  (The cell is filled before the
                # queue can possibly fill.)
                if cell:
                    cell[0].close()

        subscription = self.reasoner.subscribe(patterns, push)
        channel = SubscriptionChannel(subscription, events)
        cell.append(channel)
        with self._lock:
            self._channels.append(channel)
            self._channels = [c for c in self._channels if not c.closed]
        return channel

    # --- inspection ---------------------------------------------------------
    @property
    def revision(self) -> int:
        """The latest published (readable) revision."""
        return self.views.current().revision

    @property
    def persist_dir(self) -> Path | None:
        """The engine's durable state directory (``None`` when in-memory)."""
        return self.reasoner.persist_dir

    def snapshot_bytes(self, format: str | None = None) -> bytes:
        """The committed state as one snapshot blob (replica bootstrap).

        ``format`` picks the encoding (``"v1"`` / ``"v2"``); ``None``
        uses the engine's configured snapshot format.
        """
        self._check_open()
        return self.reasoner.snapshot_bytes(format=format)

    @property
    def sharding(self) -> dict | None:
        """The cluster's topology/counter block, ``None`` on single-node."""
        cluster_stats = getattr(self.reasoner, "cluster_stats", None)
        if cluster_stats is None:
            return None
        return cluster_stats()

    def stats(self) -> dict:
        """One JSON-ready dict: consistency state, engine, writes, views."""
        self._check_open()
        view = self.views.current()
        reasoner = self.reasoner
        recovery = reasoner.recovery
        return {
            "revision": view.revision,
            "role": self.role,
            "ready": self.ready,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "process": {
                "rss_bytes": process_rss_bytes(),
                "started_at": round(self.started_at, 3),
            },
            "sharding": self.sharding,
            "replication": (
                None if self.replication is None else self.replication.as_dict()
            ),
            "feed": None if self.feed is None else self.feed.stats(),
            "triples": len(view),
            "engine": {
                "fragment": reasoner.fragment.name,
                "rules": len(reasoner.rules),
                "workers": reasoner.workers,
                "revision": reasoner.revision,
                "input": reasoner.input_count,
                "inferred": reasoner.inferred_count,
                "store": reasoner.store.stats(),
            },
            "views": {
                "retained": self.views.revisions(),
                "current": view.revision,
                "predicates": view.stats()["predicates"],
            },
            "writes": self.writes.stats(),
            "subscriptions": sum(
                1 for channel in self._channels if not channel.closed
            ),
            "persist": (
                None
                if reasoner.persist_dir is None
                else {"dir": str(reasoner.persist_dir)}
            ),
            "recovery": None if recovery is None else recovery.as_dict(),
        }

    # --- lifecycle ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True after :meth:`close`; further calls raise ``ServiceClosed``."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("reasoning service is closed")

    def close(self) -> None:
        """Drain queued writes, end streams, flush + close the engine.

        Clean-shutdown contract: every write accepted before ``close``
        is committed (and journaled, when durable) before this returns —
        a SIGTERM'd durable service leaves a directory that recovers to
        its exact final revision.
        """
        if self._closed:
            return
        self._closed = True
        self.writes.close()
        if self.feed is not None:
            self.feed.close()
        with self._lock:
            channels, self._channels = self._channels, []
        for channel in channels:
            channel.close()
        self.reasoner.close()

    def __enter__(self) -> "ReasoningService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self):
        state = "closed" if self._closed else f"revision={self.revision}"
        return f"<ReasoningService {state} engine={self.reasoner!r}>"
