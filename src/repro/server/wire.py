"""Wire formats of the reasoning service: pattern text and JSON terms.

Queries travel as one string in an N-Triples-derived syntax — the
N-Triples grammar (IRIs in angle brackets, ``_:`` blank nodes, quoted
literals with ``@lang`` / ``^^<datatype>``) extended with SPARQL-style
``?variables`` in any position, patterns separated by ``.``:

    ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Animal> .
    ?owner <http://ex/hasPet> ?x

The parser reuses the library's N-Triples term parsers, so escaping
rules, error positions and term validation match file ingestion exactly.

Responses speak JSON; terms are rendered in the same N-Triples syntax
(``term.n3()``), so a client can round-trip any response value straight
back into a query or an ``/apply`` body.
"""

from __future__ import annotations

import re

from ..rdf.ntriples import NTriplesError, _LineParser
from ..rdf.terms import Term, Triple, Variable
from ..store.query import Binding, TriplePattern

__all__ = [
    "PatternSyntaxError",
    "parse_patterns",
    "parse_term",
    "parse_statements",
    "render_term",
    "render_binding",
    "render_triple",
]

_VARIABLE_RE = re.compile(r"\?[A-Za-z_][A-Za-z0-9_]*")


class PatternSyntaxError(ValueError):
    """Malformed pattern / term text in a request."""


class _PatternParser(_LineParser):
    """The N-Triples line parser, extended with ``?variable`` terms."""

    def parse_pattern_term(self, role: str):
        if self.peek() == "?":
            match = _VARIABLE_RE.match(self.line, self.pos)
            if not match:
                raise self.error(f"invalid variable name as {role}")
            self.pos = match.end()
            return Variable(match.group()[1:])
        if role == "predicate":
            return self.parse_iri(role)
        if role == "object":
            return self.parse_object()
        return self.parse_subject()

    def parse_all_patterns(self) -> list[TriplePattern]:
        patterns: list[TriplePattern] = []
        while True:
            self.skip_whitespace()
            if self.at_end():
                break
            subject = self.parse_pattern_term("subject")
            self.skip_whitespace()
            predicate = self.parse_pattern_term("predicate")
            self.skip_whitespace()
            obj = self.parse_pattern_term("object")
            self.skip_whitespace()
            # '.' separates patterns; it is optional after the last one.
            if self.peek() == ".":
                self.pos += 1
            patterns.append((subject, predicate, obj))
        return patterns


def _flatten(text: str) -> str:
    """Queries may arrive multi-line; the term grammar is line-based."""
    return " ".join(text.split("\n"))


def parse_patterns(text: str) -> list[TriplePattern]:
    """Parse query text into a non-empty BGP (a list of triple patterns)."""
    if not text or not text.strip():
        raise PatternSyntaxError("empty query")
    try:
        patterns = _PatternParser(_flatten(text), 1).parse_all_patterns()
    except NTriplesError as error:
        raise PatternSyntaxError(str(error)) from error
    if not patterns:
        raise PatternSyntaxError("query contains no patterns")
    return patterns


def parse_term(text: str) -> Term:
    """Parse one concrete term (IRI / blank node / literal) in N-Triples
    syntax; used for the ``/triples`` pattern parameters."""
    parser = _PatternParser(_flatten(text), 1)
    try:
        parser.skip_whitespace()
        term = parser.parse_object()
        parser.skip_whitespace()
    except NTriplesError as error:
        raise PatternSyntaxError(str(error)) from error
    if not parser.at_end():
        raise PatternSyntaxError(f"unexpected trailing content in term: {text!r}")
    return term


def parse_statements(lines: list) -> list[Triple]:
    """Parse a JSON array of N-Triples statement strings (``/apply``)."""
    triples: list[Triple] = []
    for index, line in enumerate(lines):
        if not isinstance(line, str):
            raise PatternSyntaxError(
                f"statement {index} is not a string: {line!r}"
            )
        statement = line if line.rstrip().endswith(".") else line + " ."
        try:
            triple = _LineParser(_flatten(statement), index + 1).parse_triple()
        except NTriplesError as error:
            raise PatternSyntaxError(str(error)) from error
        if triple is not None:
            triples.append(triple)
    return triples


def render_term(term: Term) -> str:
    """A term as its N-Triples string (round-trips through the parsers)."""
    return term.n3()


def render_binding(binding: Binding) -> dict[str, str]:
    """A solution as ``{variable name: n3 term}`` (JSON-ready)."""
    return {variable.name: term.n3() for variable, term in binding.items()}


def render_triple(triple: Triple) -> str:
    """A triple as one N-Triples statement."""
    return triple.n3()
