"""The concurrent reasoning service: serve the closure over HTTP.

This package turns the in-process :class:`~repro.reasoner.engine.Slider`
into a system other processes can hit, with three load-bearing ideas:

* **snapshot-isolated reads** — immutable per-revision
  :class:`~repro.server.views.ReadView` images (copy-on-write from each
  revision's :class:`~repro.reasoner.delta.InferenceReport` diff), so
  any number of readers query committed state without locks and without
  ever observing an in-flight apply;
* **coalesced writes** — concurrent apply requests are netted into one
  :class:`~repro.reasoner.delta.Delta` per drain tick by the
  :class:`~repro.server.coalescer.WriteCoalescer` and committed through
  the engine's transactional pipeline, each caller receiving the shared
  revision's report;
* **streamed subscriptions** — standing BGPs exposed as Server-Sent
  Events (``GET /subscribe``), emitting the same binding-level deltas
  the in-process subscription API delivers.

Start one from Python::

    from repro.server import ReasoningService, serve

    service = ReasoningService(fragment="rdfs", store="sharded:8")
    server, thread = serve(service, port=8080)
    ...
    server.shutdown(); service.close()

or from the CLI: ``slider-reason serve --port 8080`` (see the README's
*Serving* section for the endpoint table and consistency model).
"""

from .coalescer import (
    CoalescerClosedError,
    CommitResult,
    PendingWrite,
    WriteCoalescer,
)
from .http import MAX_BODY_BYTES, ReasoningHTTPServer, serve
from .service import ReasoningService, ServiceClosedError, SubscriptionChannel
from .views import ReadView, RevisionGoneError, ViewRegistry
from .wire import PatternSyntaxError, parse_patterns, parse_statements, parse_term

__all__ = [
    "ReasoningService",
    "ReasoningHTTPServer",
    "serve",
    "MAX_BODY_BYTES",
    "ReadView",
    "ViewRegistry",
    "RevisionGoneError",
    "WriteCoalescer",
    "CommitResult",
    "PendingWrite",
    "CoalescerClosedError",
    "ServiceClosedError",
    "SubscriptionChannel",
    "PatternSyntaxError",
    "parse_patterns",
    "parse_statements",
    "parse_term",
]
