"""The coalescing write queue: many callers, one Delta per drain tick.

Every ``POST /apply`` costs a full commit — quiesce, fixpoint, change-log
snapshot, journal fsync when durable.  Under concurrent writers that
cost should be paid *per tick*, not per caller: the coalescer queues
submissions, nets them into one :class:`~repro.reasoner.delta.Delta`,
funnels that through the engine's ``apply()`` pipeline on a dedicated
drain thread, and resolves every waiter with the shared revision's
:class:`~repro.reasoner.delta.InferenceReport`.

Netting is **last-writer-wins in arrival order** — exactly the state a
sequential execution of the submissions would reach:

* a retraction cancels any earlier queued assertion of the same triple
  (and stands, in case the triple is already stored);
* an assertion cancels any earlier queued retraction and stands.

This is deliberately *not* ``Delta``'s symmetric cancellation: with
independent callers, "A asserted t, then B retracted t" must end with t
absent even if t predates the batch, so order decides.  Within one
submission the usual transactional semantics hold (its delta is
net-normalized on construction).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable

from ..obs import TRACER, instruments as _obs
from ..rdf.terms import Triple
from ..reasoner.delta import Delta, InferenceReport

__all__ = ["CommitResult", "PendingWrite", "WriteCoalescer", "CoalescerClosedError"]


class CoalescerClosedError(RuntimeError):
    """The write queue is shut down; no further submissions accepted."""


class CommitResult:
    """What one drained batch committed: shared by all its submitters."""

    __slots__ = ("revision", "report", "coalesced")

    def __init__(self, revision: int, report: InferenceReport, coalesced: int):
        self.revision = revision
        self.report = report
        #: How many submissions were netted into this revision.
        self.coalesced = coalesced

    def __repr__(self):
        return f"<CommitResult revision={self.revision} coalesced={self.coalesced}>"


class PendingWrite:
    """A queued submission; :meth:`wait` blocks until its commit lands."""

    __slots__ = ("delta", "trace_id", "_event", "_result", "_error")

    def __init__(self, delta: Delta, trace_id: str | None = None):
        self.delta = delta
        #: Client trace id riding this write into its coalesced commit
        #: span (minted/honored at the HTTP edge; may be ``None``).
        self.trace_id = trace_id
        self._event = threading.Event()
        self._result: CommitResult | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """True once the write committed or failed (``wait`` won't block)."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> CommitResult:
        """Block until the commit containing this write completes."""
        if self._event.is_set():
            waited = False
        else:
            waited = True
            _obs.COALESCER_WAITERS.inc()
        try:
            if not self._event.wait(timeout):
                raise TimeoutError("write was not committed in time")
        finally:
            if waited:
                _obs.COALESCER_WAITERS.dec()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: CommitResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class WriteCoalescer:
    """Single-drainer write queue in front of an ``apply()`` pipeline.

    ``apply_fn`` is called with the netted :class:`Delta` of each drained
    batch and must return the committed revision's report — the service
    passes a closure that also advances the read views before waiters
    resume, so a caller can immediately read its own write.

    ``tick`` is the coalescing window: after waking on the first queued
    submission the drainer sleeps this long so a burst can pile up.
    """

    def __init__(
        self,
        apply_fn: Callable[[Delta], InferenceReport],
        tick: float = 0.002,
    ):
        if tick < 0:
            raise ValueError(f"tick must be >= 0, got {tick}")
        self._apply = apply_fn
        self._tick = tick
        self._queue: list[PendingWrite] = []
        self._cond = threading.Condition()
        self._closed = False
        self._paused = False
        # Statistics (drain-thread writes, reader races are benign).
        self.commits = 0
        self.submitted = 0
        self.failed = 0
        self.max_coalesced = 0
        self._drainer = threading.Thread(
            target=self._drain_loop, name="slider-write-coalescer", daemon=True
        )
        self._drainer.start()

    # --- submission ---------------------------------------------------------
    def submit(
        self,
        assertions: Iterable[Triple] | Triple = (),
        retractions: Iterable[Triple] | Triple = (),
        trace_id: str | None = None,
    ) -> PendingWrite:
        """Queue one write; returns immediately with its pending handle."""
        delta = Delta(assertions, retractions)
        pending = PendingWrite(delta, trace_id)
        with self._cond:
            if self._closed:
                raise CoalescerClosedError("write queue is closed")
            self._queue.append(pending)
            self.submitted += 1
            _obs.COALESCER_SUBMITTED.inc()
            _obs.COALESCER_QUEUE_DEPTH.set(len(self._queue))
            self._cond.notify_all()
        return pending

    def apply(
        self,
        assertions: Iterable[Triple] | Triple = (),
        retractions: Iterable[Triple] | Triple = (),
        timeout: float | None = 30.0,
        trace_id: str | None = None,
    ) -> CommitResult:
        """Submit and wait: the blocking convenience most callers want."""
        return self.submit(assertions, retractions, trace_id=trace_id).wait(timeout)

    # --- test/ops hooks -----------------------------------------------------
    @contextlib.contextmanager
    def paused(self):
        """Hold the drain loop; queued writes coalesce until release.

        Deterministic coalescing for tests and for operational batching
        (e.g. pause during a bulk load, resume for one big commit).
        """
        with self._cond:
            self._paused = True
        try:
            yield self
        finally:
            with self._cond:
                self._paused = False
                self._cond.notify_all()

    def stats(self) -> dict[str, int | float]:
        """Queue counters (submitted/commits/failed/queued) for ``/stats``."""
        return {
            "submitted": self.submitted,
            "commits": self.commits,
            "failed": self.failed,
            "max_coalesced": self.max_coalesced,
            "queued": len(self._queue),
            "tick_seconds": self._tick,
        }

    # --- lifecycle ----------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting writes, drain what is queued, join the drainer."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._paused = False
            self._cond.notify_all()
        self._drainer.join(timeout)

    # --- drain loop ---------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (not self._queue or self._paused):
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                draining_on_close = self._closed
            if self._tick and not draining_on_close:
                # The coalescing window: let a burst accumulate.  Closing
                # skips it — shutdown drains immediately.
                threading.Event().wait(self._tick)
            with self._cond:
                # A pause can begin while the tick sleep runs; draining
                # anyway would split the paused caller's batch across two
                # commits and break arrival-order coalescing.  Hold here
                # until resumed (or closing, which must drain).
                while not self._closed and self._paused:
                    self._cond.wait()
                batch, self._queue = self._queue, []
                _obs.COALESCER_QUEUE_DEPTH.set(len(self._queue))
            if batch:
                self._commit_batch(batch)

    def _apply_batch(self, batch: list[PendingWrite]) -> InferenceReport:
        """Net the batch into one delta and commit it (subclass hook)."""
        # Last-writer-wins netting in arrival order (module docstring).
        assertions: dict[Triple, None] = {}
        retractions: dict[Triple, None] = {}
        for pending in batch:
            for triple in pending.delta.retractions:
                assertions.pop(triple, None)
                retractions[triple] = None
            for triple in pending.delta.assertions:
                retractions.pop(triple, None)
                assertions[triple] = None
        return self._apply(Delta(tuple(assertions), tuple(retractions)))

    def _commit_batch(self, batch: list[PendingWrite]) -> None:
        # One commit span shared by every writer netted into this batch:
        # the engine/sharding/subscription spans opened while _apply_batch
        # runs on this drain thread nest under it, so a client trace id
        # is findable on the whole commit subtree.
        trace_ids = [p.trace_id for p in batch if p.trace_id]
        with TRACER.span("commit", trace_ids=trace_ids, coalesced=len(batch)) as span:
            try:
                report = self._apply_batch(batch)
            except BaseException as error:
                span.set(error=type(error).__name__)
                self.failed += len(batch)
                _obs.COALESCER_FAILED.inc(len(batch))
                for pending in batch:
                    pending._fail(error)
                return
            span.set(revision=report.revision)
            self.commits += 1
            _obs.COALESCER_COMMITS.inc()
            _obs.COALESCER_BATCH_SIZE.observe(len(batch))
            self.max_coalesced = max(self.max_coalesced, len(batch))
            result = CommitResult(report.revision, report, len(batch))
            for pending in batch:
                pending._resolve(result)

    def __repr__(self):
        return (
            f"<WriteCoalescer commits={self.commits} submitted={self.submitted} "
            f"queued={len(self._queue)}>"
        )
