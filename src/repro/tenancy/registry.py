"""Tenant identities and quotas, persisted as ``tenants.json``.

A *tenant* is a named, isolated reasoning workspace: its explicit
triples live under the named graph ``urn:tenant:<name>`` inside a
dedicated engine, and every admission decision — write rate, triple
count, standing-query count, queue depth — is taken against the
tenant's :class:`TenantQuota`.

The registry mirrors the sharding layer's ``cluster.json`` precedent:
a single JSON document, written atomically (tmp + rename), re-loadable
by the CLI and the server so that a restart serves the same tenant set
with the same limits.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Iterator

from .errors import TenancyError, UnknownTenantError

__all__ = ["TenantQuota", "TenantRegistry", "TENANTS_FILENAME", "tenant_graph_iri"]

#: Filename of the persisted registry inside a state directory.
TENANTS_FILENAME = "tenants.json"

#: Tenant names become IRI path segments and directory names, so the
#: alphabet is deliberately narrow.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


def tenant_graph_iri(name: str) -> str:
    """The named-graph IRI that scopes a tenant's explicit triples."""
    return f"urn:tenant:{name}"


class TenantQuota:
    """Per-tenant limits and the tenant's fair-share weight.

    ``None`` / non-positive limits mean *unlimited*; ``weight`` only
    shapes relative drain bandwidth (it never rejects anything).
    """

    __slots__ = ("max_triples", "max_subscriptions", "writes_per_second", "burst", "weight")

    def __init__(
        self,
        max_triples: int | None = None,
        max_subscriptions: int | None = None,
        writes_per_second: float | None = None,
        burst: int | None = None,
        weight: float = 1.0,
    ):
        self.max_triples = _positive_or_none("max_triples", max_triples)
        self.max_subscriptions = _positive_or_none("max_subscriptions", max_subscriptions)
        if writes_per_second is not None and writes_per_second <= 0:
            raise TenancyError("writes_per_second must be positive (or None)")
        self.writes_per_second = writes_per_second
        #: Token-bucket depth; defaults to one second's worth of writes.
        self.burst = _positive_or_none("burst", burst)
        if weight <= 0:
            raise TenancyError("weight must be positive")
        self.weight = float(weight)

    def as_dict(self) -> dict:
        """JSON-ready form (``tenants.json`` value)."""
        return {
            "max_triples": self.max_triples,
            "max_subscriptions": self.max_subscriptions,
            "writes_per_second": self.writes_per_second,
            "burst": self.burst,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantQuota":
        """Inverse of :meth:`as_dict`; unknown keys are rejected."""
        unknown = set(payload) - {slot for slot in cls.__slots__}
        if unknown:
            raise TenancyError(f"unknown quota fields: {sorted(unknown)}")
        return cls(**payload)

    def __eq__(self, other):
        if not isinstance(other, TenantQuota):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self):
        fields = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"TenantQuota({fields})"


def _positive_or_none(field: str, value: int | None) -> int | None:
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise TenancyError(f"{field} must be a positive int (or None)")
    return value


class TenantRegistry:
    """The mutable, thread-safe map of tenant name -> quota.

    ``default_quota`` (when set) makes the registry *open*: an unknown
    tenant is auto-registered with a copy of the default on first
    touch.  Without it the registry is closed and unknown tenants are
    rejected with :class:`UnknownTenantError` — the multi-tenant
    server's production posture.
    """

    def __init__(self, default_quota: TenantQuota | None = None):
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantQuota] = {}
        self.default_quota = default_quota

    # --- membership --------------------------------------------------------
    def register(self, name: str, quota: TenantQuota | None = None) -> TenantQuota:
        """Add (or re-quota) a tenant; returns the effective quota."""
        validate_tenant_name(name)
        quota = quota or self.default_quota or TenantQuota()
        with self._lock:
            self._tenants[name] = quota
        return quota

    def unregister(self, name: str) -> None:
        """Remove a tenant from the registry (engine teardown is the
        manager's job)."""
        with self._lock:
            if name not in self._tenants:
                raise UnknownTenantError(name)
            del self._tenants[name]

    def quota(self, name: str) -> TenantQuota:
        """The tenant's quota; auto-registers when the registry is open."""
        with self._lock:
            existing = self._tenants.get(name)
        if existing is not None:
            return existing
        if self.default_quota is None:
            raise UnknownTenantError(name)
        return self.register(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._tenants))

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def as_dict(self) -> dict:
        """JSON document form (the ``tenants.json`` payload)."""
        with self._lock:
            return {
                "version": 1,
                "default_quota": (
                    None if self.default_quota is None else self.default_quota.as_dict()
                ),
                "tenants": {
                    name: quota.as_dict()
                    for name, quota in sorted(self._tenants.items())
                },
            }

    # --- persistence -------------------------------------------------------
    def save(self, path) -> Path:
        """Atomically write ``tenants.json`` (tmp + rename, like
        ``cluster.json``); ``path`` may be the file or its directory."""
        path = _registry_path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path) -> "TenantRegistry":
        """Load a registry previously written by :meth:`save`."""
        path = _registry_path(path)
        payload = json.loads(path.read_text("utf-8"))
        if payload.get("version") != 1:
            raise TenancyError(f"unsupported tenants.json version: {payload.get('version')!r}")
        default = payload.get("default_quota")
        registry = cls(
            default_quota=None if default is None else TenantQuota.from_dict(default)
        )
        for name, quota in payload.get("tenants", {}).items():
            registry.register(name, TenantQuota.from_dict(quota))
        return registry

    def __repr__(self):
        mode = "open" if self.default_quota is not None else "closed"
        return f"<TenantRegistry {mode} tenants={len(self)}>"


def validate_tenant_name(name: str) -> str:
    """Reject names that cannot be an IRI segment / directory name."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise TenancyError(
            f"invalid tenant name {name!r}: expected [A-Za-z0-9][A-Za-z0-9_.-]*, "
            "at most 64 characters"
        )
    return name


def _registry_path(path) -> Path:
    path = Path(path)
    if path.is_dir():
        return path / TENANTS_FILENAME
    return path
