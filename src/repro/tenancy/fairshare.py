"""Fair-share write coalescing: per-tenant queues, weighted DRR drain.

The single-queue :class:`~repro.server.coalescer.WriteCoalescer` is
exactly wrong for multi-tenant serving: one bulk loader submitting
thousands of writes fills the shared queue and every other tenant's
latency rides behind it.  The :class:`FairShareCoalescer` gives each
tenant its own bounded queue and drains them with **deficit round
robin**: every service round, each backlogged tenant earns credits
proportional to its quota weight, and spends them popping submissions —
so drain bandwidth divides by weight no matter how deep any one queue
gets, and a one-write interactive tenant commits within a round or two
of arriving even while a neighbour has thousands queued.

Each tenant's drained batch is netted (last-writer-wins in arrival
order, same semantics as the single-queue coalescer) into one
:class:`~repro.reasoner.delta.Delta` and handed to
``apply_fn(tenant, delta)`` — one commit per tenant per round, on the
tenant's own engine.  Because only the drain thread ever calls
``apply_fn`` for a given tenant, pre-commit quota checks inside it are
race-free.

The bounded queue is the backpressure half of admission control: a
full queue rejects with
:class:`~repro.tenancy.errors.AdmissionRejectedError` (HTTP 429)
carrying a drain-time ``retry_after`` estimate, so overload sheds at
submit instead of growing memory without bound.
"""

from __future__ import annotations

import contextlib
import threading
from collections import deque
from typing import Callable, Iterable

from ..obs import instruments as _obs
from ..rdf.terms import Triple
from ..reasoner.delta import Delta, InferenceReport
from ..server.coalescer import CoalescerClosedError, CommitResult, PendingWrite
from .errors import AdmissionRejectedError

__all__ = ["FairShareCoalescer"]


class _TenantQueue:
    """One tenant's pending writes plus its DRR bookkeeping."""

    __slots__ = ("pending", "deficit", "submitted", "commits", "rejected")

    def __init__(self):
        self.pending: deque[PendingWrite] = deque()
        #: Unspent service credits (carried while backlogged, forfeited
        #: when the queue empties — classic DRR).
        self.deficit = 0.0
        self.submitted = 0
        self.commits = 0
        self.rejected = 0


class FairShareCoalescer:
    """Weighted-fair write coalescer over per-tenant engines.

    ``apply_fn(tenant, delta)`` commits one tenant's netted batch and
    returns the report; ``weight_fn(tenant)`` supplies the tenant's
    fair-share weight (default 1.0 for everyone).  ``queue_limit``
    bounds each tenant's queue; ``quantum`` scales how many submissions
    one weight unit drains per round.
    """

    def __init__(
        self,
        apply_fn: Callable[[str, Delta], InferenceReport],
        weight_fn: Callable[[str], float] | None = None,
        tick: float = 0.002,
        queue_limit: int = 256,
        quantum: int = 8,
    ):
        if tick < 0:
            raise ValueError(f"tick must be >= 0, got {tick}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self._apply = apply_fn
        self._weight = weight_fn or (lambda tenant: 1.0)
        self._tick = tick
        self._queue_limit = queue_limit
        self._quantum = quantum
        self._cond = threading.Condition()
        self._queues: dict[str, _TenantQueue] = {}
        #: Tenant service order; rotated one step per round so no tenant
        #: is permanently first.
        self._rotation: deque[str] = deque()
        self._closed = False
        self._paused = False
        self.commits = 0
        self.submitted = 0
        self.failed = 0
        self.rounds = 0
        self._drainer = threading.Thread(
            target=self._drain_loop, name="slider-fairshare-coalescer", daemon=True
        )
        self._drainer.start()

    # --- submission ---------------------------------------------------------
    def submit(
        self,
        tenant: str,
        assertions: Iterable[Triple] | Triple = (),
        retractions: Iterable[Triple] | Triple = (),
        trace_id: str | None = None,
    ) -> PendingWrite:
        """Queue one write on the tenant's queue; never blocks.

        Raises :class:`AdmissionRejectedError` when the tenant's queue
        is at ``queue_limit`` — overload is shed here, with a
        ``retry_after`` estimated from the queue depth, the tenant's
        weight, and the drain tick.
        """
        delta = Delta(assertions, retractions)
        pending = PendingWrite(delta, trace_id)
        with self._cond:
            if self._closed:
                raise CoalescerClosedError("write queue is closed")
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = _TenantQueue()
                self._rotation.append(tenant)
            if len(queue.pending) >= self._queue_limit:
                queue.rejected += 1
                raise AdmissionRejectedError(
                    tenant,
                    queued=len(queue.pending),
                    limit=self._queue_limit,
                    retry_after=self._retry_after(len(queue.pending), tenant),
                )
            queue.pending.append(pending)
            queue.submitted += 1
            self.submitted += 1
            _obs.TENANCY_ADMITTED.inc()
            _obs.TENANCY_QUEUE_DEPTH.set_labels(tenant, value=len(queue.pending))
            self._cond.notify_all()
        return pending

    def apply(
        self,
        tenant: str,
        assertions: Iterable[Triple] | Triple = (),
        retractions: Iterable[Triple] | Triple = (),
        timeout: float | None = 30.0,
    ) -> CommitResult:
        """Submit and wait: the blocking convenience most callers want."""
        return self.submit(tenant, assertions, retractions).wait(timeout)

    def _retry_after(self, queued: int, tenant: str) -> float:
        # Rounds needed to drain the queue at this tenant's bandwidth,
        # times the coalescing window (floor one tick).
        per_round = max(1.0, self._weight(tenant) * self._quantum)
        return max(self._tick, (queued / per_round) * max(self._tick, 0.001))

    # --- test/ops hooks -----------------------------------------------------
    @contextlib.contextmanager
    def paused(self):
        """Hold the drain loop so queued writes accumulate deterministically."""
        with self._cond:
            self._paused = True
        try:
            yield self
        finally:
            with self._cond:
                self._paused = False
                self._cond.notify_all()

    def stats(self) -> dict:
        """Global counters plus a per-tenant slice (queue depth, DRR state)."""
        with self._cond:
            return {
                "submitted": self.submitted,
                "commits": self.commits,
                "failed": self.failed,
                "rounds": self.rounds,
                "queue_limit": self._queue_limit,
                "tick_seconds": self._tick,
                "tenants": {
                    tenant: {
                        "queued": len(queue.pending),
                        "submitted": queue.submitted,
                        "commits": queue.commits,
                        "rejected_queue": queue.rejected,
                        "weight": self._weight(tenant),
                    }
                    for tenant, queue in sorted(self._queues.items())
                },
            }

    def saturation(self) -> dict:
        """Aggregate queue saturation for ``/healthz`` pre-overload probes.

        ``max_saturation`` is the most saturated tenant's queue depth
        over the per-tenant limit (1.0 = that tenant's next write takes
        a 429); ``queued`` is the total backlog across tenants.
        """
        with self._cond:
            depths = [len(queue.pending) for queue in self._queues.values()]
            total = sum(depths)
            worst = max(depths, default=0)
            return {
                "queued": total,
                "queue_limit": self._queue_limit,
                "tenants_backlogged": sum(1 for depth in depths if depth),
                "max_saturation": round(worst / self._queue_limit, 4)
                if self._queue_limit
                else 0.0,
            }

    def tenant_stats(self, tenant: str) -> dict:
        """One tenant's queue counters (zeros for unknown tenants)."""
        with self._cond:
            queue = self._queues.get(tenant)
            if queue is None:
                return {"queued": 0, "submitted": 0, "commits": 0, "rejected_queue": 0}
            return {
                "queued": len(queue.pending),
                "submitted": queue.submitted,
                "commits": queue.commits,
                "rejected_queue": queue.rejected,
            }

    def forget(self, tenant: str) -> None:
        """Drop an idle tenant's queue state (tenant removal)."""
        with self._cond:
            queue = self._queues.get(tenant)
            if queue is not None and not queue.pending:
                del self._queues[tenant]
                with contextlib.suppress(ValueError):
                    self._rotation.remove(tenant)

    # --- lifecycle ----------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting writes, drain every queue, join the drainer."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._paused = False
            self._cond.notify_all()
        self._drainer.join(timeout)

    # --- drain loop ---------------------------------------------------------
    def _backlogged(self) -> bool:
        return any(queue.pending for queue in self._queues.values())

    def _drain_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (not self._backlogged() or self._paused):
                    self._cond.wait()
                if self._closed and not self._backlogged():
                    return
                draining_on_close = self._closed
            if self._tick and not draining_on_close:
                threading.Event().wait(self._tick)
            with self._cond:
                while not self._closed and self._paused:
                    self._cond.wait()
                batches = self._take_round()
            for tenant, batch in batches:
                self._commit_batch(tenant, batch)

    def _take_round(self) -> list[tuple[str, list[PendingWrite]]]:
        """One DRR service round (called under the lock).

        Every backlogged tenant earns ``weight * quantum`` credits and
        spends them popping submissions; the rotation advances one step
        so round-start position is itself fair.
        """
        batches: list[tuple[str, list[PendingWrite]]] = []
        for tenant in list(self._rotation):
            queue = self._queues[tenant]
            if not queue.pending:
                queue.deficit = 0.0
                continue
            queue.deficit += max(self._weight(tenant), 1e-9) * self._quantum
            take = min(len(queue.pending), int(queue.deficit))
            if take < 1:
                continue
            queue.deficit -= take
            batches.append((tenant, [queue.pending.popleft() for _ in range(take)]))
            _obs.TENANCY_QUEUE_DEPTH.set_labels(tenant, value=len(queue.pending))
            if not queue.pending:
                queue.deficit = 0.0
        if self._rotation:
            self._rotation.rotate(-1)
        self.rounds += 1
        return batches

    def _commit_batch(self, tenant: str, batch: list[PendingWrite]) -> None:
        # Last-writer-wins netting in arrival order, per tenant (same
        # semantics as WriteCoalescer._commit_batch).  The commit span
        # carries every batched writer's trace id, same as the
        # single-tenant coalescer.
        assertions: dict[Triple, None] = {}
        retractions: dict[Triple, None] = {}
        for pending in batch:
            for triple in pending.delta.retractions:
                assertions.pop(triple, None)
                retractions[triple] = None
            for triple in pending.delta.assertions:
                retractions.pop(triple, None)
                assertions[triple] = None
        trace_ids = [p.trace_id for p in batch if p.trace_id]
        with _obs.TRACER.span(
            "commit", trace_ids=trace_ids, tenant=tenant, coalesced=len(batch)
        ) as span:
            try:
                report = self._apply(
                    tenant, Delta(tuple(assertions), tuple(retractions))
                )
            except BaseException as error:  # noqa: BLE001 - resolve with the cause
                span.set(error=type(error).__name__)
                with self._cond:
                    self.failed += len(batch)
                for pending in batch:
                    pending._fail(error)
                return
            span.set(revision=report.revision)
            with self._cond:
                self.commits += 1
                queue = self._queues.get(tenant)
                if queue is not None:
                    queue.commits += 1
            result = CommitResult(report.revision, report, len(batch))
            for pending in batch:
                pending._resolve(result)

    def __repr__(self):
        return (
            f"<FairShareCoalescer tenants={len(self._queues)} "
            f"commits={self.commits} submitted={self.submitted}>"
        )
