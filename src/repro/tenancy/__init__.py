"""Multi-tenant serving: registry, admission control, fair-share writes.

The tenancy layer turns one reasoning process into a multi-tenant
service.  Each tenant gets hard isolation (its own engine, writing
under the named graph ``urn:tenant:<name>``), declared limits
(:class:`TenantQuota`), rate-gated admission
(:class:`AdmissionController`) and weighted-fair drain bandwidth
(:class:`FairShareCoalescer`), all fronted by the
:class:`TenantManager` facade the HTTP server and the tenancy
benchmark drive.

See ``docs/architecture.md`` (the tenancy section) for how the layers
stack and ``docs/operations.md`` for quota/limit tuning.
"""

from .admission import AdmissionController, TokenBucket
from .errors import (
    AdmissionRejectedError,
    QuotaExceededError,
    RateLimitedError,
    TenancyError,
    UnknownTenantError,
)
from .fairshare import FairShareCoalescer
from .manager import TenantManager
from .registry import TENANTS_FILENAME, TenantQuota, TenantRegistry, tenant_graph_iri

__all__ = [
    "AdmissionController",
    "AdmissionRejectedError",
    "FairShareCoalescer",
    "QuotaExceededError",
    "RateLimitedError",
    "TenancyError",
    "TenantManager",
    "TenantQuota",
    "TenantRegistry",
    "TENANTS_FILENAME",
    "TokenBucket",
    "UnknownTenantError",
    "tenant_graph_iri",
]
