"""Typed tenancy failures, each mapped to one HTTP status by the server.

The hierarchy keeps admission decisions machine-readable: every
rejection carries enough structure (``retry_after``, the tenant, the
exceeded limit) for the HTTP layer to emit the right status code and
``Retry-After`` header without string matching, and for the bench
client to honour the backoff it is told.
"""

from __future__ import annotations

from ..obs import instruments as _obs

__all__ = [
    "TenancyError",
    "UnknownTenantError",
    "QuotaExceededError",
    "RateLimitedError",
    "AdmissionRejectedError",
]


class TenancyError(RuntimeError):
    """Base class of every tenancy-layer failure."""


class UnknownTenantError(TenancyError):
    """The tenant is not registered (HTTP 404)."""

    def __init__(self, tenant: str):
        super().__init__(f"unknown tenant {tenant!r}")
        self.tenant = tenant


class QuotaExceededError(TenancyError):
    """A hard per-tenant quota would be exceeded (HTTP 413).

    Raised *before* any store mutation — a quota-rejected apply commits
    nothing (checked atomically on the tenant's single drain thread).
    """

    def __init__(self, tenant: str, quota: str, limit: int, requested: int):
        super().__init__(
            f"tenant {tenant!r} exceeds {quota} quota: "
            f"limit {limit}, would reach {requested}"
        )
        self.tenant = tenant
        self.quota = quota
        self.limit = limit
        self.requested = requested
        _obs.TENANCY_REJECTED.inc_labels("413")


class RateLimitedError(TenancyError):
    """The tenant's write-rate token bucket is empty (HTTP 429).

    ``retry_after`` is the seconds until the bucket refills enough for
    the rejected request — the value of the ``Retry-After`` header.
    """

    def __init__(self, tenant: str, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} is over its write rate "
            f"(retry after {retry_after:.3f}s)"
        )
        self.tenant = tenant
        self.retry_after = retry_after
        _obs.TENANCY_REJECTED.inc_labels("429")


class AdmissionRejectedError(TenancyError):
    """The tenant's bounded write queue is full (HTTP 429).

    Overload shedding: the queue bound holds the coalescer's memory and
    the tenant's tail latency; ``retry_after`` is a drain-time estimate.
    """

    def __init__(self, tenant: str, queued: int, limit: int, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} write queue is full ({queued}/{limit}); "
            f"retry after {retry_after:.3f}s"
        )
        self.tenant = tenant
        self.queued = queued
        self.limit = limit
        self.retry_after = retry_after
        _obs.TENANCY_REJECTED.inc_labels("429")
