"""Write-rate admission control: one token bucket per tenant.

Admission runs *before* a write touches the coalescer, so an
over-rate tenant is shed at the door in O(1) — it never occupies queue
memory, never steals drain bandwidth, and gets an honest
``retry_after`` computed from the bucket's refill rate rather than a
blind backoff hint.

The clock is injectable (``clock=...``) so rate behaviour is tested
deterministically — no sleeps, no flaky timing margins.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

from .errors import RateLimitedError
from .registry import TenantQuota, TenantRegistry

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, depth ``burst``.

    :meth:`try_acquire` never blocks: it either takes the tokens and
    returns ``0.0``, or leaves the bucket untouched and returns the
    seconds until the request *would* fit — the caller's
    ``Retry-After``.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock", "_lock")

    def __init__(self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; return 0.0 on success, else the
        wait (seconds) until the bucket refills enough."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if tokens <= self._tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Current token balance (refreshed to now); diagnostic only."""
        with self._lock:
            now = self._clock()
            return min(self.burst, self._tokens + (now - self._stamp) * self.rate)


class AdmissionController:
    """Per-tenant write-rate gate over a :class:`TenantRegistry`.

    Buckets are created lazily from each tenant's quota and dropped
    when the tenant is forgotten; a tenant without a
    ``writes_per_second`` quota is always admitted.  Counters
    (``admitted`` / ``rejected`` per tenant) feed the server's
    per-tenant ``/stats`` slice.
    """

    def __init__(self, registry: TenantRegistry, clock: Callable[[], float] = time.monotonic):
        self._registry = registry
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}
        self._rejected: dict[str, int] = {}

    def admit(self, tenant: str, cost: float = 1.0) -> None:
        """Charge one write (of ``cost`` tokens) to the tenant.

        Raises :class:`RateLimitedError` carrying ``retry_after`` when
        the tenant's bucket cannot cover the cost.  Also raises
        :class:`~repro.tenancy.errors.UnknownTenantError` for tenants a
        closed registry does not know.
        """
        quota = self._registry.quota(tenant)
        bucket = self._bucket(tenant, quota)
        with self._lock:
            if bucket is None:
                self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
                return
        wait = bucket.try_acquire(cost)
        with self._lock:
            if wait == 0.0:
                self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
                return
            self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
        raise RateLimitedError(tenant, math.ceil(wait * 1000) / 1000)

    def forget(self, tenant: str) -> None:
        """Drop the tenant's bucket and counters (tenant removal)."""
        with self._lock:
            self._buckets.pop(tenant, None)
            self._admitted.pop(tenant, None)
            self._rejected.pop(tenant, None)

    def stats(self, tenant: str) -> dict:
        """``{"admitted": n, "rejected_rate": n}`` for one tenant."""
        with self._lock:
            return {
                "admitted": self._admitted.get(tenant, 0),
                "rejected_rate": self._rejected.get(tenant, 0),
            }

    def _bucket(self, tenant: str, quota: TenantQuota) -> TokenBucket | None:
        if quota.writes_per_second is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if (
                bucket is None
                or bucket.rate != quota.writes_per_second
                or bucket.burst != float(quota.burst or max(1.0, quota.writes_per_second))
            ):
                # New tenant, or its quota changed: (re)build the bucket.
                bucket = TokenBucket(
                    quota.writes_per_second,
                    quota.burst or max(1.0, quota.writes_per_second),
                    clock=self._clock,
                )
                self._buckets[tenant] = bucket
        return bucket
