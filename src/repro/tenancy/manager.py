"""The multi-tenant serving facade: one engine per tenant.

Named graphs alone cannot give hard tenant isolation on a shared
engine — two tenants asserting the *same* triple would share one store
row (and one graph tag), and rule conclusions are dataset-wide.  The
:class:`TenantManager` therefore keeps **one Slider per tenant**: each
tenant's closure, change log, journal, snapshot, views and
subscriptions are physically its own, which is what makes the
differential guarantee (N interleaved tenants ≡ N isolated engines)
structural rather than statistical.

Named graphs still do real work inside each tenant engine: every write
is applied as ``Delta(graph=urn:tenant:<name>)``, so the store's graph
column, the WAL's graph label and both snapshot formats are exercised
end-to-end by ordinary tenant traffic, and a tenant's explicit triples
are recoverable as a set (``triples(tenant)``) distinct from the
engine's inferred closure.

The write path stacks the three admission layers in order::

    apply(tenant, ...) ── rate gate (429) ── queue bound (429)
                       ── fair-share DRR drain ── quota gate (413)
                       ── engine.apply(Delta(graph=tenant))

The quota gate runs on the drain thread immediately before the
engine's ``apply`` — the only writer of that engine — so a
quota-rejected batch is atomic: nothing was staged, journaled or
committed.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..rdf.terms import IRI, Triple
from ..reasoner.delta import Delta, InferenceReport
from ..reasoner.engine import Slider
from ..reasoner.subscription import Subscription
from ..server.coalescer import CommitResult, PendingWrite
from ..server.views import ReadView, ViewRegistry
from ..store.graph import Graph
from .admission import AdmissionController
from .errors import QuotaExceededError, TenancyError
from .fairshare import FairShareCoalescer
from .registry import TenantRegistry, tenant_graph_iri, validate_tenant_name

__all__ = ["TenantManager"]


class _Tenant:
    """One tenant's runtime state (engine + views + subscriptions)."""

    __slots__ = ("name", "graph_iri", "engine", "views", "subscriptions", "lock")

    def __init__(self, name: str, engine: Slider):
        self.name = name
        self.graph_iri = IRI(tenant_graph_iri(name))
        self.engine = engine
        initial = ReadView.from_store(engine.revision, engine.store)
        self.views = ViewRegistry(initial, retain=4)
        self.subscriptions: list[Subscription] = []
        self.lock = threading.Lock()


class TenantManager:
    """Engine-per-tenant serving with quotas, rate gates and fair share.

    ``registry`` decides membership and quotas (open with a
    ``default_quota``, closed without); ``persist_dir`` — when given —
    holds one state directory per tenant plus the persisted
    ``tenants.json``, so a restarted manager recovers every tenant's
    closure and quota.  ``clock`` is forwarded to the rate gate for
    deterministic tests.  Remaining ``slider_options`` configure each
    tenant's engine (default: ``rhodf`` fragment, inline executor).
    """

    def __init__(
        self,
        registry: TenantRegistry | None = None,
        persist_dir: str | Path | None = None,
        coalesce_tick: float = 0.002,
        queue_limit: int = 256,
        quantum: int = 8,
        clock: Callable[[], float] | None = None,
        **slider_options,
    ):
        slider_options.setdefault("fragment", "rhodf")
        slider_options.setdefault("workers", 0)
        slider_options.setdefault("timeout", None)
        self._options = slider_options
        self._persist_dir = None if persist_dir is None else Path(persist_dir)
        if registry is None:
            registry = self._load_or_default()
        self.registry = registry
        self._save_registry()
        admission_args = {} if clock is None else {"clock": clock}
        self.admission = AdmissionController(registry, **admission_args)
        self.writes = FairShareCoalescer(
            self._commit_tenant,
            weight_fn=lambda tenant: self.registry.quota(tenant).weight,
            tick=coalesce_tick,
            queue_limit=queue_limit,
            quantum=quantum,
        )
        self._lock = threading.Lock()
        self._tenants: dict[str, _Tenant] = {}
        self._closed = False

    def _load_or_default(self) -> TenantRegistry:
        if self._persist_dir is not None:
            path = self._persist_dir / "tenants.json"
            if path.exists():
                return TenantRegistry.load(path)
        return TenantRegistry()

    def _save_registry(self) -> None:
        if self._persist_dir is not None:
            self.registry.save(self._persist_dir / "tenants.json")

    # --- membership ---------------------------------------------------------
    def register(self, name: str, quota=None):
        """Register (or re-quota) a tenant; persists the registry."""
        effective = self.registry.register(name, quota)
        self._save_registry()
        return effective

    def remove(self, name: str) -> None:
        """Unregister a tenant and tear down its runtime state.

        The tenant's persisted directory is left on disk (operator
        data-retention call, see docs/operations.md); re-registering
        the same name resumes from it.
        """
        self.registry.unregister(name)
        self._save_registry()
        self.admission.forget(name)
        self.writes.forget(name)
        with self._lock:
            tenant = self._tenants.pop(name, None)
        if tenant is not None:
            tenant.engine.close()

    def tenants(self) -> list[str]:
        """Registered tenant names (sorted)."""
        return list(self.registry)

    def tenant_graph(self, name: str) -> IRI:
        """The named-graph IRI scoping ``name``'s explicit triples."""
        return IRI(tenant_graph_iri(validate_tenant_name(name)))

    # --- engine management --------------------------------------------------
    def _tenant(self, name: str) -> _Tenant:
        """The tenant's runtime state, creating its engine lazily."""
        self.registry.quota(name)  # membership gate (may auto-register)
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                # Existing engines stay reachable during close() so the
                # final drain can still commit; only *new* engines are
                # refused once shutdown began.
                if self._closed:
                    raise TenancyError("tenant manager is closed")
                options = dict(self._options)
                if self._persist_dir is not None:
                    state_dir = self._persist_dir / name
                    state_dir.mkdir(parents=True, exist_ok=True)
                    options["persist_dir"] = state_dir
                tenant = _Tenant(name, Slider(**options))
                self._tenants[name] = tenant
        return tenant

    def engine(self, name: str) -> Slider:
        """The tenant's engine (tests/benchmarks; serving goes through
        :meth:`apply` / :meth:`view`)."""
        return self._tenant(name).engine

    # --- write path ---------------------------------------------------------
    def submit(
        self,
        tenant: str,
        assertions: Iterable[Triple] | Triple = (),
        retractions: Iterable[Triple] | Triple = (),
        trace_id: str | None = None,
    ) -> PendingWrite:
        """Admit and queue one write; returns its pending handle.

        Raises, in gate order: ``UnknownTenantError`` (closed registry),
        :class:`~repro.tenancy.errors.RateLimitedError` (token bucket),
        :class:`~repro.tenancy.errors.AdmissionRejectedError` (queue
        bound).  Quota violations surface from ``wait()`` as
        :class:`~repro.tenancy.errors.QuotaExceededError`.
        """
        validate_tenant_name(tenant)
        self._tenant(tenant)  # membership + engine warm-up
        self.admission.admit(tenant)
        return self.writes.submit(tenant, assertions, retractions, trace_id=trace_id)

    def apply(
        self,
        tenant: str,
        assertions: Iterable[Triple] | Triple = (),
        retractions: Iterable[Triple] | Triple = (),
        timeout: float | None = 30.0,
        trace_id: str | None = None,
    ) -> CommitResult:
        """Submit and wait for the tenant's commit (blocking convenience)."""
        return self.submit(
            tenant, assertions, retractions, trace_id=trace_id
        ).wait(timeout)

    def _commit_tenant(self, name: str, delta: Delta) -> InferenceReport:
        """Drain-thread commit hook: quota gate, then the engine apply.

        Only the fair-share drain thread calls this for any tenant, so
        the explicit-count check cannot race another writer — rejection
        here is atomic (no staging, no journal record, no commit).
        """
        tenant = self._tenant(name)
        quota = self.registry.quota(name)
        if quota.max_triples is not None and delta.assertions:
            current = tenant.engine.input_count
            fresh = _fresh_count(tenant.engine, delta.assertions)
            if current + fresh > quota.max_triples:
                raise QuotaExceededError(
                    name, "max_triples", quota.max_triples, current + fresh
                )
        report = tenant.engine.apply(
            Delta(delta.assertions, delta.retractions, graph=tenant.graph_iri)
        )
        tenant.views.advance(report)
        return report

    # --- read path ----------------------------------------------------------
    def view(self, tenant: str, at: int | None = None) -> ReadView:
        """A snapshot-isolated read view of the tenant's closure."""
        state = self._tenant(tenant)
        return state.views.current() if at is None else state.views.at(at)

    def graph(self, tenant: str) -> Graph:
        """Term-level (live) graph over the tenant's engine store."""
        return self._tenant(tenant).engine.graph

    def view_graph(self, tenant: str, at: int | None = None) -> Graph:
        """Term-level graph over a snapshot view — the HTTP read path.

        Mirrors ``ReasoningService.graph``: the dictionary is shared
        with the tenant's engine (term ids only grow, so decoding
        against an older view is safe) while the store is the immutable
        pinned view.
        """
        state = self._tenant(tenant)
        view = state.views.current() if at is None else state.views.at(at)
        return Graph(state.engine.dictionary, view)

    def triples(self, tenant: str) -> list[Triple]:
        """The tenant's *explicit* triples (its named graph's contents)."""
        state = self._tenant(tenant)
        return state.engine.triples_in_graph(state.graph_iri)

    def revision(self, tenant: str) -> int:
        """The tenant's committed revision counter."""
        return self._tenant(tenant).engine.revision

    # --- subscriptions ------------------------------------------------------
    def subscribe(self, tenant: str, patterns: Sequence, callback=None) -> Subscription:
        """Register a standing BGP on the tenant's engine.

        Counts against the tenant's ``max_subscriptions`` quota
        (cancelled subscriptions are reaped first, so the quota tracks
        live standing queries).
        """
        state = self._tenant(tenant)
        quota = self.registry.quota(tenant)
        with state.lock:
            state.subscriptions = [s for s in state.subscriptions if s.active]
            if (
                quota.max_subscriptions is not None
                and len(state.subscriptions) >= quota.max_subscriptions
            ):
                raise QuotaExceededError(
                    tenant,
                    "max_subscriptions",
                    quota.max_subscriptions,
                    len(state.subscriptions) + 1,
                )
            subscription = state.engine.subscribe(
                patterns, callback, graph=state.graph_iri
            )
            state.subscriptions.append(subscription)
        return subscription

    def subscribe_channel(self, tenant: str, patterns: Sequence):
        """A queue-backed subscription for one tenant's streaming client.

        Same bounded-queue slow-consumer policy as
        ``ReasoningService.subscribe_channel`` (drop the subscriber,
        never the committing thread); counts against the tenant's
        ``max_subscriptions`` quota like any standing query.
        """
        import queue

        from ..server.service import SUBSCRIPTION_QUEUE_LIMIT, SubscriptionChannel

        events: "queue.Queue" = queue.Queue(maxsize=SUBSCRIPTION_QUEUE_LIMIT)
        cell: list[SubscriptionChannel] = []

        def push(event) -> None:
            try:
                events.put_nowait(event)
            except queue.Full:
                if cell:
                    cell[0].close()

        subscription = self.subscribe(tenant, patterns, push)
        channel = SubscriptionChannel(subscription, events)
        cell.append(channel)
        return channel

    # --- observability ------------------------------------------------------
    def stats(self) -> dict:
        """Global + per-tenant counters (the server's ``/stats`` slice)."""
        with self._lock:
            active = dict(self._tenants)
        tenants = {}
        for name in self.registry:
            tenants[name] = self.tenant_stats(name, _active=active.get(name))
        return {
            "tenants": len(tenants),
            "active_engines": len(active),
            "writes": self.writes.stats(),
            "per_tenant": tenants,
        }

    def summary(self) -> dict:
        """Aggregate counters only — O(1) in the tenant count, safe to
        embed in the global ``/stats`` body even with thousands of
        tenants (per-tenant detail goes through ``/stats?tenant=``)."""
        writes = self.writes.stats()
        writes.pop("tenants", None)
        with self._lock:
            active = len(self._tenants)
        return {
            "tenants": len(self.registry),
            "active_engines": active,
            "writes": writes,
        }

    def tenant_stats(self, name: str, _active: _Tenant | None = None) -> dict:
        """One tenant's counters: engine, queue and admission slices."""
        if _active is None:
            with self._lock:
                _active = self._tenants.get(name)
        stats = {
            "graph": tenant_graph_iri(name),
            "quota": self.registry.quota(name).as_dict(),
            "queue": self.writes.tenant_stats(name),
            "admission": self.admission.stats(name),
        }
        if _active is None:
            stats["engine"] = None
        else:
            engine = _active.engine
            with _active.lock:
                live_subs = sum(1 for s in _active.subscriptions if s.active)
            stats["engine"] = {
                "revision": engine.revision,
                "triples": engine.input_count,
                "inferred": engine.inferred_count,
                "subscriptions": live_subs,
            }
        return stats

    # --- lifecycle ----------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Drain queued writes, then close every tenant engine."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.writes.close(timeout)
        with self._lock:
            tenants, self._tenants = dict(self._tenants), {}
        for tenant in tenants.values():
            tenant.engine.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return (
            f"<TenantManager tenants={len(self.registry)} "
            f"active={len(self._tenants)}>"
        )


def _fresh_count(engine: Slider, assertions: Sequence[Triple]) -> int:
    """How many of ``assertions`` are not already explicit — computed
    with the non-inserting ``dictionary.lookup`` so a quota rejection
    leaves the engine (dictionary included) untouched."""
    lookup = engine.dictionary.lookup
    explicit = engine.input_manager.explicit
    fresh = 0
    seen: set = set()
    for triple in assertions:
        ids = (lookup(triple.subject), lookup(triple.predicate), lookup(triple.object))
        if None in ids:
            if triple not in seen:
                fresh += 1
                seen.add(triple)
        elif ids not in explicit and ids not in seen:
            fresh += 1
            seen.add(ids)
    return fresh
