"""Replication: WAL-shipped read replicas with snapshot bootstrap.

The second axis of scale on top of the serving layer: one **leader**
accepts writes and streams every committed delta over HTTP; any number
of **followers** bootstrap from a binary snapshot, tail the feed, and
serve the full read API at the same revision ids.

* :mod:`~repro.replication.feed` — the leader side: resumable,
  CRC-framed wire records backed by an in-memory ring and the retained
  write-ahead changelog (``GET /feed``, ``GET /snapshot``);
* :mod:`~repro.replication.follower` — the follower side: snapshot
  bootstrap, SSE tailing through the ordinary ``apply()`` pipeline,
  automatic re-bootstrap when the leader compacted past the replica's
  resume point, and reconnect-with-backoff that keeps reads flowing
  through leader outages.

Start a replica in Python::

    from repro.replication import Follower

    follower = Follower("http://leader:8080", workers=2).start()
    follower.wait_ready(timeout=30)
    server, thread = follower.serve_http(port=8081)

or from the CLI: ``slider-reason serve --follow http://leader:8080``
(see the README's *Replication* section for topology and guarantees).
"""

from .feed import (
    DEFAULT_FEED_RETAIN,
    ChangeFeed,
    FeedRecord,
    FeedTruncatedError,
    FeedWireError,
)

__all__ = [
    "ChangeFeed",
    "FeedRecord",
    "FeedTruncatedError",
    "FeedWireError",
    "DEFAULT_FEED_RETAIN",
    "Follower",
    "ReplicationStatus",
    "ReplicationError",
    "ColumnarBootstrapService",
    "ColumnarTermView",
]


def __getattr__(name: str):
    # The follower imports the server package (service + HTTP layer),
    # which itself imports this package for the feed types; resolving
    # the follower lazily keeps that triangle acyclic at import time.
    if name in ("Follower", "ReplicationStatus", "ReplicationError"):
        from . import follower as _follower

        return getattr(_follower, name)
    if name in ("ColumnarBootstrapService", "ColumnarTermView"):
        from . import bootstrap as _bootstrap

        return getattr(_bootstrap, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
