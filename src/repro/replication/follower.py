"""The follower: a read replica maintained from the leader's change feed.

A :class:`Follower` owns a full local engine + service pair and keeps it
converged with a leader over plain HTTP:

1. **bootstrap** — when the leader's feed cannot serve the follower's
   resume point (fresh replica, or the leader compacted the WAL past
   it), the follower fetches ``GET /snapshot`` — the same binary image
   durable engines seal to disk — and restores it into a fresh engine
   via :meth:`~repro.reasoner.engine.Slider.restore_snapshot`;
2. **tail** — it then streams ``GET /feed?from=<revision>`` (SSE) and
   commits each record through the ordinary ``apply()`` pipeline with
   the leader's revision id (:meth:`Slider.apply_at`), so revision ids,
   inference reports, subscriptions and local persistence all behave
   exactly as they do on the leader;
3. **serve** — the follower's :class:`ReasoningService` runs the whole
   read API (``/select``, ``/ask``, ``/subscribe`` …); writes are
   rejected or 307-forwarded to the leader by the HTTP layer.

Consistency: the leader gives read-your-writes (views advance before a
write returns); a follower gives **monotonic prefix** — it always
serves some committed leader revision R, and R only moves forward.

Durability composes: ``persist_dir`` makes the replica restartable — it
recovers locally and resumes the feed from its recovered revision,
touching the leader only for the missed tail.

A follower survives leader death: the tailing thread reconnects with
backoff while the local service keeps answering reads at the last
replicated revision.
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from urllib.parse import urlsplit

from ..obs import instruments as _obs
from ..persist.manager import JOURNAL_FILENAME, SNAPSHOT_FILENAME
from ..persist.snapshot import SnapshotError, parse_snapshot
from ..reasoner.engine import Slider, SliderError
from .feed import FeedRecord, FeedWireError

__all__ = ["Follower", "ReplicationStatus", "ReplicationError"]

#: Seconds between reconnect attempts after a broken feed connection.
DEFAULT_RECONNECT_DELAY = 0.5

#: Socket timeout on the SSE feed connection — must comfortably exceed
#: the leader's keepalive interval (5 s) so an idle stream is not
#: mistaken for a dead one.
FEED_SOCKET_TIMEOUT = 30.0


class ReplicationError(RuntimeError):
    """The follower could not talk to (or agree with) its leader."""


class _NeedBootstrap(Exception):
    """Internal: the feed cannot resume us; fetch a snapshot instead."""


#: Live follower statuses; the scrape-time collector exports the worst
#: (max) lag across them so ``/metrics`` on a follower is always fresh.
_LIVE_STATUSES: "weakref.WeakSet" = weakref.WeakSet()


def _collect_replication_lag() -> None:
    _obs.REPLICATION_LAG.set(max((s.lag for s in _LIVE_STATUSES), default=0))


_obs.REGISTRY.on_collect(_collect_replication_lag)


class ReplicationStatus:
    """Live replication bookkeeping, surfaced via ``/stats``/``/healthz``.

    Written by the follower's tailing thread, read by request handlers;
    plain attribute reads/writes are atomic under the GIL, and the
    numbers are monitoring data, not synchronization.
    """

    def __init__(self, leader_url: str):
        self.leader_url = leader_url
        self.connected = False
        #: True once the replica caught up to the leader revision seen at
        #: connect time; gates ``/readyz``.  Cleared while re-bootstrapping.
        self.ready = False
        self.leader_revision = 0
        #: The last leader revision committed locally (content-bearing).
        self.applied_revision = 0
        #: The revision the stream is complete through: ``applied`` plus
        #: any trailing *empty* leader revisions covered by a watermark.
        self.synced_revision = 0
        self.records_applied = 0
        self.bootstraps = 0
        #: Re-bootstraps that reused the cached columnar image because
        #: the leader's snapshot revision had not moved (304 on
        #: ``If-None-Match`` — no redundant download).
        self.snapshot_reuses = 0
        self.reconnects = 0
        self.last_error: str | None = None
        _LIVE_STATUSES.add(self)

    def note_bootstrap(self) -> None:
        """Count one snapshot bootstrap (status + metrics)."""
        self.bootstraps += 1
        _obs.REPLICATION_BOOTSTRAPS.inc()

    def note_applied(self) -> None:
        """Count one replicated record applied (status + metrics)."""
        self.records_applied += 1
        _obs.REPLICATION_APPLIED.inc()

    @property
    def lag(self) -> int:
        """Revisions the replica trails the last-seen leader revision."""
        return max(self.leader_revision - self.synced_revision, 0)

    def as_dict(self) -> dict:
        return {
            "leader": self.leader_url,
            "connected": self.connected,
            "ready": self.ready,
            "leader_revision": self.leader_revision,
            "applied_revision": self.applied_revision,
            "synced_revision": self.synced_revision,
            "lag_revisions": self.lag,
            "records_applied": self.records_applied,
            "bootstraps": self.bootstraps,
            "snapshot_reuses": self.snapshot_reuses,
            "reconnects": self.reconnects,
            "last_error": self.last_error,
        }

    def __repr__(self):
        state = "ready" if self.ready else "catching-up"
        return (
            f"<ReplicationStatus {state} applied={self.applied_revision} "
            f"synced={self.synced_revision} leader={self.leader_revision} "
            f"lag={self.lag}>"
        )


class _SSEEvent:
    __slots__ = ("event", "event_id", "data")

    def __init__(self, event: str, event_id: str | None, data: str):
        self.event = event
        self.event_id = event_id
        self.data = data


def _read_sse(response):
    """Yield :class:`_SSEEvent` items from a streaming SSE response.

    Keepalive comments reset the socket-timeout clock but yield nothing;
    the generator ends on EOF (server closed the stream).
    """
    event: str | None = None
    event_id: str | None = None
    data: list[str] = []
    while True:
        raw = response.readline()
        if not raw:
            return  # EOF: stream over
        line = raw.decode("utf-8").rstrip("\r\n")
        if line.startswith(":"):
            continue  # keepalive comment
        if line.startswith("event:"):
            event = line[6:].strip()
        elif line.startswith("id:"):
            event_id = line[3:].strip()
        elif line.startswith("data:"):
            chunk = line[5:]
            data.append(chunk[1:] if chunk.startswith(" ") else chunk)
        elif line == "" and (event or data):
            yield _SSEEvent(event or "message", event_id, "\n".join(data))
            event, event_id, data = None, None, []


class Follower:
    """A read replica of one leader, with its own serving stack.

    Parameters mirror :class:`~repro.reasoner.engine.Slider` where they
    configure the local engine (``store``, ``workers``, ``timeout``,
    ``persist_dir`` …); ``fragment=None`` (the default) discovers the
    rule fragment from the leader's ``/stats``.  The follower exposes
    :attr:`service` — swapped atomically on re-bootstrap — so serve it
    through :meth:`serve_http` (or any consumer that re-reads the
    attribute per request) rather than capturing the object once.
    """

    def __init__(
        self,
        leader_url: str,
        *,
        fragment: str | None = None,
        store: str = "hashdict",
        workers: int = 2,
        timeout: float | None = 0.05,
        buffer_size: int = 50,
        persist_dir: "str | Path | None" = None,
        persist_fsync: bool = True,
        retain_views: int = 8,
        reconnect_delay: float = DEFAULT_RECONNECT_DELAY,
        http_timeout: float = 10.0,
    ):
        parts = urlsplit(leader_url if "//" in leader_url else f"http://{leader_url}")
        if not parts.hostname:
            raise ReplicationError(f"cannot parse leader URL: {leader_url!r}")
        self._leader_host = parts.hostname
        self._leader_port = parts.port or 80
        self.leader_url = f"http://{self._leader_host}:{self._leader_port}"
        self._fragment = fragment
        self._store = store
        self._workers = workers
        self._timeout = timeout
        self._buffer_size = buffer_size
        self._persist_dir = Path(persist_dir) if persist_dir is not None else None
        self._persist_fsync = persist_fsync
        self._retain_views = retain_views
        self._reconnect_delay = reconnect_delay
        self._http_timeout = http_timeout

        self.status = ReplicationStatus(self.leader_url)
        # The last columnar bootstrap image and its wire bytes, kept for
        # ETag-conditional re-bootstraps (304 -> restore from the cached
        # image instead of downloading it again).  Bytes-backed, so
        # dropping the references is release enough — there is no file
        # map to close, and a superseded serving window may still be
        # mid-read on another thread.
        self._image = None
        self._image_blob: bytes | None = None
        self._service = None
        self._service_lock = threading.Lock()
        self._stop = threading.Event()
        self._progress = threading.Condition()
        self._thread: threading.Thread | None = None
        self._feed_conn: HTTPConnection | None = None
        self.closed = False

    # --- public surface -----------------------------------------------------
    @property
    def service(self):
        """The current serving :class:`ReasoningService` (never capture
        across requests: re-bootstrap swaps it)."""
        service = self._service
        if service is None:
            raise ReplicationError("follower has not started yet")
        return service

    @property
    def revision(self) -> int:
        """The last leader revision applied locally."""
        return self.service.revision

    def start(self) -> "Follower":
        """Build the local engine and begin tailing on a background thread."""
        if self.closed:
            raise ReplicationError("follower is closed")
        if self._thread is not None:
            return self
        self._ensure_service()
        self._thread = threading.Thread(
            target=self._run, name="slider-follower", daemon=True
        )
        self._thread.start()
        return self

    def serve_http(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        slow_query_seconds: float = 0.25,
    ):
        """Serve this follower's read API over HTTP (like ``serve()``).

        The server resolves :attr:`service` per request, so re-bootstrap
        swaps are transparent to connected clients.
        """
        from ..server.http import ReasoningHTTPServer

        server = ReasoningHTTPServer(
            (host, port),
            service_provider=lambda: self.service,
            verbose=verbose,
            slow_query_seconds=slow_query_seconds,
        )
        thread = threading.Thread(
            target=server.serve_forever, name="slider-follower-http", daemon=True
        )
        thread.start()
        return server, thread

    def _mid_hydration(self) -> bool:
        """True while a bootstrap image serves ahead of the real engine."""
        from .bootstrap import ColumnarBootstrapService

        return isinstance(self._service, ColumnarBootstrapService)

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the replica first catches up to the leader.

        This waits past any lazy-hydration window too: callers of the
        in-process API get the real engine behind :attr:`service`.
        ``/readyz`` itself flips earlier — as soon as a mapped bootstrap
        image is serving reads.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._progress:
            while (
                not self.status.ready or self._mid_hydration()
            ) and not self.closed:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._progress.wait(remaining)
        return self.status.ready

    def wait_for_revision(self, revision: int, timeout: float | None = None) -> bool:
        """Block until the replica is synced through ``revision``.

        "Synced through" means every content-bearing leader revision at
        or below it is committed locally — trailing *empty* leader
        revisions are covered by the feed's watermark.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._progress:
            while (
                self.status.synced_revision < revision or self._mid_hydration()
            ) and not self.closed:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._progress.wait(remaining)
        return self.status.synced_revision >= revision

    def close(self) -> None:
        """Stop tailing and shut the local service down."""
        if self.closed:
            return
        self.closed = True
        self._stop.set()
        conn = self._feed_conn
        if conn is not None:
            try:
                conn.close()  # unblocks the tailing thread's readline
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        with self._service_lock:
            service, self._service = self._service, None
        if service is not None:
            service.close()
        self._image = None
        self._image_blob = None
        with self._progress:
            self._progress.notify_all()

    def __enter__(self) -> "Follower":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --- leader HTTP --------------------------------------------------------
    def _leader_request(
        self, path: str, headers: dict[str, str] | None = None
    ) -> tuple[int, bytes]:
        conn = HTTPConnection(
            self._leader_host, self._leader_port, timeout=self._http_timeout
        )
        try:
            conn.request("GET", path, headers=headers or {})
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _leader_json(self, path: str) -> dict:
        status, body = self._leader_request(path)
        if status != 200:
            raise ReplicationError(f"leader {path} returned {status}")
        return json.loads(body)

    def _discover_fragment(self) -> str:
        if self._fragment is not None:
            return self._fragment
        stats = self._leader_json("/stats")
        self._fragment = stats["engine"]["fragment"]
        return self._fragment

    # --- engine / service lifecycle -----------------------------------------
    def _build_service(self, reasoner: Slider):
        from ..server.service import ReasoningService

        reasoner.settle()  # quiescent before views; no revision consumed
        service = ReasoningService(
            reasoner=reasoner,
            retain_views=self._retain_views,
            role="follower",
            quiesce=False,
        )
        service.leader_url = self.leader_url
        service.replication = self.status
        return service

    def _ensure_service(self) -> None:
        """First start: recover locally when durable, else start fresh."""
        if self._service is not None:
            return
        fragment = self._discover_fragment()
        reasoner = Slider(
            fragment=fragment,
            store=self._store,
            workers=self._workers,
            timeout=self._timeout,
            buffer_size=self._buffer_size,
            persist_dir=self._persist_dir,
            persist_fsync=self._persist_fsync,
        )
        self._swap_service(self._build_service(reasoner))
        self._note_progress(applied=reasoner.revision)

    def _swap_service(self, service) -> None:
        with self._service_lock:
            old, self._service = self._service, service
        if old is not None:
            old.close()

    def _fetch_image(self) -> tuple:
        """``GET /snapshot?format=v2``, reusing the cached image on 304.

        The conditional request carries the cached image's revision as
        ``If-None-Match``: when the leader's snapshot revision has not
        moved (a re-bootstrap forced by WAL compaction, not by new
        data), the answer is a body-less 304 and the previously
        downloaded image is restored from instead of re-downloaded.
        Pre-v2 leaders ignore the ``format`` parameter and serve v1 —
        ``parse_snapshot`` dispatches on the magic either way.
        """
        headers: dict[str, str] = {}
        cached = self._image
        if cached is not None:
            headers["If-None-Match"] = f'"{cached.revision}"'
        status, blob = self._leader_request("/snapshot?format=v2", headers=headers)
        if status == 304 and cached is not None:
            self.status.snapshot_reuses += 1
            return cached, self._image_blob
        if status != 200:
            raise ReplicationError(f"leader /snapshot returned {status}")
        try:
            snapshot = parse_snapshot(blob, source=f"{self.leader_url}/snapshot")
        except SnapshotError as error:
            raise ReplicationError(f"leader snapshot is invalid: {error}") from None
        from ..persist.columnar import ColumnarSnapshot

        if isinstance(snapshot, ColumnarSnapshot):
            self._image, self._image_blob = snapshot, blob
        return snapshot, blob

    def _bootstrap(self) -> None:
        """Fetch the leader's snapshot and rebuild the local engine.

        With a columnar (v2) image the replica starts serving *before*
        hydration: a :class:`ColumnarBootstrapService` over the mapped
        columns is swapped in as soon as the image parses — ``/readyz``
        flips immediately, because the image is a complete committed
        leader revision — and the expensive rebuild of the mutable
        engine proceeds behind it on this (the tailing) thread.  With a
        v1 image the old service keeps answering reads until the new
        engine is ready (non-durable) or until the state directory must
        be handed over (durable — the brief window surfaces as 503s,
        and ``/readyz`` already reports not-ready).
        """
        from ..persist.columnar import ColumnarSnapshot
        from .bootstrap import ColumnarBootstrapService

        self.status.ready = False
        snapshot, blob = self._fetch_image()
        self._fragment = snapshot.fragment or self._fragment
        columnar = isinstance(snapshot, ColumnarSnapshot)
        if columnar:
            image_service = ColumnarBootstrapService(
                snapshot, blob, replication=self.status, leader_url=self.leader_url
            )
            self._swap_service(image_service)
            # The bootstrap *is* serving now — counter and readiness
            # flip here, not after hydration.
            self.status.note_bootstrap()
            with self._progress:
                self.status.applied_revision = snapshot.revision
                self.status.synced_revision = snapshot.revision
                self.status.leader_revision = snapshot.revision
                self.status.ready = True  # the mapped image is serving
                self._progress.notify_all()
        if self._persist_dir is not None:
            # The durable replica's history is superseded wholesale: the
            # old files must go before a fresh engine can own the
            # directory (the directory lock is released when the swap
            # closed the old service; the image service holds no files).
            if not columnar:
                self._swap_service(None)
            for name in (SNAPSHOT_FILENAME, JOURNAL_FILENAME):
                stale = self._persist_dir / name
                if stale.exists():
                    stale.unlink()
        reasoner = Slider(
            fragment=self._fragment,
            store=self._store,
            workers=self._workers,
            timeout=self._timeout,
            buffer_size=self._buffer_size,
            persist_dir=self._persist_dir,
            persist_fsync=self._persist_fsync,
        )
        try:
            reasoner.restore_snapshot(snapshot)
        except SliderError:
            reasoner.close()
            raise
        self._swap_service(self._build_service(reasoner))
        if not columnar:
            self.status.note_bootstrap()
        # A bootstrap is a lineage reset: the watermark from the old
        # stream is void (a wiped-and-replaced leader may legitimately
        # stand *below* it — carrying the old maximum forward would
        # re-trigger the stale-leader check forever).
        with self._progress:
            self.status.applied_revision = snapshot.revision
            self.status.synced_revision = snapshot.revision
            self.status.leader_revision = snapshot.revision
            self._progress.notify_all()

    # --- the tailing loop ---------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._tail_feed()
            except _NeedBootstrap:
                try:
                    self._bootstrap()
                    continue  # reconnect immediately from the new revision
                except Exception as error:  # noqa: BLE001 - keep serving reads
                    self.status.last_error = f"bootstrap: {error}"
            except (OSError, HTTPException, FeedWireError, ReplicationError) as error:
                if not self._stop.is_set():
                    self.status.last_error = str(error)
            except Exception as error:  # noqa: BLE001 - never kill the replica
                self.status.last_error = f"{type(error).__name__}: {error}"
            self.status.connected = False
            if self._stop.wait(self._reconnect_delay):
                return
            self.status.reconnects += 1

    def _tail_feed(self) -> None:
        from .bootstrap import ColumnarBootstrapService

        if self._service is None or isinstance(
            self._service, ColumnarBootstrapService
        ):
            # A bootstrap that failed mid-way: either the durable
            # directory handover left no service at all, or hydration
            # died behind a still-serving image service (which cannot
            # apply feed records).  Only a fresh bootstrap moves things
            # forward — and with a cached image it is a 304, not a
            # re-download.
            raise _NeedBootstrap()
        # Resume from the synced watermark (maximal: past any trailing
        # empty leader revisions), never below the engine's revision.
        cursor = max(self.service.revision, self.status.synced_revision)
        conn = HTTPConnection(
            self._leader_host, self._leader_port, timeout=FEED_SOCKET_TIMEOUT
        )
        self._feed_conn = conn
        try:
            conn.request(
                "GET", f"/feed?from={cursor}", headers={"Last-Event-ID": str(cursor)}
            )
            response = conn.getresponse()
            if response.status == 410:
                response.read()
                raise _NeedBootstrap()
            if response.status != 200:
                raise ReplicationError(f"leader /feed returned {response.status}")
            self.status.connected = True
            self.status.last_error = None
            target = None
            for event in _read_sse(response):
                if self._stop.is_set():
                    return
                if event.event == "hello":
                    hello = json.loads(event.data)
                    target = int(hello["revision"])
                    if target < cursor:
                        # The leader is behind us: different lineage
                        # (wiped/replaced leader) — our history is void.
                        raise _NeedBootstrap()
                    self._note_progress(leader=target)
                elif event.event == "commit":
                    record = FeedRecord.parse(event.data)
                    self._apply_record(record)
                elif event.event == "watermark":
                    watermark = int(json.loads(event.data)["revision"])
                    self._note_progress(
                        synced=watermark,
                        leader=max(self.status.leader_revision, watermark),
                    )
                elif event.event == "gone":
                    raise _NeedBootstrap()
                if target is not None and self.status.synced_revision >= target:
                    self._mark_ready()
        finally:
            self._feed_conn = None
            conn.close()

    def _apply_record(self, record: FeedRecord) -> None:
        service = self.service
        if record.revision <= service.revision:
            return  # duplicate delivery (reconnect race): already applied
        service.commit_replicated(record.revision, record.to_delta())
        self.status.note_applied()
        self._note_progress(
            applied=record.revision,
            leader=max(self.status.leader_revision, record.revision),
        )

    def _note_progress(
        self,
        applied: int | None = None,
        leader: int | None = None,
        synced: int | None = None,
    ):
        with self._progress:
            if applied is not None:
                self.status.applied_revision = applied
                self.status.synced_revision = max(
                    self.status.synced_revision, applied
                )
            if synced is not None:
                self.status.synced_revision = max(
                    self.status.synced_revision, synced
                )
            if leader is not None:
                self.status.leader_revision = leader
            self._progress.notify_all()

    def _mark_ready(self) -> None:
        if not self.status.ready:
            self.status.ready = True
            with self._progress:
                self._progress.notify_all()

    def __repr__(self):
        return f"<Follower of {self.leader_url} {self.status!r}>"
