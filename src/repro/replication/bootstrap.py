"""Pre-hydration serving: answer reads straight off a bootstrap image.

A classic follower bootstrap is serially expensive: download the
snapshot, decode every term, rebuild the mutable store, *then* start
serving.  With a columnar (v2) image none of that work is needed to
answer a query — the image's sorted id columns already support every
read pattern (:class:`~repro.store.backends.columnar.ColumnarReadStore`)
and its term blob decodes lazily per id.

:class:`ColumnarBootstrapService` exploits that: the follower swaps it
in the moment the image is parsed, ``/readyz`` flips to ready (the
replica serves a complete committed leader revision — exactly the
monotonic-prefix contract), and full hydration into the real engine
proceeds on the tailing thread behind it.  The service duck-types the
slice of :class:`~repro.server.service.ReasoningService` the HTTP
front end uses; the operations that genuinely need the mutable engine
(writes, subscriptions, historical ``at=`` pins) answer 503/410 for
the short hydration window.

:class:`ColumnarTermView` is the read half of a
:class:`~repro.dictionary.encoder.TermDictionary` over the image's
term blob: ids decode lazily (memoized), and the term -> id direction
materializes once, on the first constant-bearing query — still far
cheaper than store hydration, and paid only if a query needs it.
"""

from __future__ import annotations

import threading

from ..rdf.terms import Literal, Term, Triple
from ..server.service import ServiceClosedError
from ..server.views import RevisionGoneError
from ..store.backends.columnar import ColumnarReadStore
from ..store.graph import Graph

__all__ = ["ColumnarBootstrapService", "ColumnarTermView"]


class ColumnarTermView:
    """Read-only term <-> id mapping over a columnar image's blob.

    Covers what :class:`~repro.store.graph.Graph` needs for reads:
    ``lookup`` / ``decode`` / ``decode_triple`` (plus the rule guards'
    ``kind``/``is_literal``).  Encoding raises — the image is immutable,
    so no query can mint a term id.
    """

    __slots__ = ("_snapshot", "_decoded", "_reverse", "_lock")

    def __init__(self, snapshot):
        self._snapshot = snapshot
        self._decoded: dict[int, Term] = {}
        self._reverse: dict[Term, int] | None = None
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._snapshot.term_count

    def __contains__(self, term: Term) -> bool:
        return self.lookup(term) is not None

    def decode(self, term_id: int) -> Term:
        term = self._decoded.get(term_id)
        if term is None:
            if not 0 <= term_id < self._snapshot.term_count:
                raise KeyError(f"unknown term id {term_id}")
            term = self._snapshot.term(term_id)
            self._decoded[term_id] = term
        return term

    def decode_triple(self, encoded) -> Triple:
        subject_id, predicate_id, object_id = encoded
        return Triple(
            self.decode(subject_id),
            self.decode(predicate_id),
            self.decode(object_id),
        )

    def lookup(self, term: Term) -> int | None:
        reverse = self._reverse
        if reverse is None:
            with self._lock:
                reverse = self._reverse
                if reverse is None:
                    decode = self.decode
                    reverse = {
                        decode(i): i for i in range(self._snapshot.term_count)
                    }
                    self._reverse = reverse
        return reverse.get(term)

    def is_literal(self, term_id: int) -> bool:
        return isinstance(self.decode(term_id), Literal)

    def kind(self, term_id: int) -> int:
        from ..dictionary.encoder import KIND_BNODE, KIND_IRI, KIND_LITERAL
        from ..rdf.terms import BNode

        term = self.decode(term_id)
        if isinstance(term, Literal):
            return KIND_LITERAL
        if isinstance(term, BNode):
            return KIND_BNODE
        return KIND_IRI

    def encode(self, term: Term) -> int:
        term_id = self.lookup(term)
        if term_id is None:
            raise TypeError(
                "a bootstrap image's term table is immutable; "
                f"cannot assign an id to {term!r}"
            )
        return term_id

    def snapshot_terms(self) -> list[Term]:
        return list(self._snapshot.terms)


class ColumnarBootstrapService:
    """A read-only stand-in service over a mapped bootstrap image.

    Swapped in by :meth:`~repro.replication.follower.Follower._bootstrap`
    before hydration starts and out once the real engine is rebuilt.
    Serves the read API (``/select``/``/ask``/``/construct``/
    ``/triples``/``/stats``/``/healthz``/``/readyz``/``/snapshot``) at
    exactly the image's revision; writes 307-forward to the leader (the
    HTTP layer handles that from ``role``/``leader_url`` alone), and
    subscriptions/pinned-revision reads answer for the hydration window
    with 503/410 respectively.
    """

    role = "follower"
    #: No outgoing change feed while bootstrapping (``/feed`` -> 404).
    feed = None

    def __init__(self, snapshot, blob: bytes, *, replication, leader_url=None):
        self.snapshot = snapshot
        self._blob = blob
        self.store = ColumnarReadStore(snapshot)
        self.dictionary = ColumnarTermView(snapshot)
        self.replication = replication
        self.leader_url = leader_url
        self.closed = False

    # --- read path ----------------------------------------------------------
    @property
    def revision(self) -> int:
        return self.snapshot.revision

    def graph(self, at: int | None = None) -> Graph:
        self._check_open()
        if at is not None and at != self.snapshot.revision:
            raise RevisionGoneError(
                f"revision {at} is not retained while the replica hydrates "
                f"its bootstrap image (serving revision {self.snapshot.revision})"
            )
        return Graph(self.dictionary, self.store)

    @property
    def ready(self) -> bool:
        """The mapped image serves a complete committed revision."""
        return not self.closed

    @property
    def replication_lag(self) -> int:
        if self.replication is not None:
            return self.replication.lag
        return 0

    def snapshot_bytes(self, format: str | None = None) -> bytes:
        """The image exactly as downloaded (chained bootstraps)."""
        self._check_open()
        return self._blob

    @property
    def reasoner(self):
        # The HTTP snapshot endpoint reads ``service.reasoner.revision``;
        # pre-hydration the image *is* the engine state.
        return _RevisionOnly(self.snapshot.revision)

    def stats(self) -> dict:
        self._check_open()
        return {
            "revision": self.snapshot.revision,
            "role": self.role,
            "ready": self.ready,
            "bootstrap": {
                "hydrating": True,
                "image_bytes": len(self._blob),
                "terms": self.snapshot.term_count,
            },
            "replication": (
                None if self.replication is None else self.replication.as_dict()
            ),
            "feed": None,
            "triples": len(self.store),
            "engine": {
                "fragment": self.snapshot.fragment,
                "revision": self.snapshot.revision,
                "store": self.store.stats(),
            },
            "views": {
                "retained": [self.snapshot.revision],
                "current": self.snapshot.revision,
            },
            "subscriptions": 0,
        }

    # --- unavailable while hydrating ----------------------------------------
    def _hydrating(self, *_args, **_kwargs):
        raise ServiceClosedError(
            "replica is hydrating its bootstrap image; retry shortly "
            "(reads stay available at the image revision)"
        )

    apply = submit = commit_replicated = _hydrating
    subscribe = subscribe_channel = _hydrating

    # --- lifecycle ----------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise ServiceClosedError("bootstrap image service is closed")

    def close(self) -> None:
        """Stop serving.  The image itself belongs to the follower (it
        may be reused for the next bootstrap), so the map stays open."""
        self.closed = True

    def __enter__(self) -> "ColumnarBootstrapService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self):
        state = "closed" if self.closed else "serving"
        return (
            f"<ColumnarBootstrapService {state} "
            f"revision={self.snapshot.revision} triples={len(self.store)}>"
        )


class _RevisionOnly:
    """The one engine attribute the HTTP layer needs pre-hydration."""

    __slots__ = ("revision",)

    def __init__(self, revision: int):
        self.revision = revision
