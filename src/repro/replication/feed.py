"""The leader-side change feed: committed deltas as resumable wire records.

Replication ships exactly what the write-ahead changelog journals: each
content-bearing revision's *requested* term-level delta.  A follower
replays those records through :meth:`~repro.reasoner.engine.Slider.apply_at`
— the same pipeline recovery uses — and arrives at the identical
closure under the identical revision ids.

Wire format
-----------

One :class:`FeedRecord` encodes as a small line-oriented text block —
N-Triples statements stamped with a revision id and a CRC (an
"N-Quads-ish" record: the fourth dimension is the revision):

.. code-block:: text

    slider-delta rev=42 assert=2 retract=1 crc=9f0c1a2b
    +<http://ex/a> <http://ex/p> <http://ex/b> .
    +<http://ex/b> <http://ex/p> <http://ex/c> .
    -<http://ex/stale> <http://ex/p> <http://ex/x> .

``+`` lines are assertions, ``-`` lines retractions, in order; the CRC
is over the statement lines, so transport corruption is detected before
a single triple reaches a replica's store.  Statements parse with the
library's N-Triples grammar (the same parsers ``POST /apply`` uses).

Resumability
------------

:class:`ChangeFeed` retains a ring of recent records in memory and, on
a durable leader, falls back to reading the retained WAL for older
revisions.  ``records_after(from)`` raises :class:`FeedTruncatedError`
when the requested revision predates both — compaction truncated the
WAL — and the follower re-bootstraps from ``GET /snapshot`` instead
(the HTTP layer maps the error to ``410 Gone``).
"""

from __future__ import annotations

import re
import threading
import zlib
from collections import OrderedDict
from typing import Sequence

from ..obs import instruments as _obs
from ..persist.journal import JournalError, read_journal
from ..persist.manager import JOURNAL_FILENAME
from ..rdf.terms import Triple
from ..reasoner.delta import Delta
from ..server.views import RevisionGoneError
from ..server.wire import PatternSyntaxError, parse_statements

__all__ = [
    "FeedRecord",
    "FeedWireError",
    "FeedTruncatedError",
    "ChangeFeed",
    "DEFAULT_FEED_RETAIN",
]

#: Committed records the in-memory ring keeps before evicting (durable
#: leaders keep serving older revisions from the WAL until compaction).
DEFAULT_FEED_RETAIN = 1024

_HEADER_RE = re.compile(
    r"^slider-delta rev=(\d+) assert=(\d+) retract=(\d+) crc=([0-9a-f]{8})$"
)


class FeedWireError(ValueError):
    """A feed record failed to parse or failed its CRC."""


class FeedTruncatedError(RevisionGoneError):
    """The requested resume revision was compacted away (HTTP 410).

    A :class:`~repro.server.views.RevisionGoneError` subclass — same
    ``at=N`` semantics, same 410 mapping in the HTTP layer.  Carries
    ``oldest`` — the smallest ``from`` still resumable — so the client
    knows a snapshot bootstrap is the only way forward.
    """

    def __init__(self, requested: int, oldest: int):
        super().__init__(
            f"cannot resume from revision {requested}: the feed starts at "
            f"{oldest} (older records were compacted away; bootstrap from "
            "/snapshot instead)"
        )
        self.requested = requested
        self.oldest = oldest
        _obs.REPLICATION_TRUNCATIONS.inc()


class FeedRecord:
    """One committed revision's requested delta, transport-ready."""

    __slots__ = ("revision", "assertions", "retractions", "_wire")

    def __init__(
        self,
        revision: int,
        assertions: Sequence[Triple] = (),
        retractions: Sequence[Triple] = (),
    ):
        self.revision = revision
        self.assertions = tuple(assertions)
        self.retractions = tuple(retractions)
        self._wire: str | None = None

    def to_delta(self) -> Delta:
        """The record as an applicable :class:`Delta`."""
        return Delta(assertions=self.assertions, retractions=self.retractions)

    # --- wire ---------------------------------------------------------------
    def encode(self) -> str:
        """The record as its multi-line wire text (no trailing newline).

        Memoized: the record is immutable and every connected consumer
        ships the same bytes, so the N-Triples rendering and CRC are
        paid once, not once per follower.
        """
        if self._wire is not None:
            return self._wire
        body = [f"+{t.n3()}" for t in self.assertions]
        body += [f"-{t.n3()}" for t in self.retractions]
        crc = zlib.crc32("\n".join(body).encode("utf-8"))
        head = (
            f"slider-delta rev={self.revision} assert={len(self.assertions)} "
            f"retract={len(self.retractions)} crc={crc:08x}"
        )
        self._wire = "\n".join([head] + body)
        return self._wire

    @classmethod
    def parse(cls, text: str) -> "FeedRecord":
        """Parse and verify one wire record; raises :class:`FeedWireError`."""
        lines = text.split("\n")
        match = _HEADER_RE.match(lines[0].strip())
        if match is None:
            raise FeedWireError(f"bad feed record header: {lines[0]!r}")
        revision = int(match.group(1))
        n_assert, n_retract = int(match.group(2)), int(match.group(3))
        body = lines[1:]
        if len(body) != n_assert + n_retract:
            raise FeedWireError(
                f"feed record rev={revision} declares {n_assert}+{n_retract} "
                f"statements but carries {len(body)} lines"
            )
        crc = zlib.crc32("\n".join(body).encode("utf-8"))
        if f"{crc:08x}" != match.group(4):
            raise FeedWireError(
                f"feed record rev={revision} failed its CRC "
                f"(got {crc:08x}, header says {match.group(4)})"
            )
        adds, rems = [], []
        for index, line in enumerate(body):
            if line.startswith("+"):
                adds.append(line[1:])
            elif line.startswith("-"):
                rems.append(line[1:])
            else:
                raise FeedWireError(
                    f"feed record rev={revision} line {index + 1} has no "
                    f"+/- marker: {line!r}"
                )
        if len(adds) != n_assert or len(rems) != n_retract:
            raise FeedWireError(
                f"feed record rev={revision} marker counts disagree with "
                "its header"
            )
        try:
            assertions = parse_statements(adds)
            retractions = parse_statements(rems)
        except PatternSyntaxError as error:
            raise FeedWireError(
                f"feed record rev={revision} carries a malformed statement: "
                f"{error}"
            ) from None
        return cls(revision, assertions, retractions)

    def __repr__(self):
        return (
            f"<FeedRecord rev={self.revision} "
            f"+{len(self.assertions)} -{len(self.retractions)}>"
        )


class ChangeFeed:
    """Leader-side record source backing ``GET /feed``.

    Attaches to a :class:`~repro.server.service.ReasoningService` by
    registering an engine commit listener: every content-bearing
    revision lands in an in-memory ring (and, on a durable leader, is
    independently in the WAL).  Consumers pull with
    :meth:`records_after` / :meth:`wait` using *cursor semantics*: pass
    the last revision already applied, receive everything after it.

    Retention: the ring keeps ``retain`` records.  A durable leader
    additionally serves anything still in the changelog — i.e. every
    content revision since the last snapshot/compaction.  Requests
    below both floors raise :class:`FeedTruncatedError`.
    """

    def __init__(self, service, retain: int = DEFAULT_FEED_RETAIN):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.service = service
        self.retain = retain
        reasoner = service.reasoner
        self.fragment = reasoner.fragment.name
        self._persist = reasoner.persistence
        self._journal_path = (
            reasoner.persist_dir / JOURNAL_FILENAME
            if reasoner.persist_dir is not None
            else None
        )
        self._cond = threading.Condition()
        self._records: "OrderedDict[int, FeedRecord]" = OrderedDict()
        # Revisions <= _ring_floor are not (or no longer) in the ring.
        self._ring_floor = reasoner.revision
        self._latest = reasoner.revision
        self.closed = False
        reasoner.add_commit_listener(self._on_commit)
        service.attach_feed(self)

    # --- engine side --------------------------------------------------------
    def _on_commit(self, revision: int, assertions, retractions) -> None:
        """Commit listener: runs under the engine's commit lock.

        Content-bearing revisions enter the ring; *every* revision
        advances :attr:`latest_revision` — the feed's watermark — so a
        follower can track the leader's revision counter even through
        empty commits (bare flushes, no-op re-assertions), which ship no
        record.  Ring insert and watermark advance share one lock, so a
        consumer that drains records and reads the watermark atomically
        can never fast-forward past an unseen record.
        """
        with self._cond:
            if assertions or retractions:
                self._records[revision] = FeedRecord(revision, assertions, retractions)
                while len(self._records) > self.retain:
                    evicted, _ = self._records.popitem(last=False)
                    self._ring_floor = max(self._ring_floor, evicted)
            self._latest = max(self._latest, revision)
            self._cond.notify_all()

    # --- consumer side ------------------------------------------------------
    @property
    def latest_revision(self) -> int:
        """The newest feed-visible revision."""
        return self._latest

    def oldest_resumable(self) -> int:
        """The smallest cursor (``from``) this feed can still serve."""
        floor = self._ring_floor
        if self._persist is not None:
            floor = min(floor, self._persist.last_snapshot_revision)
        return floor

    def check_resumable(self, cursor: int) -> None:
        """Cheap pre-flight for ``GET /feed``: raises the same
        :class:`FeedTruncatedError` a collect would, without touching
        the WAL (the stream's first ``wait`` does the actual read)."""
        if cursor < self.oldest_resumable():
            raise FeedTruncatedError(cursor, self.oldest_resumable())

    def records_after(self, cursor: int) -> list[FeedRecord]:
        """Every retained record with ``revision > cursor``, in order.

        Raises :class:`FeedTruncatedError` when records between
        ``cursor`` and the retained window were compacted away.
        """
        return self._collect(cursor)[0]

    def _ring_after(self, cursor: int) -> list[FeedRecord]:
        """Ring records past ``cursor`` (caller holds the lock)."""
        return [r for r in self._records.values() if r.revision > cursor]

    def _collect(self, cursor: int) -> tuple[list[FeedRecord], int]:
        """Gather ``(records after cursor, watermark)``.

        The steady state (cursor within the ring) runs entirely under
        the feed lock; the catch-up state additionally reads the WAL
        *outside* the lock — the file scan must never stall committing
        writers, whose ``_on_commit`` runs under the engine commit lock
        and takes this lock.  The final merge re-acquires the lock and
        re-checks the compaction floor (raised *before* truncation), so
        a raced compaction or a failed WAL read surfaces as
        :class:`FeedTruncatedError` — a forced re-bootstrap — never as
        a silently incomplete record stream.
        """
        with self._cond:
            if cursor >= self._ring_floor:
                return self._ring_after(cursor), self._latest
            if self._persist is None or cursor < self._persist.last_snapshot_revision:
                raise FeedTruncatedError(cursor, self.oldest_resumable())
        wal = self._wal_records(cursor)  # file read + parse: no lock held
        with self._cond:
            if wal is None or cursor < self._persist.last_snapshot_revision:
                raise FeedTruncatedError(cursor, self.oldest_resumable())
            merged: dict[int, FeedRecord] = {r.revision: r for r in wal}
            for record in self._ring_after(cursor):
                merged[record.revision] = record
            return [merged[revision] for revision in sorted(merged)], self._latest

    def _wal_records(self, cursor: int) -> "list[FeedRecord] | None":
        """Records newer than ``cursor`` read back from the changelog.

        The WAL is read-only here (truncation belongs to recovery and
        compaction); a torn tail simply ends the scan — the in-memory
        ring always holds the newest records anyway.  A changelog that
        does not exist yet has no records (``[]``); one that exists but
        cannot be read returns ``None`` — the caller must refuse to
        serve rather than ship a stream with a silent gap.
        """
        try:
            records, _durable, _fragment = read_journal(self._journal_path)
        except FileNotFoundError:
            return []
        except (OSError, JournalError):
            return None
        return [
            FeedRecord(r.revision, r.assertions, r.retractions)
            for r in records
            if r.revision > cursor
        ]

    def wait(
        self, cursor: int, timeout: float | None = None
    ) -> tuple[list[FeedRecord], int]:
        """Block until the feed moves past ``cursor``; returns
        ``(records, watermark)``.

        The watermark is the latest committed revision, captured under
        the same lock as the final record gather: every content record
        at or below it is either already consumed (``<= cursor``) or in
        ``records``, so a consumer may treat the stream as complete
        through it — revisions in between were empty.
        """
        records, watermark = self._collect(cursor)
        if records or watermark > cursor or self.closed:
            return records, watermark
        with self._cond:
            # Re-check under the lock: a commit landing between the
            # collect above and this wait would otherwise be missed
            # until the next heartbeat.
            if not (self._latest > cursor or self.closed):
                self._cond.wait(timeout)
        return self._collect(cursor)

    # --- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Detach from the engine and wake every blocked consumer."""
        if self.closed:
            return
        self.closed = True
        self.service.reasoner.remove_commit_listener(self._on_commit)
        with self._cond:
            self._cond.notify_all()

    def stats(self) -> dict:
        """JSON-ready summary for ``/stats``."""
        with self._cond:
            return {
                "retained_records": len(self._records),
                "latest_revision": self._latest,
                "oldest_resumable": self.oldest_resumable(),
                "wal_backed": self._journal_path is not None,
            }

    def __repr__(self):
        return (
            f"<ChangeFeed latest={self._latest} ring={len(self._records)} "
            f"floor={self._ring_floor}>"
        )
