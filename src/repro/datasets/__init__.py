"""Benchmark ontology generators: BSBM-like, subClassOf chains, real-world."""

from .bsbm import BSBM, BSBM_INST, PAPER_BSBM_SIZES, bsbm_tbox, generate_bsbm, iter_bsbm
from .loader import (
    DEFAULT_SCALE,
    TABLE1_ORDER,
    DatasetSpec,
    dataset_names,
    dataset_spec,
    load_dataset,
)
from .realworld import (
    PAPER_WIKIPEDIA_SIZE,
    PAPER_WORDNET_SIZE,
    generate_wikipedia,
    generate_wordnet,
    iter_wikipedia,
    iter_wordnet,
)
from .subclass_chains import (
    CHAIN_NS,
    PAPER_CHAIN_SIZES,
    chain_class,
    expected_input_size,
    expected_rhodf_inferences,
    subclass_chain,
)

__all__ = [
    "generate_bsbm",
    "iter_bsbm",
    "bsbm_tbox",
    "BSBM",
    "BSBM_INST",
    "PAPER_BSBM_SIZES",
    "generate_wikipedia",
    "iter_wikipedia",
    "generate_wordnet",
    "iter_wordnet",
    "PAPER_WIKIPEDIA_SIZE",
    "PAPER_WORDNET_SIZE",
    "subclass_chain",
    "chain_class",
    "expected_input_size",
    "expected_rhodf_inferences",
    "CHAIN_NS",
    "PAPER_CHAIN_SIZES",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "dataset_spec",
    "TABLE1_ORDER",
    "DEFAULT_SCALE",
]
