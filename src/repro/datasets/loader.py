"""Named dataset registry — the paper's 13-ontology benchmark suite.

Maps the names of Table 1's rows to generator calls, with a global
``scale`` knob: the paper ran JVM-scale sizes (100k – 5M triples); a
pure-Python reproduction defaults to ``scale=0.05`` (5 %) so the full
Table 1 sweep completes in minutes, and accepts ``scale=1.0`` to run the
paper's exact sizes when given the time.  subClassOf chains are *not*
scaled — they are small and their closure is the point.

>>> from repro.datasets import load_dataset, dataset_names
>>> triples = load_dataset("BSBM_100k", scale=0.05)   # ≈ 5 000 triples
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..rdf.terms import Triple
from .bsbm import PAPER_BSBM_SIZES, generate_bsbm
from .realworld import (
    PAPER_WIKIPEDIA_SIZE,
    PAPER_WORDNET_SIZE,
    generate_wikipedia,
    generate_wordnet,
)
from .subclass_chains import PAPER_CHAIN_SIZES, subclass_chain

__all__ = [
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "dataset_spec",
    "TABLE1_ORDER",
    "DEFAULT_SCALE",
]

#: Default size multiplier for the scalable (generated) ontologies.
DEFAULT_SCALE = 0.05

#: Row order of Table 1 / x-axis order of Figure 3.
TABLE1_ORDER = (
    "BSBM_100k",
    "BSBM_200k",
    "BSBM_500k",
    "BSBM_1M",
    "BSBM_5M",
    "wikipedia",
    "wordnet",
    "subClassOf10",
    "subClassOf20",
    "subClassOf50",
    "subClassOf100",
    "subClassOf200",
    "subClassOf500",
)


class DatasetSpec:
    """One named ontology: how to generate it and its paper-reported size."""

    __slots__ = ("name", "paper_size", "scalable", "_generator")

    def __init__(
        self,
        name: str,
        paper_size: int,
        generator: Callable[[int], Sequence[Triple]],
        scalable: bool = True,
    ):
        self.name = name
        self.paper_size = paper_size
        self.scalable = scalable
        self._generator = generator

    def generate(self, scale: float = DEFAULT_SCALE) -> list[Triple]:
        """Generate the ontology at ``scale`` × the paper's size."""
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if not self.scalable:
            return list(self._generator(self.paper_size))
        target = max(200, int(self.paper_size * scale))
        return list(self._generator(target))

    def __repr__(self):
        return f"DatasetSpec({self.name!r}, paper_size={self.paper_size})"


def _build_registry() -> dict[str, DatasetSpec]:
    registry: dict[str, DatasetSpec] = {}
    for name, size in PAPER_BSBM_SIZES.items():
        registry[name] = DatasetSpec(name, size, generate_bsbm)
    registry["wikipedia"] = DatasetSpec("wikipedia", PAPER_WIKIPEDIA_SIZE, generate_wikipedia)
    registry["wordnet"] = DatasetSpec("wordnet", PAPER_WORDNET_SIZE, generate_wordnet)
    for n in PAPER_CHAIN_SIZES:
        registry[f"subClassOf{n}"] = DatasetSpec(
            f"subClassOf{n}",
            2 * n - 1,
            lambda _size, n=n: subclass_chain(n),
            scalable=False,
        )
    return registry


_REGISTRY = _build_registry()


def dataset_names() -> list[str]:
    """All registered dataset names in Table 1 order."""
    return [name for name in TABLE1_ORDER if name in _REGISTRY]


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        ) from None


def load_dataset(name: str, scale: float = DEFAULT_SCALE) -> list[Triple]:
    """Generate a named ontology (see :data:`TABLE1_ORDER`)."""
    return dataset_spec(name).generate(scale)
