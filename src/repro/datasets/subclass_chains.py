"""The paper's subClassOf_n chain ontologies (§3, Equation 1).

For a chain length ``n`` the ontology is::

    <1, type, Class>
    <i, type, Class>            i ∈ {2, 3, ..., n}
    <i, subClassOf, i-1>        i ∈ {2, 3, ..., n}

"These ontologies are easy to generate but provide the utmost practical
interest due to their complexity": the chain of n classes yields a
transitive closure of C(n-1, 2) unique subClassOf triples under ρdf,
while naive iterative schemes perform O(n³) derivations to find them —
the duplicates stress-test.
"""

from __future__ import annotations

from ..rdf.namespaces import Namespace, RDF, RDFS
from ..rdf.terms import IRI, Triple

__all__ = [
    "subclass_chain",
    "chain_class",
    "expected_rhodf_inferences",
    "expected_input_size",
    "CHAIN_NS",
    "PAPER_CHAIN_SIZES",
]

CHAIN_NS = Namespace("http://slider.repro/chain#")

#: Chain lengths used in Table 1 / Figure 3.
PAPER_CHAIN_SIZES = (10, 20, 50, 100, 200, 500)


def chain_class(index: int) -> IRI:
    """The IRI of chain class ``index`` (1-based, as in Equation 1)."""
    if index < 1:
        raise ValueError(f"chain classes are numbered from 1, got {index}")
    return CHAIN_NS[f"C{index}"]


def subclass_chain(n: int) -> list[Triple]:
    """Generate subClassOf_n exactly as Equation 1 defines it."""
    if n < 1:
        raise ValueError(f"chain length must be >= 1, got {n}")
    triples = [Triple(chain_class(1), RDF.type, RDFS.Class)]
    for i in range(2, n + 1):
        triples.append(Triple(chain_class(i), RDF.type, RDFS.Class))
        triples.append(Triple(chain_class(i), RDFS.subClassOf, chain_class(i - 1)))
    return triples


def expected_input_size(n: int) -> int:
    """Number of explicit triples in subClassOf_n: 2n - 1."""
    return 2 * n - 1


def expected_rhodf_inferences(n: int) -> int:
    """Unique ρdf inferences for subClassOf_n: C(n-1, 2).

    The closure contains every (i, subClassOf, j) with i > j + 1 — the
    paper's Table 1 column (36 for n=10, 171 for n=20, ... 124251 for
    n=500).
    """
    return (n - 1) * (n - 2) // 2
