"""Wikipedia-like and WordNet-like ontology generators (paper §3).

The paper's third category contains two "real field" ontologies: a
Wikipedia-based one (category hierarchy + typed articles) and one based
on WordNet (Snasel et al. 2005).  The dumps themselves are not shipped
with the paper; what the evaluation exercises is their *structure*, which
Table 1 pins down precisely:

* **wikipedia** — 458 369 input triples; ρdf infers 191 574 (41.8 % —
  an extensive subsumption closure over a deep category DAG plus type
  lifting for articles) and RDFS infers 555 653 (121 % — the closure
  plus one ``<x type Resource>`` per resource).  It is the one ontology
  where OWLIM-SE beats Slider under RDFS (-23 %), because nearly every
  input triple participates in some join.
* **wordnet** — 473 589 input triples; ρdf infers **0** (the dump uses
  only WordNet-specific predicates — no subClassOf/subPropertyOf/domain/
  range/type vocabulary at all) and RDFS infers 321 888 (68 % — purely
  ``<x type Resource>`` entailments, two resources per link triple).

Both generators are deterministic and scale-free: ask for any size, get
the same structural ratios.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..rdf.namespaces import Namespace, RDF, RDFS
from ..rdf.terms import IRI, Literal, Triple

__all__ = [
    "generate_wikipedia",
    "generate_wordnet",
    "iter_wikipedia",
    "iter_wordnet",
    "WIKI",
    "WORDNET",
    "PAPER_WIKIPEDIA_SIZE",
    "PAPER_WORDNET_SIZE",
]

WIKI = Namespace("http://dbpedia.org/resource/")
WIKI_CAT = Namespace("http://dbpedia.org/resource/Category:")
WIKI_ONTO = Namespace("http://dbpedia.org/ontology/")
WORDNET = Namespace("http://www.w3.org/2006/03/wn/wn20/instances/")
WN_SCHEMA = Namespace("http://www.w3.org/2006/03/wn/wn20/schema/")

PAPER_WIKIPEDIA_SIZE = 458_369
PAPER_WORDNET_SIZE = 473_589

# --- Wikipedia-like category DAG -------------------------------------------

# Category tree: _WIKI_DEPTH levels, each category has 1 primary parent and
# a second parent with probability _WIKI_EXTRA_PARENT (making it a DAG, as
# Wikipedia's category graph is).  Articles outnumber categories and carry
# 1-3 category types.
_WIKI_DEPTH = 2
_WIKI_BRANCHING = 40
# Weight of shallow (level-1) categories when typing articles; shallower
# types lift through fewer ancestors, which is what keeps the real
# Wikipedia dump's ρdf yield at ~42 % rather than exploding.
_SHALLOW_TYPE_WEIGHT = 0.6
_WIKI_EXTRA_PARENT = 0.10
_ARTICLES_PER_CATEGORY = 1.6
_TYPES_PER_ARTICLE = (1, 2)
_LITERALS_PER_ARTICLE = 2


def iter_wikipedia(target_triples: int, seed: int = 7) -> Iterator[Triple]:
    """Stream a Wikipedia-like ontology of roughly ``target_triples``.

    A deep multi-parent category DAG (subClassOf) with typed articles:
    the high-yield subsumption workload of Table 1's wikipedia row.
    """
    if target_triples < 100:
        raise ValueError(f"target too small for the wikipedia shape: {target_triples}")
    rng = random.Random(seed)

    # Solve for the category count: each category emits ~1.25 subClassOf;
    # each article emits 1 label + ~2 types; articles = 1.6 * categories.
    avg_types = sum(_TYPES_PER_ARTICLE) / 2
    per_category = 1 + _WIKI_EXTRA_PARENT + _ARTICLES_PER_CATEGORY * (
        1 + _LITERALS_PER_ARTICLE + avg_types
    )
    n_categories = max(_WIKI_BRANCHING * 2, int(target_triples / per_category))

    # Build the DAG level by level.
    levels: list[list[IRI]] = [[WIKI_CAT.Main_topic]]
    created = 1
    yield Triple(WIKI_CAT.Main_topic, RDF.type, RDFS.Class)
    produced = 1
    level = 0
    while created < n_categories and level < _WIKI_DEPTH:
        level += 1
        parents = levels[-1]
        width = min(len(parents) * _WIKI_BRANCHING, n_categories - created)
        current: list[IRI] = []
        for i in range(width):
            category = WIKI_CAT[f"L{level}_C{i + 1}"]
            current.append(category)
            primary = parents[i % len(parents)]
            yield Triple(category, RDFS.subClassOf, primary)
            produced += 1
            if level > 1 and rng.random() < _WIKI_EXTRA_PARENT:
                secondary = rng.choice(parents)
                if secondary is not primary:
                    yield Triple(category, RDFS.subClassOf, secondary)
                    produced += 1
        created += len(current)
        levels.append(current)

    shallow_pool = levels[1] if len(levels) > 1 else [WIKI_CAT.Main_topic]
    deep_pool = [category for row in levels[2:] for category in row] or shallow_pool

    article_index = 0
    while produced < target_triples:
        article_index += 1
        article = WIKI[f"Article_{article_index}"]
        yield Triple(article, RDFS.label, Literal(f"Article {article_index}"))
        produced += 1
        for extra in range(_LITERALS_PER_ARTICLE):
            yield Triple(
                article,
                WIKI_ONTO[("abstract", "wikiPageLength")[extra % 2]],
                Literal(f"text {article_index}-{extra}"),
            )
            produced += 1
        for _ in range(rng.randint(*_TYPES_PER_ARTICLE)):
            pool = shallow_pool if rng.random() < _SHALLOW_TYPE_WEIGHT else deep_pool
            yield Triple(article, RDF.type, rng.choice(pool))
            produced += 1


def generate_wikipedia(target_triples: int, seed: int = 7) -> list[Triple]:
    """Materialize :func:`iter_wikipedia` into a list."""
    return list(iter_wikipedia(target_triples, seed=seed))


# --- WordNet-like hypernym graph -------------------------------------------

_WORDS_PER_SYNSET = 2.0
_WORD_LABEL_PROBABILITY = 0.3


def iter_wordnet(target_triples: int, seed: int = 13) -> Iterator[Triple]:
    """Stream a WordNet-like ontology of roughly ``target_triples``.

    Synsets form a hypernym forest under a *custom* predicate, words link
    to synsets, and both carry labels — deliberately no RDFS vocabulary,
    so the ρdf closure is empty (Table 1 shows '0' and dashes for the
    wordnet/ρdf row) while RDFS still types every resource.
    """
    if target_triples < 50:
        raise ValueError(f"target too small for the wordnet shape: {target_triples}")
    rng = random.Random(seed)

    # Per synset: 1 hypernym link + 1 label + _WORDS_PER_SYNSET words,
    # each with 1 containsWordSense link and sometimes a label.
    per_synset = 2 + _WORDS_PER_SYNSET * (1 + _WORD_LABEL_PROBABILITY)
    n_synsets = max(10, int(target_triples / per_synset))

    hypernym = WN_SCHEMA.hypernymOf
    in_synset = WN_SCHEMA.containsWordSense
    word_index = 0
    for s in range(1, n_synsets + 1):
        synset = WORDNET[f"synset-{s}-n"]
        if s > 1:
            parent = WORDNET[f"synset-{rng.randint(max(1, s // 2), s - 1)}-n"]
            yield Triple(synset, hypernym, parent)
        else:
            yield Triple(synset, WN_SCHEMA.inLexicon, WORDNET["lexicon-noun"])
        yield Triple(synset, RDFS.label, Literal(f"synset {s}"))
        n_words = max(1, round(rng.gauss(_WORDS_PER_SYNSET, 0.7)))
        for _ in range(n_words):
            word_index += 1
            word = WORDNET[f"wordsense-{word_index}-n"]
            yield Triple(synset, in_synset, word)
            if rng.random() < _WORD_LABEL_PROBABILITY:
                yield Triple(word, RDFS.label, Literal(f"word {word_index}"))


def generate_wordnet(target_triples: int, seed: int = 13) -> list[Triple]:
    """Materialize :func:`iter_wordnet` into a list."""
    return list(iter_wordnet(target_triples, seed=seed))
