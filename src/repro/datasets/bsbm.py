"""BSBM-like e-commerce ontology generator (paper §3, first category).

The paper generates five ontologies (100k – 5M triples) with the Berlin
SPARQL Benchmark tool.  The generator tool itself is Java and ships its
own data; what the evaluation depends on is the *shape* of its output:

* a large ABox of products, offers, reviews, vendors and persons whose
  triples are mostly literal-valued (prices, ratings, labels, dates);
* a small product-type hierarchy (TBox) so that only product-typing
  triples trigger class inferences — giving the very low ρdf inference
  yield of Table 1 (~0.5 % of input), while the RDFS yield (~30 %) is
  dominated by ``<x type Resource>`` per distinct resource;
* no ``rdfs:domain``/``rdfs:range`` declarations (the BSBM schema has
  none), so ρdf inferences come from CAX-SCO/SCM-SCO alone.

This module reproduces that shape deterministically (seeded PRNG, stable
IRIs), with the entity mix calibrated so both yields land near the
paper's:  products are rare (~1 per 250 triples, each contributing two
class inferences), resources are ~30 % of triples.

>>> triples = generate_bsbm(100_000)
>>> len(triples)                     # within ~1 % of the target
"""

from __future__ import annotations

import random
from typing import Iterator

from ..rdf.namespaces import Namespace, RDF, RDFS, XSD
from ..rdf.terms import IRI, Literal, Triple

__all__ = [
    "generate_bsbm",
    "bsbm_tbox",
    "BSBM",
    "BSBM_INST",
    "PAPER_BSBM_SIZES",
]

BSBM = Namespace("http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/")
BSBM_INST = Namespace("http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/")

#: Target sizes of the paper's five generated ontologies.
PAPER_BSBM_SIZES = {
    "BSBM_100k": 100_000,
    "BSBM_200k": 200_000,
    "BSBM_500k": 500_000,
    "BSBM_1M": 1_000_000,
    "BSBM_5M": 5_000_000,
}

# Product-type tree fan-out: 1 root, LEVEL1 children, LEVEL2 leaves each.
_LEVEL1 = 8
_LEVEL2 = 4

# Entity mix per product (calibrated against Table 1's yields).
_OFFERS_PER_PRODUCT = 20
_REVIEWS_PER_PRODUCT = 40
_REVIEWS_PER_PERSON = 5
_PRODUCTS_PER_PRODUCER = 10
_PRODUCTS_PER_VENDOR = 10

_COUNTRIES = ("US", "GB", "DE", "FR", "JP", "CN", "AT", "ES", "RU", "KR")

_XSD_INT = XSD.integer
_XSD_DATE = XSD.date


def _integer(value: int) -> Literal:
    return Literal(str(value), datatype=_XSD_INT)


def _date(rng: random.Random) -> Literal:
    return Literal(
        f"200{rng.randint(5, 9)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        datatype=_XSD_DATE,
    )


def bsbm_tbox() -> list[Triple]:
    """The fixed schema: product-type tree and entity classes.

    The tree has 1 + ``_LEVEL1`` + ``_LEVEL1 * _LEVEL2`` classes linked by
    subClassOf; SCM-SCO closes the leaf → root hops (a constant number of
    inferences), CAX-SCO lifts each product's leaf type to its two
    ancestors.
    """
    triples: list[Triple] = []
    root = BSBM.ProductType
    triples.append(Triple(root, RDF.type, RDFS.Class))
    for klass in (BSBM.Product, BSBM.Offer, BSBM.Review, BSBM.Person,
                  BSBM.Producer, BSBM.Vendor):
        triples.append(Triple(klass, RDF.type, RDFS.Class))
    for i in range(_LEVEL1):
        level1 = BSBM_INST[f"ProductType{i + 1}"]
        triples.append(Triple(level1, RDF.type, RDFS.Class))
        triples.append(Triple(level1, RDFS.subClassOf, root))
        for j in range(_LEVEL2):
            leaf = BSBM_INST[f"ProductType{i + 1}-{j + 1}"]
            triples.append(Triple(leaf, RDF.type, RDFS.Class))
            triples.append(Triple(leaf, RDFS.subClassOf, level1))
    return triples


def _leaf_types() -> list[IRI]:
    return [
        BSBM_INST[f"ProductType{i + 1}-{j + 1}"]
        for i in range(_LEVEL1)
        for j in range(_LEVEL2)
    ]


def _triples_per_product_bundle() -> int:
    """Triples emitted per product incl. its offers/reviews/shares."""
    product = 6
    offers = _OFFERS_PER_PRODUCT * 4
    reviews = _REVIEWS_PER_PRODUCT * 4
    persons = (_REVIEWS_PER_PRODUCT // _REVIEWS_PER_PERSON) * 3
    producer_share = 3 / _PRODUCTS_PER_PRODUCER
    vendor_share = 3 / _PRODUCTS_PER_VENDOR
    return int(product + offers + reviews + persons + producer_share + vendor_share)


def iter_bsbm(target_triples: int, seed: int = 42) -> Iterator[Triple]:
    """Stream a BSBM-like ontology of roughly ``target_triples`` triples.

    Deterministic for a given (target, seed).  The TBox comes first (as
    BSBM's own dumps do), then product bundles until the budget is spent.
    """
    if target_triples < 200:
        raise ValueError(f"target too small for the BSBM shape: {target_triples}")
    rng = random.Random(seed)
    produced = 0
    for triple in bsbm_tbox():
        produced += 1
        yield triple

    leaves = _leaf_types()
    bundle = _triples_per_product_bundle()
    n_products = max(1, (target_triples - produced) // bundle)
    person_counter = 0
    review_counter = 0
    offer_counter = 0

    for p in range(1, n_products + 1):
        product = BSBM_INST[f"Product{p}"]
        producer = BSBM_INST[f"Producer{(p - 1) // _PRODUCTS_PER_PRODUCER + 1}"]
        vendor = BSBM_INST[f"Vendor{(p - 1) // _PRODUCTS_PER_VENDOR + 1}"]
        if (p - 1) % _PRODUCTS_PER_PRODUCER == 0:
            yield Triple(producer, RDF.type, BSBM.Producer)
            yield Triple(producer, RDFS.label, Literal(f"Producer {producer.value[-3:]}"))
            yield Triple(producer, BSBM.country, Literal(rng.choice(_COUNTRIES)))
        if (p - 1) % _PRODUCTS_PER_VENDOR == 0:
            yield Triple(vendor, RDF.type, BSBM.Vendor)
            yield Triple(vendor, RDFS.label, Literal(f"Vendor {vendor.value[-3:]}"))
            yield Triple(vendor, BSBM.country, Literal(rng.choice(_COUNTRIES)))

        yield Triple(product, RDF.type, rng.choice(leaves))
        yield Triple(product, RDFS.label, Literal(f"Product {p}"))
        yield Triple(product, BSBM.producer, producer)
        yield Triple(product, BSBM.productPropertyNumeric1, _integer(rng.randint(1, 2000)))
        yield Triple(product, BSBM.productPropertyNumeric2, _integer(rng.randint(1, 2000)))
        yield Triple(product, BSBM.productPropertyTextual1, Literal(f"feature-{rng.randint(1, 500)}"))

        for _ in range(_OFFERS_PER_PRODUCT):
            offer_counter += 1
            offer = BSBM_INST[f"Offer{offer_counter}"]
            yield Triple(offer, RDF.type, BSBM.Offer)
            yield Triple(offer, BSBM.product, product)
            yield Triple(offer, BSBM.vendor, vendor)
            yield Triple(offer, BSBM.price, _integer(rng.randint(10, 10_000)))

        for r in range(_REVIEWS_PER_PRODUCT):
            review_counter += 1
            if r % _REVIEWS_PER_PERSON == 0:
                person_counter += 1
                person = BSBM_INST[f"Reviewer{person_counter}"]
                yield Triple(person, RDF.type, BSBM.Person)
                yield Triple(person, BSBM.country, Literal(rng.choice(_COUNTRIES)))
                yield Triple(person, RDFS.label, Literal(f"Reviewer {person_counter}"))
            review = BSBM_INST[f"Review{review_counter}"]
            person = BSBM_INST[f"Reviewer{person_counter}"]
            yield Triple(review, RDF.type, BSBM.Review)
            yield Triple(review, BSBM.reviewFor, product)
            yield Triple(review, BSBM.reviewer, person)
            yield Triple(review, BSBM.rating1, _integer(rng.randint(1, 10)))


def generate_bsbm(target_triples: int, seed: int = 42) -> list[Triple]:
    """Materialize :func:`iter_bsbm` into a list."""
    return list(iter_bsbm(target_triples, seed=seed))
