"""E1 — Table 1, ρdf half: Slider vs the batch baseline on 13 ontologies.

Regenerates, per ontology: input count, inferred count, baseline time,
Slider time, and the Gain column.  The paper's numbers are printed next
to each measurement for eyeballing; EXPERIMENTS.md records the analysis.
"""

from __future__ import annotations

import pytest

from repro.bench import PAPER_TABLE1, gain_percent, run_batch, run_slider

from _config import (
    BENCH_SCALE,
    SLIDER_BUFFER,
    SLIDER_WORKERS,
    pedantic_once,
    register_summary,
    table1_datasets,
)

FRAGMENT = "rhodf"

_measured: dict[str, dict[str, float]] = {}


def _record(dataset: str, system: str, result) -> None:
    _measured.setdefault(dataset, {})[system] = result.seconds
    _measured[dataset][f"{system}_inferred"] = result.inferred_count


@pytest.mark.parametrize("dataset", table1_datasets())
def test_baseline_rhodf(benchmark, dataset):
    result = pedantic_once(
        benchmark, run_batch, dataset, FRAGMENT, BENCH_SCALE
    )
    _record(dataset, "batch", result)
    paper = PAPER_TABLE1[dataset][FRAGMENT]
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "inferred": result.inferred_count,
            "paper_inferred": paper[1],
            "paper_owlim_seconds": paper[2],
        }
    )
    assert result.inferred_count >= 0


@pytest.mark.parametrize("dataset", table1_datasets())
def test_slider_rhodf(benchmark, dataset):
    result = pedantic_once(
        benchmark,
        run_slider,
        dataset,
        FRAGMENT,
        BENCH_SCALE,
        buffer_size=SLIDER_BUFFER,
        workers=SLIDER_WORKERS,
    )
    _record(dataset, "slider", result)
    paper = PAPER_TABLE1[dataset][FRAGMENT]
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "inferred": result.inferred_count,
            "paper_inferred": paper[1],
            "paper_slider_seconds": paper[3],
        }
    )
    # Correctness guard: same closure as the batch baseline.
    batch_inferred = _measured.get(dataset, {}).get("batch_inferred")
    if batch_inferred is not None:
        assert result.inferred_count == batch_inferred

    # subClassOf chains have exact expected counts (Table 1 column).
    if dataset.startswith("subClassOf"):
        n = int(dataset[len("subClassOf"):])
        assert result.inferred_count == (n - 1) * (n - 2) // 2


@register_summary
def _summarize_table1_rhodf() -> str | None:
    """Render the measured half of Table 1 (after the sweeps)."""
    if not _measured:
        return None
    lines = [
        "",
        f"=== Table 1, ρdf (scale={BENCH_SCALE:g}) — measured vs paper gain ===",
        f"{'ontology':<16} {'batch':>9} {'slider':>9} {'gain':>9} {'paper gain':>11}",
    ]
    gains = []
    for dataset, values in _measured.items():
        if "batch" not in values or "slider" not in values:
            continue
        gain = gain_percent(values["batch"], values["slider"])
        if values.get("slider_inferred"):
            gains.append(gain)
        paper_gain = PAPER_TABLE1[dataset][FRAGMENT][4]
        paper_text = f"{paper_gain:.2f}%" if paper_gain is not None else "-"
        lines.append(
            f"{dataset:<16} {values['batch']:>8.3f}s {values['slider']:>8.3f}s "
            f"{gain:>8.2f}% {paper_text:>11}"
        )
    if gains:
        lines.append(
            f"{'Average':<16} {'':>9} {'':>9} "
            f"{sum(gains) / len(gains):>8.2f}% {'106.86%':>11}"
        )
    return "\n".join(lines)
