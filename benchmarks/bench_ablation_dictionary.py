"""Ablation — dictionary encoding on/off (§2's Input Manager design).

The paper maps "the expensive URIs to Longs" before anything touches the
store.  The :class:`~repro.dictionary.IdentityDictionary` ablation runs
the identical pipeline with term objects as their own ids: every store
probe then hashes three term objects (string hashing + equality walks)
instead of three small ints.
"""

from __future__ import annotations

import pytest

from repro.dictionary import IdentityDictionary, TermDictionary
from repro.datasets import load_dataset
from repro.reasoner import Slider

from _config import BENCH_SCALE, pedantic_once, register_summary

_results: dict[str, float] = {}


@pytest.fixture(scope="module")
def workload():
    return load_dataset("wikipedia", scale=BENCH_SCALE) + load_dataset(
        "subClassOf200", scale=1.0
    )


@pytest.mark.parametrize("mode", ["encoded", "identity"])
def test_dictionary_mode(benchmark, workload, mode):
    def run():
        dictionary = TermDictionary() if mode == "encoded" else IdentityDictionary()
        with Slider(
            fragment="rhodf",
            workers=0,
            timeout=None,
            buffer_size=200,
            dictionary=dictionary,
        ) as reasoner:
            reasoner.add(workload)
            reasoner.flush()
            return reasoner.inferred_count

    inferred = pedantic_once(benchmark, run)
    _results[mode] = benchmark.stats.stats.mean
    benchmark.extra_info.update({"mode": mode, "inferred": inferred})
    assert inferred > 0


@register_summary
def _dictionary_comparison() -> str | None:
    if len(_results) < 2:
        return None
    lines = ["", "=== Dictionary-encoding ablation (wikipedia + chain, ρdf) ==="]
    for mode, seconds in _results.items():
        lines.append(f"{mode:>9}: {seconds:7.3f}s")
    ratio = _results["identity"] / _results["encoded"]
    lines.append(f"identity/encoded time ratio: {ratio:.2f}x")
    return "\n".join(lines)
