"""E7 — the demo's parameter space: buffer size and timeout (§4).

The demo lets users tune buffer size and timeout and observe the effect
on rule executions and inference time.  This ablation sweeps both on a
fixed workload and reports time + firing counts — small buffers fire
many small rule executions (overhead), large buffers batch better but
add latency; timeouts only matter for trickle streams.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.reasoner import ListSource, RateLimitedSource, Slider, StreamPump

from _config import BENCH_SCALE, SLIDER_WORKERS, pedantic_once, register_summary

BUFFER_SIZES = (1, 10, 50, 200, 1000, 10_000)
TIMEOUTS = (0.005, 0.05, 0.5)

_sweep: dict[int, dict[str, float]] = {}


@pytest.fixture(scope="module")
def workload():
    return load_dataset("subClassOf200", scale=1.0) + load_dataset(
        "BSBM_100k", scale=BENCH_SCALE
    )


@pytest.mark.parametrize("buffer_size", BUFFER_SIZES)
def test_buffer_size_sweep(benchmark, workload, buffer_size):
    def run():
        with Slider(
            fragment="rhodf",
            workers=SLIDER_WORKERS,
            buffer_size=buffer_size,
            timeout=0.05,
        ) as reasoner:
            reasoner.add(workload)
            reasoner.flush()
            executions = sum(m.stats()["executions"] for m in reasoner.modules)
            return executions, reasoner.inferred_count

    executions, inferred = pedantic_once(benchmark, run)
    _sweep[buffer_size] = {
        "seconds": benchmark.stats.stats.mean,
        "executions": executions,
        "inferred": inferred,
    }
    benchmark.extra_info.update(
        {"buffer_size": buffer_size, "rule_executions": executions}
    )
    # Correctness must not depend on the parameter (demo's key lesson).
    assert inferred == next(iter(_sweep.values()))["inferred"]


@pytest.mark.parametrize("timeout", TIMEOUTS)
def test_timeout_sweep_on_trickle_stream(benchmark, timeout):
    """On a rate-limited stream, the timeout bounds inference latency."""
    chain = load_dataset("subClassOf50", scale=1.0)

    def run():
        with Slider(
            fragment="rhodf",
            workers=SLIDER_WORKERS,
            buffer_size=1_000_000,  # size never fires: timeout must
            timeout=timeout,
        ) as reasoner:
            source = RateLimitedSource(ListSource(chain), rate=5_000)
            StreamPump(reasoner, source, chunk_size=10).run()
            reasoner.flush()
            timeout_fires = sum(m.buffer.timeout_fires for m in reasoner.modules)
            return timeout_fires, reasoner.inferred_count

    timeout_fires, inferred = pedantic_once(benchmark, run)
    benchmark.extra_info.update({"timeout": timeout, "timeout_fires": timeout_fires})
    assert inferred == 1176  # subClassOf50's exact closure


@register_summary
def _buffer_sweep_table() -> str | None:
    if not _sweep:
        return None
    lines = [
        "",
        "=== Buffer-size ablation (rhodf, chains + BSBM mix) ===",
        f"{'buffer':>8} {'time':>9} {'rule executions':>16}",
    ]
    for buffer_size in BUFFER_SIZES:
        if buffer_size in _sweep:
            entry = _sweep[buffer_size]
            lines.append(
                f"{buffer_size:>8} {entry['seconds']:>8.3f}s {entry['executions']:>16.0f}"
            )
    return "\n".join(lines)
