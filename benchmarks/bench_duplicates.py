"""E6 — the duplicates claim (§3, second ontology category).

"The chain of n rules produce O(n²) unique triples, however commonly
used iterative rules schemes produce O(n³) triples [19]."

Measured here as *derivation counts* on the subClassOf chains: the
naive-iteration baseline re-derives the partial closure every round
(≈ n³ total derivations for an n² closure), semi-naive wastes a small
constant factor, and Slider's store-level dedup keeps re-dispatch at
zero (each unique triple enters each buffer once).
"""

from __future__ import annotations

import pytest

from repro.baselines import BatchReasoner, SemiNaiveReasoner
from repro.datasets import expected_rhodf_inferences, subclass_chain
from repro.reasoner import Slider

from _config import pedantic_once, register_summary

CHAIN_SIZES = (10, 20, 50, 100, 200)

_derivations: dict[str, dict[int, int]] = {"naive": {}, "semi-naive": {}, "slider": {}}


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_naive_iteration_explodes(benchmark, n):
    def run():
        reasoner = BatchReasoner(fragment="rhodf")
        return reasoner.materialize_triples(subclass_chain(n))

    stats = pedantic_once(benchmark, run)
    _derivations["naive"][n] = stats.derivations
    benchmark.extra_info.update(
        {"n": n, "derivations": stats.derivations, "kept": stats.kept}
    )
    assert stats.kept == expected_rhodf_inferences(n)
    if n >= 50:
        # Super-quadratic waste: the O(n³) behaviour the paper cites.
        assert stats.derivations > 10 * stats.kept


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_semi_naive_is_bounded(benchmark, n):
    def run():
        reasoner = SemiNaiveReasoner(fragment="rhodf")
        return reasoner.materialize_triples(subclass_chain(n))

    stats = pedantic_once(benchmark, run)
    _derivations["semi-naive"][n] = stats.derivations
    benchmark.extra_info.update(
        {"n": n, "derivations": stats.derivations, "kept": stats.kept}
    )
    assert stats.kept == expected_rhodf_inferences(n)


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_slider_work_accounting(benchmark, n):
    def run():
        with Slider(fragment="rhodf", workers=0, timeout=None, buffer_size=50) as r:
            r.add(subclass_chain(n))
            r.flush()
            return sum(m.stats()["derived"] for m in r.modules), r.inferred_count

    derived, inferred = pedantic_once(benchmark, run)
    _derivations["slider"][n] = derived
    benchmark.extra_info.update({"n": n, "derivations": derived, "kept": inferred})
    assert inferred == expected_rhodf_inferences(n)


@register_summary
def _derivation_table() -> str | None:
    if not _derivations["naive"]:
        return None
    lines = [
        "",
        "=== Duplicate derivations on subClassOf chains (ρdf) ===",
        f"{'n':>5} {'closure':>9} {'naive':>11} {'semi-naive':>11} {'slider':>11}",
    ]
    for n in CHAIN_SIZES:
        closure = expected_rhodf_inferences(n)
        lines.append(
            f"{n:>5} {closure:>9} "
            f"{_derivations['naive'].get(n, 0):>11} "
            f"{_derivations['semi-naive'].get(n, 0):>11} "
            f"{_derivations['slider'].get(n, 0):>11}"
        )
    lines.append("(closure is O(n²); naive derivations grow ≈ O(n³), the paper's claim)")
    return "\n".join(lines)
