"""E2 — Table 1, RDFS half: Slider vs the batch baseline on 13 ontologies."""

from __future__ import annotations

import pytest

from repro.bench import PAPER_TABLE1, gain_percent, run_batch, run_slider
from repro.datasets import expected_rhodf_inferences

from _config import (
    BENCH_SCALE,
    SLIDER_BUFFER,
    SLIDER_WORKERS,
    pedantic_once,
    register_summary,
    table1_datasets,
)

FRAGMENT = "rdfs"

_measured: dict[str, dict[str, float]] = {}


def _record(dataset: str, system: str, result) -> None:
    _measured.setdefault(dataset, {})[system] = result.seconds
    _measured[dataset][f"{system}_inferred"] = result.inferred_count


@pytest.mark.parametrize("dataset", table1_datasets())
def test_baseline_rdfs(benchmark, dataset):
    result = pedantic_once(benchmark, run_batch, dataset, FRAGMENT, BENCH_SCALE)
    _record(dataset, "batch", result)
    paper = PAPER_TABLE1[dataset][FRAGMENT]
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "inferred": result.inferred_count,
            "paper_inferred": paper[1],
            "paper_owlim_seconds": paper[2],
        }
    )
    assert result.inferred_count > 0  # RDFS infers on every Table 1 ontology


@pytest.mark.parametrize("dataset", table1_datasets())
def test_slider_rdfs(benchmark, dataset):
    result = pedantic_once(
        benchmark,
        run_slider,
        dataset,
        FRAGMENT,
        BENCH_SCALE,
        buffer_size=SLIDER_BUFFER,
        workers=SLIDER_WORKERS,
    )
    _record(dataset, "slider", result)
    paper = PAPER_TABLE1[dataset][FRAGMENT]
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "inferred": result.inferred_count,
            "paper_inferred": paper[1],
            "paper_slider_seconds": paper[3],
        }
    )
    batch_inferred = _measured.get(dataset, {}).get("batch_inferred")
    if batch_inferred is not None:
        assert result.inferred_count == batch_inferred
    if dataset.startswith("subClassOf"):
        # RDFS closure = ρdf closure + one Resource-typing per resource.
        n = int(dataset[len("subClassOf"):])
        assert result.inferred_count == expected_rhodf_inferences(n) + n + 2


@register_summary
def _summarize_table1_rdfs() -> str | None:
    if not _measured:
        return None
    lines = [
        "",
        f"=== Table 1, RDFS (scale={BENCH_SCALE:g}) — measured vs paper gain ===",
        f"{'ontology':<16} {'batch':>9} {'slider':>9} {'gain':>9} {'paper gain':>11}",
    ]
    gains = []
    for dataset, values in _measured.items():
        if "batch" not in values or "slider" not in values:
            continue
        gain = gain_percent(values["batch"], values["slider"])
        gains.append(gain)
        paper_gain = PAPER_TABLE1[dataset][FRAGMENT][4]
        paper_text = f"{paper_gain:.2f}%" if paper_gain is not None else "-"
        lines.append(
            f"{dataset:<16} {values['batch']:>8.3f}s {values['slider']:>8.3f}s "
            f"{gain:>8.2f}% {paper_text:>11}"
        )
    if gains:
        lines.append(
            f"{'Average':<16} {'':>9} {'':>9} "
            f"{sum(gains) / len(gains):>8.2f}% {'36.08%':>11}"
        )
    return "\n".join(lines)
