"""Ablation — static vs adaptive buffer plans (paper's future work, §5).

Compares the static plan (one buffer size for every rule) against the
run-time adaptive controller on a schema-light stream, where most rules
are inert and the controller's buffer growth directly removes firing
overhead.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.reasoner import AdaptiveBufferController, Slider

from _config import BENCH_SCALE, pedantic_once, register_summary

_results: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module")
def workload():
    """BSBM plus a decoy schema.

    The decoy domain/range/subPropertyOf declarations *activate* the
    universal rules (lazy activation would otherwise skip them entirely)
    but never match the instance data — the active-but-inert situation
    where a static small-buffer plan burns firings and the adaptive
    controller grows the buffers instead.
    """
    from repro.rdf import Namespace, RDFS, Triple

    decoy = Namespace("http://example.org/decoy#")
    schema = [
        Triple(decoy.unusedProp, RDFS.domain, decoy.Nothing),
        Triple(decoy.unusedProp, RDFS.range, decoy.Nothing),
        Triple(decoy.unusedProp, RDFS.subPropertyOf, decoy.otherUnused),
    ]
    return schema + load_dataset("BSBM_1M", scale=BENCH_SCALE)


@pytest.mark.parametrize("plan", ["static", "adaptive"])
def test_buffer_plan(benchmark, workload, plan):
    def run():
        adaptive = None
        if plan == "adaptive":
            adaptive = AdaptiveBufferController(
                min_capacity=16, max_capacity=8192, adjust_every=16
            )
        # Inline execution without the timeout sweeper: deterministic
        # firing counts, so the measurement isolates the *scheduling
        # policy* (the sweeper's wall-clock flushes would otherwise
        # dominate the firing statistics on slow runs).
        with Slider(
            fragment="rhodf",
            workers=0,
            buffer_size=64,  # deliberately small static plan
            timeout=None,
            adaptive=adaptive,
        ) as reasoner:
            reasoner.add(workload)
            reasoner.flush()
            executions = sum(m.stats()["executions"] for m in reasoner.modules)
            return executions, reasoner.inferred_count

    run()  # warm-up
    executions, inferred = pedantic_once(benchmark, run)
    _results[plan] = {
        "seconds": benchmark.stats.stats.mean,
        "executions": executions,
        "inferred": inferred,
    }
    benchmark.extra_info.update({"plan": plan, "executions": executions})
    if plan == "adaptive" and "static" in _results:
        assert inferred == _results["static"]["inferred"]  # same closure
        assert executions < _results["static"]["executions"]  # fewer firings


@register_summary
def _plan_comparison() -> str | None:
    if len(_results) < 2:
        return None
    lines = ["", "=== Adaptive-scheduling ablation (BSBM stream, ρdf) ==="]
    for plan, entry in _results.items():
        lines.append(
            f"{plan:>9}: {entry['seconds']:7.3f}s  "
            f"{entry['executions']:>6.0f} rule executions"
        )
    return "\n".join(lines)
