"""bench_replication: read scaling across followers + replica catch-up.

The replication acceptance bar: aggregate follower read throughput must
reach ``SLIDER_BENCH_REPLICATION_MIN_RPS`` (default 500) under a
sustained leader write load, with zero failed requests, and a fresh
replica must catch up — via WAL tail *and* via snapshot bootstrap —
within ``SLIDER_BENCH_REPLICATION_MAX_CATCHUP`` seconds.  Set
``SLIDER_BENCH_REPLICATION_JSON`` to dump the artifact for the
bench-regression comparator (``python -m repro.bench.compare``).
"""

from __future__ import annotations

import json
import os

from repro.bench import run_replication_bench

from _config import SLIDER_STORE, SLIDER_WORKERS, pedantic_once, register_summary

#: Aggregate follower read-throughput floor, requests per second.
MIN_RPS = float(os.environ.get("SLIDER_BENCH_REPLICATION_MIN_RPS", "500"))

#: Ceiling on either catch-up path, seconds.
MAX_CATCHUP = float(os.environ.get("SLIDER_BENCH_REPLICATION_MAX_CATCHUP", "45"))

DURATION = float(os.environ.get("SLIDER_BENCH_REPLICATION_SECONDS", "2"))
FOLLOWERS = tuple(
    int(n)
    for n in os.environ.get("SLIDER_BENCH_REPLICATION_FOLLOWERS", "1,2,4").split(",")
)
WRITERS = int(os.environ.get("SLIDER_BENCH_REPLICATION_WRITERS", "1"))

_results: list = []


def test_replication_scaling_and_catchup(benchmark):
    result = pedantic_once(
        benchmark,
        run_replication_bench,
        follower_counts=FOLLOWERS,
        duration=DURATION,
        writers=WRITERS,
        store=SLIDER_STORE,
        workers=SLIDER_WORKERS,
    )
    _results.append(result)
    benchmark.extra_info.update(
        {
            "read_rps_by_followers": {
                str(n): rps for n, rps in result.read_rps_by_followers.items()
            },
            "peak_read_rps": result.peak_read_rps,
            "catchup_wal_seconds": result.catchup_wal_seconds,
            "catchup_snapshot_seconds": result.catchup_snapshot_seconds,
        }
    )
    assert result.error_count == 0, f"{result.error_count} failed requests"
    assert result.peak_read_rps >= MIN_RPS, (
        f"followers sustained only {result.peak_read_rps:,.0f} read req/s "
        f"(need >= {MIN_RPS:,.0f}): {result!r}"
    )
    assert result.catchup_wal_seconds <= MAX_CATCHUP, (
        f"WAL catch-up took {result.catchup_wal_seconds:.1f}s "
        f"(max {MAX_CATCHUP:.0f}s)"
    )
    assert result.catchup_snapshot_seconds <= MAX_CATCHUP, (
        f"snapshot catch-up took {result.catchup_snapshot_seconds:.1f}s "
        f"(max {MAX_CATCHUP:.0f}s)"
    )


@register_summary
def _replication_summary() -> str | None:
    if not _results:
        return None
    artifact = os.environ.get("SLIDER_BENCH_REPLICATION_JSON")
    result = _results[-1]
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, indent=2, sort_keys=True)
    lines = [
        "",
        f"=== Replication ({DURATION:.1f}s per stage, {WRITERS} writer(s), "
        f"store={SLIDER_STORE}) ===",
    ]
    for count in sorted(result.read_rps_by_followers):
        lines.append(
            f"{count} follower(s): {result.read_rps_by_followers[count]:>8,.0f} "
            f"read req/s  (+ {result.write_rps_by_followers[count]:,.0f} "
            "leader writes/s)"
        )
    lines.append(
        f"catch-up   : WAL tail {result.catchup_wal_seconds:.2f}s, "
        f"snapshot bootstrap {result.catchup_snapshot_seconds:.2f}s "
        f"(to revision {result.catchup_revision:,})"
    )
    if artifact:
        lines.append(f"JSON artifact written to {artifact}")
    return "\n".join(lines)
