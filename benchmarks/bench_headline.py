"""E5 — the paper's headline claims.

* "Slider outperforms existing implementations by 70 % on average":
  average Gain over both Table 1 halves (paper: +106.86 % ρdf,
  +36.08 % RDFS, +71.47 % overall).
* "a throughput up to 36,000 triples/sec": peak input throughput over
  the benchmarked runs (parse time included, as in §3).

A reduced dataset list keeps this self-contained run short; the full
sweeps live in bench_table1_*.py.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import gain_percent, run_batch, run_slider

from _config import (
    BENCH_SCALE,
    SLIDER_BUFFER,
    SLIDER_STORE,
    SLIDER_WORKERS,
    pedantic_once,
    register_summary,
)

#: A representative subset: one of each workload category.
HEADLINE_DATASETS = ("BSBM_100k", "wikipedia", "wordnet", "subClassOf100")

_gains: dict[str, list[float]] = {"rhodf": [], "rdfs": []}
_throughputs: list[float] = []


@pytest.mark.parametrize("fragment", ["rhodf", "rdfs"])
@pytest.mark.parametrize("dataset", HEADLINE_DATASETS)
def test_headline_pair(benchmark, fragment, dataset):
    def measure():
        baseline = run_batch(dataset, fragment, BENCH_SCALE)
        slider = run_slider(
            dataset,
            fragment,
            BENCH_SCALE,
            buffer_size=SLIDER_BUFFER,
            workers=SLIDER_WORKERS,
            store=SLIDER_STORE,
        )
        return baseline, slider

    baseline, slider = pedantic_once(benchmark, measure)
    # Bench-smoke cross-check: the InferenceReport's diff must agree with
    # the engine's per-module counters — every distributor-kept triple is
    # an inferred addition of the revision, and the explicit additions
    # are exactly the parsed input (nothing is retracted in this run).
    assert slider.extra["report_inferred_added"] == slider.extra["counters_kept_total"]
    assert slider.extra["report_explicit_added"] == slider.input_count
    assert slider.extra["report_removed"] == 0
    if slider.inferred_count > 0:  # the paper omits wordnet/ρdf (no inferences)
        _gains[fragment].append(gain_percent(baseline.seconds, slider.seconds))
    _throughputs.append(slider.throughput)
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "fragment": fragment,
            "gain_pct": gain_percent(baseline.seconds, slider.seconds),
            "slider_throughput": slider.throughput,
        }
    )


@register_summary
def _headline_summary() -> str | None:
    if not any(_gains.values()):
        return None
    averages = {
        fragment: sum(values) / len(values) if values else float("nan")
        for fragment, values in _gains.items()
    }
    overall = sum(averages.values()) / len(averages)
    peak = max(_throughputs) if _throughputs else 0.0
    artifact = os.environ.get("SLIDER_BENCH_HEADLINE_JSON")
    if artifact:
        # Consumed by the bench-regression comparator
        # (python -m repro.bench.compare) in the CI bench-smoke gate.
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "kind": "headline",
                    "scale": BENCH_SCALE,
                    "peak_throughput_tps": peak,
                    "average_gain_pct": {**averages, "overall": overall},
                },
                handle, indent=2, sort_keys=True,
            )
    return "\n".join(
        [
            "",
            f"=== Headline claims (scale={BENCH_SCALE:g}) ===",
            f"average gain, ρdf : {averages['rhodf']:8.2f}%   (paper: +106.86%)",
            f"average gain, RDFS: {averages['rdfs']:8.2f}%   (paper:  +36.08%)",
            f"average gain, all : {overall:8.2f}%   (paper:  +71.47%)",
            f"peak throughput   : {peak:,.0f} triples/s (paper: up to 36,000; JVM)",
        ]
    )
