"""Shared benchmark configuration.

Scale
-----
The paper ran JVM-scale ontologies (100k – 5M triples).  A pure-Python
single run of the full Table 1 at those sizes takes hours, so benchmarks
default to ``SLIDER_BENCH_SCALE = 0.02`` (2 % of the paper's sizes; the
subClassOf chains are never scaled — their closure is the workload).
Set the environment variable to 1.0 to run the paper's exact sizes.

Protocol
--------
Following §3: every measured run starts from an N-Triples file and the
timed span covers parsing + loading + the complete closure.  Each
benchmark prints the paper's corresponding number next to the measured
one; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import os

import pytest

#: Fraction of the paper's dataset sizes to benchmark at.
BENCH_SCALE = float(os.environ.get("SLIDER_BENCH_SCALE", "0.02"))

#: Slider parameters used across benchmarks (2 workers: the paper's
#: machine had 4 slow cores; the GIL makes more threads pure overhead).
SLIDER_WORKERS = int(os.environ.get("SLIDER_BENCH_WORKERS", "2"))
SLIDER_BUFFER = int(os.environ.get("SLIDER_BENCH_BUFFER", "200"))

#: Storage backend spec: "hashdict" (single-lock vertical store) or
#: "sharded[:N]" (predicate-hash lock striping over N shards).
SLIDER_STORE = os.environ.get("SLIDER_BENCH_STORE", "hashdict")

#: Table 1 rows benchmarked by default.  BSBM_5M is included only when
#: running at reduced scale (at scale 1.0 it alone takes ~30 min).
def table1_datasets() -> list[str]:
    from repro.datasets import TABLE1_ORDER

    names = list(TABLE1_ORDER)
    if BENCH_SCALE >= 0.5:
        names.remove("BSBM_5M")
    return names


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def pedantic_once(benchmark, fn, *args, **kwargs):
    """Run a benchmark exactly once (whole-closure runs are seconds-long;
    pytest-benchmark's auto-calibration would multiply that needlessly)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


# --- end-of-run summaries ----------------------------------------------------
#
# Benchmark modules register callbacks that render their paper-vs-measured
# tables; conftest.py's pytest_terminal_summary hook runs them after the
# pytest-benchmark table.  (A plain test function would be skipped under
# --benchmark-only, which is how the suite is meant to be run.)

_SUMMARY_CALLBACKS: list = []


def register_summary(fn):
    """Decorator: add a () -> str | None callback to the final summary."""
    _SUMMARY_CALLBACKS.append(fn)
    return fn


def emit_summaries(write_line) -> None:
    """Render every registered summary through ``write_line``."""
    for callback in _SUMMARY_CALLBACKS:
        try:
            text = callback()
        except Exception as error:  # summaries must never mask bench results
            write_line(f"[summary {callback.__module__} failed: {error!r}]")
            continue
        if text:
            for line in text.splitlines():
                write_line(line)
