"""Microbenchmarks of the substrate components on the reasoner hot path.

Not a paper artifact, but the numbers that explain the macro results:
store insert/probe throughput, dictionary encoding, parser speed, and
one rule-module execution.
"""

from __future__ import annotations

import pytest

from repro.dictionary import TermDictionary
from repro.datasets import generate_bsbm
from repro.rdf import parse_ntriples, serialize_ntriples
from repro.reasoner import Vocabulary
from repro.reasoner.fragments import get_fragment
from repro.store import VerticalTripleStore, create_store


@pytest.fixture(scope="module")
def encoded_triples():
    dictionary = TermDictionary()
    return [dictionary.encode_triple(t) for t in generate_bsbm(5_000)]


@pytest.mark.parametrize("backend", ["hashdict", "sharded:8"])
def test_store_add_all(benchmark, encoded_triples, backend):
    def run():
        store = create_store(backend)
        store.add_all(encoded_triples)
        return len(store)

    size = benchmark(run)
    benchmark.extra_info["triples_per_round"] = size
    benchmark.extra_info["backend"] = backend


def test_store_match_by_predicate(benchmark, encoded_triples):
    store = VerticalTripleStore()
    store.add_all(encoded_triples)
    predicates = store.predicates()

    def run():
        return sum(len(store.match(None, p, None)) for p in predicates)

    total = benchmark(run)
    assert total == len(store)


def test_store_point_probes(benchmark, encoded_triples):
    store = VerticalTripleStore()
    store.add_all(encoded_triples)
    probes = encoded_triples[:2000]

    def run():
        return sum(1 for t in probes if t in store)

    assert benchmark(run) == len(probes)


def test_dictionary_encoding(benchmark):
    triples = generate_bsbm(5_000)

    def run():
        dictionary = TermDictionary()
        return sum(1 for _ in dictionary.encode_triples(triples))

    assert benchmark(run) == len(triples)


def test_ntriples_parse(benchmark):
    text = serialize_ntriples(generate_bsbm(5_000))

    def run():
        return len(parse_ntriples(text))

    count = benchmark(run)
    benchmark.extra_info["triples"] = count


def test_rule_module_execution(benchmark):
    """One cax-sco firing over a 1 000-triple batch (the pipeline's unit
    of work)."""
    dictionary = TermDictionary()
    vocab = Vocabulary(dictionary)
    rules = {r.name: r for r in get_fragment("rhodf").rules(vocab)}
    cax_sco = rules["cax-sco"]
    store = VerticalTripleStore()
    triples = [dictionary.encode_triple(t) for t in generate_bsbm(12_000)]
    store.add_all(triples)
    type_batch = [t for t in triples if t[1] == vocab.type][:1000]

    result = benchmark(cax_sco.apply, store, type_batch, vocab)
    assert isinstance(result, list)
