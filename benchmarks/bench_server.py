"""bench_server: mixed-load throughput of the HTTP reasoning service.

The serving acceptance bar: at CI scale the service must sustain at
least ``SLIDER_BENCH_SERVER_MIN_RPS`` (default 1,000) mixed requests
per second — concurrent closed-loop readers querying snapshot views
while writers stream coalesced commits — with read p50/p99 latency
reported.  Set ``SLIDER_BENCH_SERVER_JSON`` to dump the raw result for
the bench-regression comparator (``python -m repro.bench.compare``).
"""

from __future__ import annotations

import json
import os

from repro.bench import run_server_load

from _config import SLIDER_STORE, SLIDER_WORKERS, pedantic_once, register_summary

#: Mixed-throughput acceptance floor, requests per second.
MIN_RPS = float(os.environ.get("SLIDER_BENCH_SERVER_MIN_RPS", "1000"))

DURATION = float(os.environ.get("SLIDER_BENCH_SERVER_SECONDS", "3"))
READERS = int(os.environ.get("SLIDER_BENCH_SERVER_READERS", "8"))
WRITERS = int(os.environ.get("SLIDER_BENCH_SERVER_WRITERS", "2"))

_results: list = []


def test_server_mixed_load(benchmark):
    result = pedantic_once(
        benchmark,
        run_server_load,
        duration=DURATION,
        readers=READERS,
        writers=WRITERS,
        store=SLIDER_STORE,
        workers=SLIDER_WORKERS,
    )
    _results.append(result)
    benchmark.extra_info.update(
        {
            "total_rps": result.total_rps,
            "read_rps": result.read_rps,
            "write_rps": result.write_rps,
            "read_p99_ms": result.read_p99_ms,
            "coalesced_max": result.coalesced_max,
        }
    )
    assert result.error_count == 0, f"{result.error_count} failed requests"
    # Writers commit continuously; the coalescer must have netted at
    # least one multi-submission revision under this much concurrency.
    if WRITERS > 1:
        assert result.coalesced_max >= 2, (
            f"no coalescing observed across {result.final_revision} revisions "
            f"with {WRITERS} concurrent writers"
        )
    assert result.total_rps >= MIN_RPS, (
        f"service sustained only {result.total_rps:,.0f} mixed req/s "
        f"(need >= {MIN_RPS:,.0f}): {result!r}"
    )


@register_summary
def _server_summary() -> str | None:
    if not _results:
        return None
    artifact = os.environ.get("SLIDER_BENCH_SERVER_JSON")
    result = _results[-1]
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, indent=2, sort_keys=True)
    lines = [
        "",
        f"=== Server mixed load ({result.readers} readers + {result.writers} "
        f"writers, {result.seconds:.1f}s, store={SLIDER_STORE}) ===",
        f"throughput : {result.total_rps:>8,.0f} req/s total "
        f"({result.read_rps:,.0f} read + {result.write_rps:,.0f} write)",
        f"read  p50  : {result.read_p50_ms:>8.2f} ms   p99: {result.read_p99_ms:.2f} ms",
        f"write p50  : {result.write_p50_ms:>8.2f} ms   p99: {result.write_p99_ms:.2f} ms",
        f"revisions  : {result.final_revision:>8,} committed "
        f"(max {result.coalesced_max} writes coalesced into one)",
    ]
    if artifact:
        lines.append(f"JSON artifact written to {artifact}")
    return "\n".join(lines)
