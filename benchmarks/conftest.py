"""Pytest hook point for the benchmark suite (helpers live in _config.py)."""

from _config import emit_summaries


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print each module's paper-vs-measured table after the bench table."""
    emit_summaries(terminalreporter.write_line)
